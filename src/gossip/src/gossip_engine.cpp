#include "acp/gossip/gossip_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/seq_tracker.hpp"
#include "acp/billboard/service.hpp"
#include "acp/engine/accounting.hpp"
#include "acp/engine/roster.hpp"
#include "acp/engine/streams.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/timer.hpp"
#include "acp/rng/rng.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {

/// Post identity for legacy-exchange deduplication: (author, origin
/// round). Note the documented edge this rewrite retires: two *distinct*
/// fabricated posts by one Byzantine author in one round collide here, so
/// the exchange substrate propagates only the first — the digest
/// substrate's per-author sequence numbers give every injection its own
/// identity instead (see tests/gossip_antientropy_test.cpp,
/// DoubleInjectionsPropagateUnderDigest).
std::uint64_t post_key(const Post& post) {
  return (static_cast<std::uint64_t>(post.author.value()) << 32) ^
         static_cast<std::uint64_t>(post.round);
}

/// Index into the per-run post arena. Every distinct post of a run is
/// stored exactly once; inboxes, fresh lists and per-author sequence logs
/// hold 4-byte indices, so dissemination moves indices instead of copying
/// 40-byte posts into every replica's buffers.
using PostIdx = std::uint32_t;

struct Node {
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<Billboard> replica;
  std::vector<PostIdx> inbox;  // arrived this round; committed at round end
  bool honest = false;
  bool present = false;  // arrived and not crash-stopped: probes + relays

  // -- exchange substrate only ----------------------------------------
  std::unordered_set<std::uint64_t> seen;
  std::vector<PostIdx> fresh;  // learned last round; pushed this round
  std::vector<PostIdx> next_fresh;

  // -- digest substrate only ------------------------------------------
  SeqTracker tracker;  // per-author high-water marks + parked gaps
  std::vector<std::uint32_t> hot;  // authors advanced last round
  std::vector<std::uint32_t> next_hot;
};

}  // namespace

RunResult GossipEngine::run(const World& world, const Population& population,
                            const ProtocolFactory& make_protocol,
                            Adversary& adversary,
                            const GossipConfig& config) {
  ACP_EXPECTS(config.max_rounds > 0);
  ACP_EXPECTS(make_protocol != nullptr);
  ACP_EXPECTS(config.loss_prob >= 0.0 && config.loss_prob < 1.0);
  ACP_EXPECTS(config.repair_interval >= 0);
  ACP_EXPECTS(config.contact_interval >= 1);

  const std::size_t n = population.num_players();
  const bool digest_mode = config.substrate == GossipSubstrate::kDigest;
  const WorldView world_view(world);

  adversary.initialize(world, population);

  // The same per-run invariants every engine shares: derived RNG streams,
  // arrival/departure membership, stats + observer + metrics.
  EngineStreams streams(config.seed, n);
  Rng gossip_rng = streams.extra(EngineStreams::kGossipOffset);
  PlayerRoster roster(population, config.arrivals, config.departures);
  RunAccounting accounting(population, world.num_objects(), config.seed,
                           config.observer, "engine.gossip.rounds",
                           "engine.gossip.probes");
  // Per-run, per-player bandwidth attribution (no-op when metering is
  // off). Gossip traffic is metered per overlay link: a transfer charges
  // the sender's bits_written and the receiver's bits_read, lost contacts
  // at neither end. The exchange substrate reports on gossip.exchange;
  // the digest substrate splits control traffic (summaries, digests,
  // want-lists → gossip.digest) from payload (gossip.delta).
  const obs::BandwidthMeter::RunScope io_run(n);
  obs::TimerStat& round_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.round");
  // Per-phase breakdown of the round (visible via --report-json): the
  // exchange phase covers the whole dissemination step of either
  // substrate. See docs/architecture.md, "Gossip substrate".
  obs::TimerStat& exchange_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.exchange");
  obs::TimerStat& step_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.step");
  obs::TimerStat& commit_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.commit");

  std::vector<Node> nodes(n);
  for (std::size_t p = 0; p < n; ++p) {
    Node& node = nodes[p];
    node.honest = population.is_honest(PlayerId{p});
    if (!node.honest) continue;
    node.protocol = make_protocol();
    node.protocol->initialize(world_view, n);
    node.replica = std::make_unique<Billboard>(n, world.num_objects(),
                                               Billboard::Mode::kReplica);
    node.present =
        config.arrivals.empty() || config.arrivals[p] <= 0;
  }

  // The adversary's omniscient union log (also the run's post count),
  // behind the service seam when a backend is configured. Reads go
  // through the service's local board() view, so the loop below is
  // identical — and bit-identical in results — for both backends.
  std::optional<InProcessBillboard> local_global;
  BillboardService* const global_service = [&]() -> BillboardService* {
    if (config.billboard != nullptr) return config.billboard;
    local_global.emplace(n, world.num_objects(), Billboard::Mode::kReplica);
    return &*local_global;
  }();
  ACP_EXPECTS(global_service->num_players() == n);
  ACP_EXPECTS(global_service->num_objects() == world.num_objects());
  ACP_EXPECTS(global_service->size() == 0);
  ACP_EXPECTS(global_service->board().mode() == Billboard::Mode::kReplica);
  global_service->reserve(n);  // ~one vote post per player in DISTILL runs
  const Billboard& global = global_service->board();

  // Per-run post arena: every post (honest or fabricated) lives here
  // once; all queues reference it by index.
  std::vector<Post> arena;
  arena.reserve(n);
  std::vector<PostIdx> global_inbox;
  std::vector<Post> commit_scratch;  // reused across all commits

  // Per-author sequence log (digest substrate): author_log[a][s] is the
  // arena index of author a's post with sequence number s. Sequence
  // numbers are assigned at creation — the author's own monotonic
  // counter — which is what gives every post (and every Byzantine
  // injection) an unforgeable, distinct identity.
  std::vector<std::vector<PostIdx>> author_log(digest_mode ? n : 0);

  const auto intern_post = [&](const Post& post) -> PostIdx {
    ACP_EXPECTS(arena.size() <
                std::numeric_limits<std::uint32_t>::max());
    arena.push_back(post);
    return static_cast<PostIdx>(arena.size() - 1);
  };

  // Materialize an index batch into the reusable scratch and commit it;
  // the batch is cleared (capacity kept) for the next round. Empty
  // batches skip the commit entirely — replica rounds need not be
  // contiguous, and n empty commits per quiet round is real time at
  // n=100k.
  const auto commit_indices = [&](Billboard& billboard, Round round,
                                  std::vector<PostIdx>& indices) {
    if (indices.empty()) return;
    commit_scratch.clear();
    commit_scratch.reserve(indices.size());
    for (const PostIdx idx : indices) commit_scratch.push_back(arena[idx]);
    billboard.commit_round_from(round, commit_scratch);
    indices.clear();
  };

  // The union log's variant of commit_indices, routed through the service
  // (for a remote backend this is the RPC; in-process it is the same
  // direct commit as before).
  const auto commit_global = [&](Round round, std::vector<PostIdx>& indices) {
    if (indices.empty()) return;
    commit_scratch.clear();
    commit_scratch.reserve(indices.size());
    for (const PostIdx idx : indices) commit_scratch.push_back(arena[idx]);
    global_service->commit_round_from(round, commit_scratch);
    indices.clear();
  };

  // Static overlay links for the non-complete topologies, fixed per run.
  std::vector<std::vector<std::size_t>> neighbors;
  if (config.topology != GossipTopology::kComplete && config.fanout > 0) {
    neighbors.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t k = 0; k < config.fanout; ++k) {
        if (config.topology == GossipTopology::kRing) {
          // Alternate +1, -1, +2, -2, ... around the ring.
          const std::size_t hop = k / 2 + 1;
          const std::size_t target =
              (k % 2 == 0) ? (p + hop) % n : (p + n - hop % n) % n;
          neighbors[p].push_back(target);
        } else {
          neighbors[p].push_back(gossip_rng.index(n));
        }
      }
    }
  }

  // ---- exchange substrate: deliver one post index to one node. --------
  auto deliver = [&](std::size_t target, PostIdx idx) {
    Node& node = nodes[target];
    if (!node.present) return;  // Byzantine and absent nodes absorb
    if (!node.seen.insert(post_key(arena[idx])).second) return;
    node.inbox.push_back(idx);
    node.next_fresh.push_back(idx);
  };

  // ---- digest substrate helpers. --------------------------------------

  // Offer (author, seq) to `node`; newly contiguous posts (including any
  // parked successors the offer unlocked) land in the inbox and mark the
  // author hot for next round's advertisements. next_hot may collect
  // duplicate authors across contacts; the commit phase sort+uniques it
  // once per round instead of dup-scanning on every acceptance.
  auto accept_seq = [&](Node& node, std::uint32_t author, SeqTracker::Seq seq,
                        PostIdx idx) {
    if (!node.present) return;  // Byzantine and absent nodes absorb
    if (node.tracker.offer(author, seq, idx, node.inbox) ==
        SeqTracker::Offer::kAccepted) {
      node.next_hot.push_back(author);
    }
  };

  // Transfer the contiguous range [from, to) of `author`'s posts from the
  // global sequence log into `to_node`, metering it as one delta message.
  // The whole range is offered with a single tracker lookup; the author
  // goes hot only if the receiver's prefix actually advanced.
  auto send_delta = [&](std::size_t sender, Node& to_node,
                        std::size_t receiver, std::uint32_t author,
                        SeqTracker::Seq from, SeqTracker::Seq to) {
    if (obs::BandwidthMeter::enabled()) {
      const std::uint64_t bits =
          obs::kDeltaHeaderWireBits +
          static_cast<std::uint64_t>(to - from) * obs::kPostWireBits;
      obs::BandwidthMeter::add_write_for(obs::IoChannel::kGossipDelta, bits,
                                         PlayerId{sender});
      obs::BandwidthMeter::add_read_for(obs::IoChannel::kGossipDelta, bits,
                                        PlayerId{receiver});
    }
    if (!to_node.present) return;  // Byzantine and absent nodes absorb
    const std::vector<PostIdx>& log = author_log[author];
    if (to_node.tracker.offer_range(
            author, from,
            std::span<const PostIdx>(log.data() + from, to - from),
            to_node.inbox)) {
      to_node.next_hot.push_back(author);
    }
  };

  // Want-list / repair ranges are collected against stable digests first
  // and applied afterwards — applying a delta mutates the receiver's
  // sparse digest mid-scan otherwise. Reused across all contacts.
  struct DeltaRange {
    std::uint32_t author = 0;
    SeqTracker::Seq from = 0;
    SeqTracker::Seq to = 0;
  };
  std::vector<DeltaRange> want_scratch;
  std::vector<DeltaRange> sync_to_a;
  std::vector<DeltaRange> sync_to_b;

  const auto meter_digest = [&](std::size_t writer, std::size_t reader,
                                std::uint64_t bits) {
    if (obs::BandwidthMeter::enabled() && bits > 0) {
      obs::BandwidthMeter::add_write_for(obs::IoChannel::kGossipDigest, bits,
                                         PlayerId{writer});
      obs::BandwidthMeter::add_read_for(obs::IoChannel::kGossipDigest, bits,
                                        PlayerId{reader});
    }
  };

  // One-directional digest step: `from` advertises `hot_authors` to `to`;
  // `to` replies with a want-list for the authors it trails on; `from`
  // ships exactly those ranges. Returns nothing — state and meters are
  // updated in place.
  auto hot_exchange = [&](std::size_t from, std::size_t to,
                          const std::vector<std::uint32_t>& hot_authors) {
    Node& a = nodes[from];
    Node& b = nodes[to];
    // hot_authors is sorted and deduplicated (commit phase), so one
    // merge-walk over both sparse digests resolves every advertised
    // author — no per-author binary searches.
    const std::vector<SeqTracker::Entry>& ea = a.tracker.entries();
    const std::vector<SeqTracker::Entry>& eb = b.tracker.entries();
    std::size_t ia = 0;
    std::size_t ib = 0;
    std::uint64_t want_bits = 0;
    want_scratch.clear();
    for (const std::uint32_t author : hot_authors) {
      while (ia < ea.size() && ea[ia].author < author) ++ia;
      const SeqTracker::Seq hw_a =
          (ia < ea.size() && ea[ia].author == author) ? ea[ia].high_water : 0;
      while (ib < eb.size() && eb[ib].author < author) ++ib;
      const SeqTracker::Seq hw_b =
          (ib < eb.size() && eb[ib].author == author) ? eb[ib].high_water : 0;
      if (hw_b >= hw_a) continue;
      want_bits += obs::kDigestEntryWireBits;
      want_scratch.push_back(DeltaRange{author, hw_b, hw_a});
    }
    // The want-list travels receiver -> sender before any delta flows.
    meter_digest(to, from, want_bits);
    for (const DeltaRange& r : want_scratch) {
      send_delta(from, b, to, r.author, r.from, r.to);
    }
  };

  // Full-digest sync (repair): both sides exchange their sparse
  // high-water vectors and ship every range the other trails on. After
  // this the two replicas' committed sets are identical.
  auto full_sync = [&](std::size_t p, std::size_t t) {
    Node& a = nodes[p];
    Node& b = nodes[t];
    meter_digest(p, t, static_cast<std::uint64_t>(a.tracker.entries().size()) *
                           obs::kDigestEntryWireBits);
    meter_digest(t, p, static_cast<std::uint64_t>(b.tracker.entries().size()) *
                           obs::kDigestEntryWireBits);
    // One linear merge over the two sorted digests computes both
    // directions' repair ranges against the pre-contact state; deltas are
    // applied afterwards so neither scan runs over a mutating vector.
    const std::vector<SeqTracker::Entry>& ea = a.tracker.entries();
    const std::vector<SeqTracker::Entry>& eb = b.tracker.entries();
    sync_to_a.clear();
    sync_to_b.clear();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ea.size() || j < eb.size()) {
      if (j == eb.size() ||
          (i < ea.size() && ea[i].author < eb[j].author)) {
        // Zero-high-water entries (authors known only through parked,
        // gapped posts) carry nothing to repair.
        if (ea[i].high_water > 0) {
          sync_to_b.push_back(DeltaRange{ea[i].author, 0, ea[i].high_water});
        }
        ++i;
      } else if (i == ea.size() || eb[j].author < ea[i].author) {
        if (eb[j].high_water > 0) {
          sync_to_a.push_back(DeltaRange{eb[j].author, 0, eb[j].high_water});
        }
        ++j;
      } else {
        if (ea[i].high_water > eb[j].high_water) {
          sync_to_b.push_back(
              DeltaRange{ea[i].author, eb[j].high_water, ea[i].high_water});
        } else if (eb[j].high_water > ea[i].high_water) {
          sync_to_a.push_back(
              DeltaRange{eb[j].author, ea[i].high_water, eb[j].high_water});
        }
        ++i;
        ++j;
      }
    }
    for (const DeltaRange& r : sync_to_b) {
      send_delta(p, b, t, r.author, r.from, r.to);
    }
    for (const DeltaRange& r : sync_to_a) {
      send_delta(t, a, p, r.author, r.from, r.to);
    }
  };

  // One anti-entropy contact, initiated by p toward t. Push direction
  // always runs (p's hot authors toward t); the pull direction (t's hot
  // authors toward p) runs when configured. A repair contact escalates to
  // a full sync when the summaries still differ after the hot phase.
  auto contact = [&](std::size_t p, std::size_t t, bool repair) {
    Node& a = nodes[p];
    Node& b = nodes[t];
    // Contact opener: summary + p's hot digest, paid whether or not the
    // target cooperates (Byzantine absorbers read and drop — the delta
    // they never ask for is the bandwidth the digest substrate saves).
    meter_digest(p, t,
                 obs::kGossipSummaryWireBits +
                     static_cast<std::uint64_t>(a.hot.size()) *
                         obs::kDigestEntryWireBits);
    if (!b.present) return;
    hot_exchange(p, t, a.hot);
    if (config.pull && !b.hot.empty()) {
      meter_digest(t, p, static_cast<std::uint64_t>(b.hot.size()) *
                             obs::kDigestEntryWireBits);
      hot_exchange(t, p, b.hot);
    }
    if (repair && (a.tracker.count() != b.tracker.count() ||
                   a.tracker.checksum() != b.tracker.checksum())) {
      full_sync(p, t);
    }
  };

  std::vector<PlayerId> halted_this_round;

  Round round = 0;
  for (; round < config.max_rounds && !roster.done(); ++round) {
    const obs::ScopedTimer timed(round_timer);

    // --- Churn (same round semantics as the synchronous engine): joiners
    // start relaying and probing this round; a departing node crash-stops
    // before taking this round's step and goes silent on the overlay.
    roster.admit_arrivals(round);
    for (PlayerId p : roster.apply_departures(round)) {
      nodes[p.value()].present = false;
    }
    if (!config.arrivals.empty()) {
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.honest || node.present) continue;
        const bool arrived = config.arrivals[p] <= round;
        const bool departed = !config.departures.empty() &&
                              config.departures[p] >= 0 &&
                              round >= config.departures[p];
        if (arrived && !departed) node.present = true;
      }
    }

    // --- Dissemination. Digest substrate: each present node with news
    // (or a pull/repair reason) initiates `fanout` anti-entropy
    // contacts. Exchange substrate: push last round's news to fanout
    // targets, optionally pull theirs. Every contact/exchange is
    // independently lost with loss_prob.
    if (config.fanout > 0 && digest_mode) {
      const obs::ScopedTimer timed_exchange(exchange_timer);
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.present) continue;
        // A node initiates only on its (staggered) contact rounds; in
        // between, advances accumulate in `hot`. Repair cadence counts
        // contact rounds, so the default (interval 1, repair 8) is a
        // repair every 8th round exactly as before.
        const Round phase = round + static_cast<Round>(p);
        if (phase % config.contact_interval != 0) continue;
        const bool repair_due =
            config.repair_interval > 0 &&
            (phase / config.contact_interval) % config.repair_interval == 0;
        // Quiet nodes stay silent (zero bits), exactly like an empty
        // legacy fresh list — unless pulling or due for repair.
        if (node.hot.empty() && !config.pull && !repair_due) continue;
        for (std::size_t k = 0; k < config.fanout; ++k) {
          const std::size_t target =
              neighbors.empty() ? gossip_rng.index(n) : neighbors[p][k];
          if (config.loss_prob > 0.0 &&
              gossip_rng.bernoulli(config.loss_prob)) {
            continue;  // the whole contact is lost; nothing is metered
          }
          if (target == p) continue;
          contact(p, target, repair_due);
        }
      }
    } else if (config.fanout > 0) {
      const obs::ScopedTimer timed_exchange(exchange_timer);
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.present) continue;
        if (!node.fresh.empty()) {
          for (std::size_t k = 0; k < config.fanout; ++k) {
            const std::size_t target =
                neighbors.empty() ? gossip_rng.index(n) : neighbors[p][k];
            if (config.loss_prob > 0.0 &&
                gossip_rng.bernoulli(config.loss_prob)) {
              continue;
            }
            if (obs::BandwidthMeter::enabled()) {
              const std::uint64_t bits =
                  node.fresh.size() * obs::kPostWireBits;
              obs::BandwidthMeter::add_write_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{p});
              obs::BandwidthMeter::add_read_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{target});
            }
            for (const PostIdx idx : node.fresh) deliver(target, idx);
          }
        }
        if (config.pull) {
          for (std::size_t k = 0; k < config.fanout; ++k) {
            const std::size_t source =
                neighbors.empty() ? gossip_rng.index(n) : neighbors[p][k];
            // Absent nodes return nothing; a pull of an empty peer is a
            // no-op.
            if (!nodes[source].present || nodes[source].fresh.empty()) {
              continue;
            }
            if (config.loss_prob > 0.0 &&
                gossip_rng.bernoulli(config.loss_prob)) {
              continue;
            }
            if (obs::BandwidthMeter::enabled()) {
              const std::uint64_t bits =
                  nodes[source].fresh.size() * obs::kPostWireBits;
              obs::BandwidthMeter::add_write_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{source});
              obs::BandwidthMeter::add_read_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{p});
            }
            for (const PostIdx idx : nodes[source].fresh) deliver(p, idx);
          }
        }
      }
    }

    // --- Byzantine injections: each fabricated post is pushed by its
    // author to fanout random nodes (the liar's own gossip round). Under
    // the digest substrate every injection gets the author's next
    // sequence number — distinct lies stay distinct on every replica.
    global_inbox.clear();
    std::vector<Post> lies;
    adversary.plan_round(AdversaryContext{world, population, round, global},
                         lies, streams.adversary);
    for (const Post& post : lies) {
      ACP_EXPECTS(!population.is_honest(post.author));
      ACP_EXPECTS(post.round == round);
      const PostIdx idx = intern_post(post);
      global_inbox.push_back(idx);
      const auto author = static_cast<std::uint32_t>(post.author.value());
      SeqTracker::Seq seq = 0;
      if (digest_mode) {
        seq = static_cast<SeqTracker::Seq>(author_log[author].size());
        author_log[author].push_back(idx);
      }
      for (std::size_t k = 0; k < std::max<std::size_t>(config.fanout, 1);
           ++k) {
        const std::size_t target = gossip_rng.index(n);
        if (obs::BandwidthMeter::enabled()) {
          const std::uint64_t bits =
              digest_mode ? obs::kDeltaHeaderWireBits + obs::kPostWireBits
                          : obs::kPostWireBits;
          const obs::IoChannel channel = digest_mode
                                             ? obs::IoChannel::kGossipDelta
                                             : obs::IoChannel::kGossipExchange;
          obs::BandwidthMeter::add_write_for(channel, bits, post.author);
          obs::BandwidthMeter::add_read_for(channel, bits, PlayerId{target});
        }
        if (digest_mode) {
          accept_seq(nodes[target], author, seq, idx);
        } else {
          deliver(target, idx);
        }
      }
    }

    // --- Honest steps against each node's own replica. roster.active()
    // is the searching set: honest, arrived, not departed, not satisfied,
    // in honest-id admission order.
    std::size_t probes_this_round = 0;
    halted_this_round.clear();
    {
      const obs::ScopedTimer timed_step(step_timer);
      for (PlayerId pid : roster.active()) {
        const std::size_t p = pid.value();
        Node& node = nodes[p];
        // Replica ingest and window queries below are this node's reads.
        const obs::BandwidthMeter::PlayerScope io_player(pid);
        node.protocol->on_round_begin(round, *node.replica);
        const auto choice =
            node.protocol->choose_probe(pid, round, streams.player(pid));
        if (!choice.has_value()) continue;

        const ObjectId object = *choice;
        const ProbeOutcome outcome = world.probe(object);
        ++probes_this_round;
        accounting.record_probe(pid, outcome.cost, world.is_good(object));

        const bool locally_good = world.model() == GoodnessModel::kLocalTesting
                                      ? outcome.locally_good
                                      : false;
        const StepOutcome step = node.protocol->on_probe_result(
            pid, round, object, outcome.value, outcome.cost, locally_good,
            streams.player(pid));
        if (step.post.has_value()) {
          const Post post{pid, round, step.post->object,
                          step.post->reported_value, step.post->positive};
          const PostIdx idx = intern_post(post);
          if (digest_mode) {
            const auto author = static_cast<std::uint32_t>(p);
            const auto seq =
                static_cast<SeqTracker::Seq>(author_log[author].size());
            author_log[author].push_back(idx);
            accept_seq(node, author, seq, idx);
          } else {
            node.seen.insert(post_key(post));
            node.inbox.push_back(idx);  // own replica, visible next round
            node.next_fresh.push_back(idx);
          }
          global_inbox.push_back(idx);
        }
        if (step.halt) {
          accounting.record_satisfied(pid, round);
          halted_this_round.push_back(pid);  // keeps relaying, stops probing
        }
      }
    }
    for (PlayerId pid : halted_this_round) roster.remove(pid);

    // --- Commit the round everywhere. Queues are swapped/cleared, never
    // reallocated: the whole exchange is allocation-free in steady state.
    {
      const obs::ScopedTimer timed_commit(commit_timer);
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.honest) continue;
        commit_indices(*node.replica, round, node.inbox);
        if (digest_mode) {
          // `hot` carries every advance since this node's last contact
          // round: drop what was advertised this round, fold in this
          // round's acceptances. Acceptance pushes authors
          // unconditionally; one sort+unique per round replaces a
          // dup-scan per accepted post, and a sorted hot list is what
          // lets contacts merge-walk digests.
          if ((round + static_cast<Round>(p)) % config.contact_interval ==
              0) {
            node.hot.clear();
          }
          if (!node.next_hot.empty()) {
            node.hot.insert(node.hot.end(), node.next_hot.begin(),
                            node.next_hot.end());
            std::sort(node.hot.begin(), node.hot.end());
            node.hot.erase(std::unique(node.hot.begin(), node.hot.end()),
                           node.hot.end());
            node.next_hot.clear();
          }
        } else {
          std::swap(node.fresh, node.next_fresh);
          node.next_fresh.clear();
        }
      }
      commit_global(round, global_inbox);
    }

    accounting.end_slice(round, global, roster.active().size(),
                         probes_this_round);
  }

  if (config.on_final_replica != nullptr) {
    for (std::size_t p = 0; p < n; ++p) {
      if (nodes[p].honest) config.on_final_replica(PlayerId{p}, *nodes[p].replica);
    }
  }

  return accounting.finish(round, roster.done(), global);
}

}  // namespace acp
