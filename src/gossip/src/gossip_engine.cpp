#include "acp/gossip/gossip_engine.hpp"

#include <cstdint>
#include <limits>
#include <span>
#include <unordered_set>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/engine/accounting.hpp"
#include "acp/engine/roster.hpp"
#include "acp/engine/streams.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/timer.hpp"
#include "acp/rng/rng.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {

/// Post identity for gossip deduplication: (author, origin round,
/// sequence-within-round is impossible — one post per author per round on
/// the honest side; dishonest injections are deduped the same way, which
/// caps a Byzantine identity at one *propagated* post per round, matching
/// the billboard contract).
std::uint64_t post_key(const Post& post) {
  return (static_cast<std::uint64_t>(post.author.value()) << 32) ^
         static_cast<std::uint64_t>(post.round);
}

/// Index into the per-run post arena. Every distinct post of a run is
/// stored exactly once; inboxes and fresh lists hold 4-byte indices, so
/// push/pull delivery moves indices instead of copying 40-byte posts
/// into every replica's buffers.
using PostIdx = std::uint32_t;

struct Node {
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<Billboard> replica;
  std::unordered_set<std::uint64_t> seen;
  std::vector<PostIdx> inbox;  // arrived this round; committed at round end
  std::vector<PostIdx> fresh;  // learned last round; pushed this round
  std::vector<PostIdx> next_fresh;
  bool honest = false;
  bool present = false;  // arrived and not crash-stopped: probes + relays
};

}  // namespace

RunResult GossipEngine::run(const World& world, const Population& population,
                            const ProtocolFactory& make_protocol,
                            Adversary& adversary,
                            const GossipConfig& config) {
  ACP_EXPECTS(config.max_rounds > 0);
  ACP_EXPECTS(make_protocol != nullptr);
  ACP_EXPECTS(config.loss_prob >= 0.0 && config.loss_prob < 1.0);

  const std::size_t n = population.num_players();
  const WorldView world_view(world);

  adversary.initialize(world, population);

  // The same per-run invariants every engine shares: derived RNG streams,
  // arrival/departure membership, stats + observer + metrics.
  EngineStreams streams(config.seed, n);
  Rng gossip_rng = streams.extra(EngineStreams::kGossipOffset);
  PlayerRoster roster(population, config.arrivals, config.departures);
  RunAccounting accounting(population, world.num_objects(), config.seed,
                           config.observer, "engine.gossip.rounds",
                           "engine.gossip.probes");
  // Per-run, per-player bandwidth attribution (no-op when metering is
  // off). Gossip traffic is metered per overlay link: a push or pull
  // transfer charges the sender's bits_written and the receiver's
  // bits_read, lost messages included at neither end.
  const obs::BandwidthMeter::RunScope io_run(n);
  obs::TimerStat& round_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.round");
  // Per-phase breakdown of the round (visible via --report-json): where
  // does a gossip round actually go? See docs/architecture.md,
  // "Performance baseline", for the recorded finding.
  obs::TimerStat& exchange_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.exchange");
  obs::TimerStat& step_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.step");
  obs::TimerStat& commit_timer =
      obs::MetricsRegistry::global().timer("engine.gossip.commit");

  std::vector<Node> nodes(n);
  for (std::size_t p = 0; p < n; ++p) {
    Node& node = nodes[p];
    node.honest = population.is_honest(PlayerId{p});
    if (!node.honest) continue;
    node.protocol = make_protocol();
    node.protocol->initialize(world_view, n);
    node.replica = std::make_unique<Billboard>(n, world.num_objects(),
                                               Billboard::Mode::kReplica);
    node.present =
        config.arrivals.empty() || config.arrivals[p] <= 0;
  }

  // The adversary's omniscient union log (also the run's post count).
  Billboard global(n, world.num_objects(), Billboard::Mode::kReplica);
  global.reserve(n);  // roughly one vote post per player in DISTILL runs

  // Per-run post arena: every post (honest or fabricated) lives here
  // once; all queues reference it by index.
  std::vector<Post> arena;
  arena.reserve(n);
  std::vector<PostIdx> global_inbox;
  std::vector<Post> commit_scratch;  // reused across all commits

  const auto intern_post = [&](const Post& post) -> PostIdx {
    ACP_EXPECTS(arena.size() <
                std::numeric_limits<std::uint32_t>::max());
    arena.push_back(post);
    return static_cast<PostIdx>(arena.size() - 1);
  };

  // Materialize an index batch into the reusable scratch and commit it;
  // the batch is cleared (capacity kept) for the next round.
  const auto commit_indices = [&](Billboard& billboard, Round round,
                                  std::vector<PostIdx>& indices) {
    commit_scratch.clear();
    commit_scratch.reserve(indices.size());
    for (const PostIdx idx : indices) commit_scratch.push_back(arena[idx]);
    billboard.commit_round_from(round, commit_scratch);
    indices.clear();
  };

  // Static overlay links for the non-complete topologies, fixed per run.
  std::vector<std::vector<std::size_t>> neighbors;
  if (config.topology != GossipTopology::kComplete && config.fanout > 0) {
    neighbors.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t k = 0; k < config.fanout; ++k) {
        if (config.topology == GossipTopology::kRing) {
          // Alternate +1, -1, +2, -2, ... around the ring.
          const std::size_t hop = k / 2 + 1;
          const std::size_t target =
              (k % 2 == 0) ? (p + hop) % n : (p + n - hop % n) % n;
          neighbors[p].push_back(target);
        } else {
          neighbors[p].push_back(gossip_rng.index(n));
        }
      }
    }
  }

  auto deliver = [&](std::size_t target, PostIdx idx) {
    Node& node = nodes[target];
    if (!node.present) return;  // Byzantine and absent nodes absorb
    if (!node.seen.insert(post_key(arena[idx])).second) return;
    node.inbox.push_back(idx);
    node.next_fresh.push_back(idx);
  };

  std::vector<PlayerId> halted_this_round;

  Round round = 0;
  for (; round < config.max_rounds && !roster.done(); ++round) {
    const obs::ScopedTimer timed(round_timer);

    // --- Churn (same round semantics as the synchronous engine): joiners
    // start relaying and probing this round; a departing node crash-stops
    // before taking this round's step and goes silent on the overlay.
    roster.admit_arrivals(round);
    for (PlayerId p : roster.apply_departures(round)) {
      nodes[p.value()].present = false;
    }
    if (!config.arrivals.empty()) {
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.honest || node.present) continue;
        const bool arrived = config.arrivals[p] <= round;
        const bool departed = !config.departures.empty() &&
                              config.departures[p] >= 0 &&
                              round >= config.departures[p];
        if (arrived && !departed) node.present = true;
      }
    }

    // --- Gossip exchange: push last round's news to fanout random nodes;
    // with pull enabled, also fetch fanout random peers' news. Every
    // exchange is independently lost with loss_prob.
    if (config.fanout > 0) {
      const obs::ScopedTimer timed_exchange(exchange_timer);
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.present) continue;
        if (!node.fresh.empty()) {
          for (std::size_t k = 0; k < config.fanout; ++k) {
            const std::size_t target =
                neighbors.empty() ? gossip_rng.index(n) : neighbors[p][k];
            if (config.loss_prob > 0.0 &&
                gossip_rng.bernoulli(config.loss_prob)) {
              continue;
            }
            if (obs::BandwidthMeter::enabled()) {
              const std::uint64_t bits =
                  node.fresh.size() * obs::kPostWireBits;
              obs::BandwidthMeter::add_write_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{p});
              obs::BandwidthMeter::add_read_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{target});
            }
            for (const PostIdx idx : node.fresh) deliver(target, idx);
          }
        }
        if (config.pull) {
          for (std::size_t k = 0; k < config.fanout; ++k) {
            const std::size_t source =
                neighbors.empty() ? gossip_rng.index(n) : neighbors[p][k];
            // Absent nodes return nothing; a pull of an empty peer is a
            // no-op.
            if (!nodes[source].present || nodes[source].fresh.empty()) {
              continue;
            }
            if (config.loss_prob > 0.0 &&
                gossip_rng.bernoulli(config.loss_prob)) {
              continue;
            }
            if (obs::BandwidthMeter::enabled()) {
              const std::uint64_t bits =
                  nodes[source].fresh.size() * obs::kPostWireBits;
              obs::BandwidthMeter::add_write_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{source});
              obs::BandwidthMeter::add_read_for(
                  obs::IoChannel::kGossipExchange, bits, PlayerId{p});
            }
            for (const PostIdx idx : nodes[source].fresh) deliver(p, idx);
          }
        }
      }
    }

    // --- Byzantine injections: each fabricated post is pushed by its
    // author to fanout random nodes (the liar's own gossip round).
    global_inbox.clear();
    std::vector<Post> lies;
    adversary.plan_round(AdversaryContext{world, population, round, global},
                         lies, streams.adversary);
    for (const Post& post : lies) {
      ACP_EXPECTS(!population.is_honest(post.author));
      ACP_EXPECTS(post.round == round);
      const PostIdx idx = intern_post(post);
      global_inbox.push_back(idx);
      for (std::size_t k = 0; k < std::max<std::size_t>(config.fanout, 1);
           ++k) {
        const std::size_t target = gossip_rng.index(n);
        if (obs::BandwidthMeter::enabled()) {
          obs::BandwidthMeter::add_write_for(obs::IoChannel::kGossipExchange,
                                             obs::kPostWireBits, post.author);
          obs::BandwidthMeter::add_read_for(obs::IoChannel::kGossipExchange,
                                            obs::kPostWireBits,
                                            PlayerId{target});
        }
        deliver(target, idx);
      }
    }

    // --- Honest steps against each node's own replica. roster.active()
    // is the searching set: honest, arrived, not departed, not satisfied,
    // in honest-id admission order.
    std::size_t probes_this_round = 0;
    halted_this_round.clear();
    {
      const obs::ScopedTimer timed_step(step_timer);
      for (PlayerId pid : roster.active()) {
        const std::size_t p = pid.value();
        Node& node = nodes[p];
        // Replica ingest and window queries below are this node's reads.
        const obs::BandwidthMeter::PlayerScope io_player(pid);
        node.protocol->on_round_begin(round, *node.replica);
        const auto choice =
            node.protocol->choose_probe(pid, round, streams.player(pid));
        if (!choice.has_value()) continue;

        const ObjectId object = *choice;
        const ProbeOutcome outcome = world.probe(object);
        ++probes_this_round;
        accounting.record_probe(pid, outcome.cost, world.is_good(object));

        const bool locally_good = world.model() == GoodnessModel::kLocalTesting
                                      ? outcome.locally_good
                                      : false;
        const StepOutcome step = node.protocol->on_probe_result(
            pid, round, object, outcome.value, outcome.cost, locally_good,
            streams.player(pid));
        if (step.post.has_value()) {
          const Post post{pid, round, step.post->object,
                          step.post->reported_value, step.post->positive};
          const PostIdx idx = intern_post(post);
          node.seen.insert(post_key(post));
          node.inbox.push_back(idx);  // own replica, visible next round
          node.next_fresh.push_back(idx);
          global_inbox.push_back(idx);
        }
        if (step.halt) {
          accounting.record_satisfied(pid, round);
          halted_this_round.push_back(pid);  // keeps relaying, stops probing
        }
      }
    }
    for (PlayerId pid : halted_this_round) roster.remove(pid);

    // --- Commit the round everywhere. Queues are swapped/cleared, never
    // reallocated: the whole exchange is allocation-free in steady state.
    {
      const obs::ScopedTimer timed_commit(commit_timer);
      for (std::size_t p = 0; p < n; ++p) {
        Node& node = nodes[p];
        if (!node.honest) continue;
        commit_indices(*node.replica, round, node.inbox);
        std::swap(node.fresh, node.next_fresh);
        node.next_fresh.clear();
      }
      commit_indices(global, round, global_inbox);
    }

    accounting.end_slice(round, global, roster.active().size(),
                         probes_this_round);
  }

  return accounting.finish(round, roster.done(), global);
}

}  // namespace acp
