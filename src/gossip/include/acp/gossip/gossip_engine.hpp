// GossipEngine — the billboard as a real peer-to-peer substrate.
//
// The paper assumes a shared billboard service ("the system maintains a
// shared billboard", §1.1). In an actual peer-to-peer deployment — the
// paper's title domain — no such service exists: each node holds a local
// replica and posts spread epidemically. This engine implements that
// substrate and runs the synchronous protocols on top of it:
//
//  * every honest node keeps a replica Billboard (posts retain their
//    origin stamps but arrive late and batched) and its own protocol
//    instance — there is no shared state between players at all;
//  * Byzantine nodes absorb — they relay nothing — and inject their
//    fabricated posts into `fanout` random nodes per round;
//  * satisfied nodes stop probing but keep relaying (cheap, realistic,
//    and keeps dissemination alive for stragglers).
//
// Two interchangeable dissemination substrates (GossipConfig::substrate):
//
//  * kDigest (default) — versioned anti-entropy. Every post carries a
//    monotonic per-author sequence number; replicas track per-author
//    high-water marks (SeqTracker). A contact first exchanges a 128-bit
//    (count, checksum) summary, then compact digests (the initiator's
//    recently-advanced authors, or the full sparse high-water vector on
//    staggered repair contacts), and transfers only the missing delta
//    ranges. There is no per-round dedup set: duplicate suppression is a
//    sequence-number compare. Wire cost is metered on the gossip.digest
//    and gossip.delta channels.
//  * kExchange — the legacy exchange-everything path: each node pushes
//    the posts it learned last round to `fanout` targets and dedups by a
//    per-node hash set. Kept for one release as the differential-testing
//    oracle (tests/gossip_antientropy_test.cpp pins digest ≡ exchange
//    final replica state); metered on gossip.exchange.
//
// The interesting measurement (bench tab10_gossip): DISTILL's phase
// machinery assumes a consistent view; under gossip, views — and hence
// per-node candidate sets — diverge by the propagation delay. Because the
// counting windows are Θ(1/α) rounds wide and thresholds have 2x slack,
// the algorithm absorbs an O(log n / fanout) delay with a bounded cost
// factor, degrading gracefully as fanout shrinks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "acp/billboard/billboard.hpp"

#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

class BillboardService;

enum class GossipTopology {
  /// Push targets drawn uniformly from all nodes each round (the classic
  /// epidemic model; O(log n) dissemination w.h.p.).
  kComplete,
  /// Static ring: node i only ever pushes to i±1, i±2, ... (fanout
  /// alternates sides). Diameter O(n/fanout): the worst realistic overlay.
  kRing,
  /// Static random d-regular-ish overlay (d = fanout out-neighbors chosen
  /// once per run): O(log n) diameter with high probability, but fixed
  /// links mean a node whose whole neighborhood is Byzantine is cut off.
  kRandomGraph,
};

enum class GossipSubstrate {
  /// Versioned digest anti-entropy: sequence-numbered posts, summary +
  /// sparse high-water digests, delta-only transfer. The default.
  kDigest,
  /// Exchange-everything push with a per-node dedup set. The pre-rewrite
  /// substrate, kept as the differential-testing oracle.
  kExchange,
};

struct GossipConfig {
  /// Push targets per node per round. 0 disables dissemination entirely
  /// (every node searches alone — the degenerate control).
  std::size_t fanout = 2;
  GossipTopology topology = GossipTopology::kComplete;
  GossipSubstrate substrate = GossipSubstrate::kDigest;
  /// Digest substrate only: every `repair_interval`-th contact round
  /// (staggered per node) a contact escalates to a full-digest sync when
  /// the 128-bit summaries still differ after the hot exchange. This is
  /// what heals losses and catches up late arrivals without re-flooding;
  /// 0 disables repair (hot-path rumor spreading only).
  Round repair_interval = 8;
  /// Digest substrate only: a node initiates contacts every
  /// `contact_interval` rounds (staggered per node), accumulating its hot
  /// authors in between. 1 (default) is eager rumor spreading — advances
  /// are advertised the round after they happen. Larger values are the
  /// classic lazy anti-entropy cadence: one digest entry then covers a
  /// multi-post delta range, so control traffic amortizes toward the
  /// content floor (each post crossing each link once) at the price of
  /// proportionally slower dissemination. Exchange substrate ignores it.
  Round contact_interval = 1;
  /// Push-pull: each node additionally contacts `fanout` random peers and
  /// fetches what they learned last round. Doubles the per-round exchange
  /// budget but, unlike doubling fanout, pull also works for nodes nobody
  /// happens to push to.
  bool pull = false;
  /// Lossy links: every push/pull exchange is independently dropped with
  /// this probability (the classic epidemic-robustness knob).
  double loss_prob = 0.0;
  Round max_rounds = 100000;
  std::uint64_t seed = 1;
  /// Optional per-player arrival rounds (indexed by PlayerId), same
  /// semantics as SyncRunConfig::arrivals: the node neither probes nor
  /// relays before its arrival round. Empty means everyone starts at 0.
  std::vector<Round> arrivals = {};
  /// Optional per-player fail-stop departure rounds (-1 = never), same
  /// semantics as SyncRunConfig::departures: the node crash-stops at that
  /// round — it stops probing *and* relaying; already-delivered posts
  /// survive on other replicas. Empty means nobody departs.
  std::vector<Round> departures = {};
  /// Optional measurement hook; not owned. on_round_end receives the
  /// adversary's omniscient union log as the billboard argument (there is
  /// no shared billboard under gossip).
  RunObserver* observer = nullptr;
  /// Optional end-of-run inspection hook: called once per honest node
  /// (ascending id, departed nodes included) with its final committed
  /// replica. This is how the substrate-equivalence tests compare digest
  /// vs exchange final state without widening RunResult.
  std::function<void(PlayerId, const Billboard&)> on_final_replica = nullptr;
  /// Backend for the adversary's omniscient union log; not owned. Null
  /// (the default) keeps it in-process. A non-null service must be a
  /// freshly opened *replica-mode* board matching the run's dimensions —
  /// the union log stamps posts with their origin rounds but honest
  /// replicas stay local either way (they model per-node state, not the
  /// shared service).
  BillboardService* billboard = nullptr;
};

/// Builds one protocol instance per honest node (no shared state).
using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

class GossipEngine {
 public:
  /// The adversary observes an omniscient union log (it is a single
  /// coordinated entity, §2.3); honest nodes only ever see their replicas.
  static RunResult run(const World& world, const Population& population,
                       const ProtocolFactory& make_protocol,
                       Adversary& adversary, const GossipConfig& config);
};

}  // namespace acp
