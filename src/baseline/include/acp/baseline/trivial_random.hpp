// The trivial algorithm (§3): each player probes a uniformly random object
// every step, disregarding the billboard completely. Expected time 1/beta.
// Immune to any adversary — and the benchmark floor DISTILL must beat when
// 1/alpha << 1/beta.
#pragma once

#include "acp/engine/async_engine.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

class TrivialRandomProtocol final : public Protocol {
 public:
  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;
  /// choose_probe touches nothing but the Rng and the fixed m.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  std::size_t m_ = 0;
};

/// The same rule in the asynchronous model.
class AsyncTrivialRandomProtocol final : public AsyncProtocol {
 public:
  void initialize(const WorldView& world, std::size_t num_players) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, ObjectId object, double value,
                              double cost, bool locally_good,
                              Rng& rng) override;

 private:
  std::size_t m_ = 0;
};

}  // namespace acp
