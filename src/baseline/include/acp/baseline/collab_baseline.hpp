// The prior-work baseline — "Collaboration of untrusting peers" (EC'04),
// the algorithm the paper compares DISTILL against (§1.2, §3).
//
// Rule (the "balanced exploration/exploitation" step): at each step, with
// probability 1/2 probe a uniformly random object, otherwise pick a
// uniformly random player and probe the object that player currently votes
// for (falling back to a random object if it has none). One positive vote
// per player, derived on the read side as usual.
//
// Under a round-robin synchronous schedule this halts in expected
// O(log n/(alpha beta n) + log n/alpha) rounds — the rumor-spreading
// doubling argument — which is Omega(log n) even when almost everyone is
// honest. That log n is exactly what DISTILL removes.
#pragma once

#include <optional>

#include "acp/billboard/vote_ledger.hpp"
#include "acp/engine/async_engine.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

class CollabBaselineProtocol final : public Protocol {
 public:
  /// `follow_prob` — probability of the advice step (1/2 in the paper).
  explicit CollabBaselineProtocol(double follow_prob = 0.5);

  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;

  [[nodiscard]] const VoteLedger& ledger() const;

  /// choose_probe reads only the ledger, which ingests exclusively in
  /// on_round_begin.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  double follow_prob_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::optional<VoteLedger> ledger_;
};

/// The same rule in its native asynchronous model (for the EC'04 total-cost
/// experiment and the schedule attack demonstration).
class AsyncCollabProtocol final : public AsyncProtocol {
 public:
  explicit AsyncCollabProtocol(double follow_prob = 0.5);

  void initialize(const WorldView& world, std::size_t num_players) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, ObjectId object, double value,
                              double cost, bool locally_good,
                              Rng& rng) override;

 private:
  double follow_prob_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::optional<VoteLedger> ledger_;
};

}  // namespace acp
