// Popularity-following baseline — the strawman §1.3 warns about.
//
// "[Web-search-style] algorithms essentially compute the popularity of a
// page, and are known to be vulnerable [to] malicious users who generate
// lots of links ... Such popularity-style algorithms actually enhance the
// power of malicious users." (§1.3, discussing EigenTrust [6].)
//
// The rule: with probability `follow_prob`, probe an object sampled
// proportionally to its total vote count (rich-get-richer); otherwise a
// uniformly random object. Unlike DISTILL there is no one-vote rule on
// the read side and no freshness window: every positive report ever
// posted keeps counting. A colluding clique that concentrates its posts
// on a few decoys therefore *owns* the popularity distribution — bench
// `tab11_popularity` measures the resulting amplification, reproducing
// the paper's argument for why DISTILL is built the way it is.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/engine/protocol.hpp"

namespace acp {

class PopularityProtocol final : public Protocol {
 public:
  explicit PopularityProtocol(double follow_prob = 0.5);

  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;

  /// Current popularity score (total positive reports ever) of an object.
  [[nodiscard]] Count popularity(ObjectId object) const;

  /// choose_probe reads only the score table, which mutates exclusively
  /// in on_round_begin.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  double follow_prob_;
  std::size_t m_ = 0;
  std::size_t posts_consumed_ = 0;
  /// Raw positive-report counts — deliberately NO one-vote rule.
  std::vector<Count> score_;
  Count total_score_ = 0;
};

}  // namespace acp
