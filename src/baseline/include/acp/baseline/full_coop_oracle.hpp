// Full-cooperation oracle — the idealized coordination the Theorem 1 proof
// grants the honest players: they magically know who is honest, partition
// the unprobed objects among themselves ("drawing balls from a shared
// urn"), and all stop one round after the first good hit. Not implementable
// in the real model; used as the measured floor next to the Theorem 1 bound
// (bench TAB-6).
#pragma once

#include <vector>

#include "acp/engine/protocol.hpp"

namespace acp {

class FullCoopOracle final : public Protocol {
 public:
  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;

 private:
  /// Globally shuffled probe order; players consume it disjointly.
  std::vector<ObjectId> order_;
  std::size_t cursor_ = 0;
  bool shuffled_ = false;
  /// Set once any player probes a good object; everyone follows it next
  /// round (one extra probe each — the "+1" of the oracle).
  std::optional<ObjectId> found_;
};

}  // namespace acp
