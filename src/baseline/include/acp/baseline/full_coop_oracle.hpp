// Full-cooperation oracle — the idealized coordination the Theorem 1 proof
// grants the honest players: they magically know who is honest, partition
// the unprobed objects among themselves ("drawing balls from a shared
// urn"), and all stop one round after the first good hit. Not implementable
// in the real model; used as the measured floor next to the Theorem 1 bound
// (bench TAB-6).
//
// Two modes, one semantics ("everyone follows the discovery next round"):
//
//  * Roster mode (synchronous engines): the all-active policies call
//    on_active_roster once per round, where the oracle promotes any
//    discovery staged by the previous round (lowest player id wins —
//    deterministic) and deals each active player its urn slot for this
//    round. choose_probe is then a pure read and on_probe_result writes
//    only the probing player's discovery slot plus a commutative flag, so
//    parallel_choose_safe() holds and the oracle rides the parallel
//    kernel like every other registry protocol.
//  * Step mode (lockstep substrate, which never reveals a roster): the
//    original shared lazy-shuffle cursor, advanced per choose_probe call.
//    Only ever driven single-threaded (one player per basic step).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "acp/engine/protocol.hpp"

namespace acp {

class FullCoopOracle final : public Protocol {
 public:
  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  void on_active_roster(Round round, std::span<const PlayerId> active,
                        Rng& rng) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  static constexpr std::uint64_t kNoDiscovery = ~std::uint64_t{0};

  /// Globally shuffled probe order; players consume it disjointly.
  std::vector<ObjectId> order_;
  std::size_t cursor_ = 0;
  bool shuffled_ = false;
  /// Set once a discovery is promoted (step mode: immediately); everyone
  /// follows it next round (one extra probe each — the oracle's "+1").
  std::optional<ObjectId> found_;

  // Roster mode: latched by the first on_active_roster call.
  bool roster_mode_ = false;
  /// Round-constant once dealt: player -> index into order_.
  std::vector<std::size_t> slot_;
  /// Per-player staged discovery (object id, kNoDiscovery when none).
  /// Each on_probe_result writes only the probing player's entry;
  /// on_active_roster scans in player-id order next round.
  std::vector<std::uint64_t> found_by_;
  /// Commutative monotone flag (false -> true only): lets the scan be
  /// skipped on discovery-free rounds. Relaxed is enough — the round
  /// barrier between staging and the next round's scan orders the data.
  std::atomic<bool> any_found_{false};
};

}  // namespace acp
