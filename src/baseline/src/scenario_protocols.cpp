// Scenario-registry factories for the non-collaborative and naive
// baselines (§3 comparisons). See acp/scenario/modules.hpp for how these
// registrations reach the process-wide registry.

#include "acp/baseline/collab_baseline.hpp"
#include "acp/baseline/full_coop_oracle.hpp"
#include "acp/baseline/popularity.hpp"
#include "acp/baseline/trivial_random.hpp"
#include "acp/scenario/modules.hpp"
#include "acp/scenario/registry.hpp"

namespace acp::scenario {

namespace {

std::unique_ptr<Protocol> make_collab(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'collab'", {"follow_prob"});
  return std::make_unique<CollabBaselineProtocol>(p.get("follow_prob", 0.5));
}

std::unique_ptr<Protocol> make_trivial(const ProtocolBuildContext& ctx) {
  ctx.spec.protocol_params.require_known("protocol 'trivial'", {});
  return std::make_unique<TrivialRandomProtocol>();
}

std::unique_ptr<Protocol> make_popularity(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'popularity'", {"follow_prob"});
  return std::make_unique<PopularityProtocol>(p.get("follow_prob", 0.5));
}

std::unique_ptr<Protocol> make_full_coop(const ProtocolBuildContext& ctx) {
  ctx.spec.protocol_params.require_known("protocol 'full-coop'", {});
  return std::make_unique<FullCoopOracle>();
}

}  // namespace

void register_builtin_baseline_protocols(ProtocolRegistry& registry) {
  registry.add("collab", make_collab);
  registry.add("trivial", make_trivial);
  registry.add("popularity", make_popularity);
  registry.add("full-coop", make_full_coop);
}

}  // namespace acp::scenario
