#include "acp/baseline/trivial_random.hpp"

namespace acp {

void TrivialRandomProtocol::initialize(const WorldView& world,
                                       std::size_t /*num_players*/) {
  m_ = world.num_objects();
}

void TrivialRandomProtocol::on_round_begin(Round /*round*/,
                                           const Billboard& /*billboard*/) {}

std::optional<ObjectId> TrivialRandomProtocol::choose_probe(
    PlayerId /*player*/, Round /*round*/, Rng& rng) {
  return ObjectId{rng.index(m_)};
}

StepOutcome TrivialRandomProtocol::on_probe_result(
    PlayerId /*player*/, Round /*round*/, ObjectId object, double value,
    double /*cost*/, bool locally_good, Rng& /*rng*/) {
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

void AsyncTrivialRandomProtocol::initialize(const WorldView& world,
                                            std::size_t /*num_players*/) {
  m_ = world.num_objects();
}

std::optional<ObjectId> AsyncTrivialRandomProtocol::choose_probe(
    PlayerId /*player*/, const Billboard& /*billboard*/, Rng& rng) {
  return ObjectId{rng.index(m_)};
}

StepOutcome AsyncTrivialRandomProtocol::on_probe_result(
    PlayerId /*player*/, ObjectId object, double value, double /*cost*/,
    bool locally_good, Rng& /*rng*/) {
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

}  // namespace acp
