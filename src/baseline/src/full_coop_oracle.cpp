#include "acp/baseline/full_coop_oracle.hpp"

#include <numeric>

#include "acp/util/contracts.hpp"

namespace acp {

void FullCoopOracle::initialize(const WorldView& world,
                                std::size_t num_players) {
  order_.resize(world.num_objects());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = ObjectId{i};
  cursor_ = 0;
  shuffled_ = false;
  found_.reset();
  roster_mode_ = false;
  slot_.assign(num_players, 0);
  found_by_.assign(num_players, kNoDiscovery);
  any_found_.store(false, std::memory_order_relaxed);
}

void FullCoopOracle::on_round_begin(Round /*round*/,
                                    const Billboard& /*billboard*/) {}

void FullCoopOracle::on_active_roster(Round /*round*/,
                                      std::span<const PlayerId> active,
                                      Rng& rng) {
  roster_mode_ = true;
  // Promote a discovery staged by last round's probes: the scan runs in
  // player-id order, so the winning entry — and the whole run — is
  // deterministic at any thread count.
  if (!found_.has_value() && any_found_.load(std::memory_order_relaxed)) {
    for (const std::uint64_t staged : found_by_) {
      if (staged != kNoDiscovery) {
        found_ = ObjectId{staged};
        break;
      }
    }
  }
  if (found_.has_value()) return;
  if (!shuffled_) {
    // The oracle's shared random order, seeded from the engine's
    // scheduler stream (deterministic given the trial seed).
    rng.shuffle(order_);
    shuffled_ = true;
  }
  // Deal this round's urn slots up front; choose_probe becomes a pure
  // read. Wrapping re-deals from the top (urn exhausted without a hit —
  // impossible when the world has a good object, but stay total).
  ACP_ASSERT(!order_.empty());
  for (std::size_t i = 0; i < active.size(); ++i) {
    slot_[active[i].value()] = (cursor_ + i) % order_.size();
  }
  cursor_ = (cursor_ + active.size()) % order_.size();
}

std::optional<ObjectId> FullCoopOracle::choose_probe(PlayerId player,
                                                     Round /*round*/,
                                                     Rng& rng) {
  if (found_.has_value()) return *found_;  // follow the discovery
  if (roster_mode_) {
    return order_[slot_[player.value()]];
  }
  // Step mode (lockstep substrate): shared lazy shuffle + cursor, only
  // ever driven one player at a time.
  if (!shuffled_) {
    rng.shuffle(order_);
    shuffled_ = true;
  }
  if (cursor_ >= order_.size()) {
    cursor_ = 0;
  }
  return order_[cursor_++];
}

StepOutcome FullCoopOracle::on_probe_result(PlayerId player, Round /*round*/,
                                            ObjectId object, double value,
                                            double /*cost*/, bool locally_good,
                                            Rng& /*rng*/) {
  if (locally_good) {
    if (roster_mode_) {
      // Stage into the probing player's own slot; promotion happens at
      // the next round's roster reveal (the "+1 round" oracle semantics).
      found_by_[player.value()] = object.value();
      any_found_.store(true, std::memory_order_relaxed);
    } else if (!found_.has_value()) {
      found_ = object;
    }
  }
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

}  // namespace acp
