#include "acp/baseline/full_coop_oracle.hpp"

#include <numeric>

#include "acp/util/contracts.hpp"

namespace acp {

void FullCoopOracle::initialize(const WorldView& world,
                                std::size_t /*num_players*/) {
  order_.resize(world.num_objects());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = ObjectId{i};
  cursor_ = 0;
  shuffled_ = false;
  found_.reset();
}

void FullCoopOracle::on_round_begin(Round /*round*/,
                                    const Billboard& /*billboard*/) {}

std::optional<ObjectId> FullCoopOracle::choose_probe(PlayerId /*player*/,
                                                     Round /*round*/,
                                                     Rng& rng) {
  if (found_.has_value()) return *found_;  // follow the discovery
  if (!shuffled_) {
    // The oracle's shared random order; the first caller's stream seeds it
    // (deterministic given the trial seed).
    rng.shuffle(order_);
    shuffled_ = true;
  }
  if (cursor_ >= order_.size()) {
    // Urn exhausted without a hit (impossible when the world has a good
    // object, but stay total): start over.
    cursor_ = 0;
  }
  return order_[cursor_++];
}

StepOutcome FullCoopOracle::on_probe_result(PlayerId /*player*/,
                                            Round /*round*/, ObjectId object,
                                            double value, double /*cost*/,
                                            bool locally_good, Rng& /*rng*/) {
  if (locally_good && !found_.has_value()) found_ = object;
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

}  // namespace acp
