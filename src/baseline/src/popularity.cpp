#include "acp/baseline/popularity.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

PopularityProtocol::PopularityProtocol(double follow_prob)
    : follow_prob_(follow_prob) {
  ACP_EXPECTS(follow_prob_ >= 0.0 && follow_prob_ <= 1.0);
}

void PopularityProtocol::initialize(const WorldView& world,
                                    std::size_t /*num_players*/) {
  m_ = world.num_objects();
  posts_consumed_ = 0;
  score_.assign(m_, 0);
  total_score_ = 0;
}

void PopularityProtocol::on_round_begin(Round /*round*/,
                                        const Billboard& billboard) {
  const auto& posts = billboard.posts();
  for (; posts_consumed_ < posts.size(); ++posts_consumed_) {
    const Post& post = posts[posts_consumed_];
    if (!post.positive) continue;
    ++score_[post.object.value()];  // every repeat counts: no vote cap
    ++total_score_;
  }
}

Count PopularityProtocol::popularity(ObjectId object) const {
  ACP_EXPECTS(object.value() < m_);
  return score_[object.value()];
}

std::optional<ObjectId> PopularityProtocol::choose_probe(PlayerId /*player*/,
                                                         Round /*round*/,
                                                         Rng& rng) {
  if (total_score_ > 0 && rng.bernoulli(follow_prob_)) {
    // Sample proportionally to raw popularity.
    auto pick = static_cast<Count>(
        rng.uniform_below(static_cast<std::uint64_t>(total_score_)));
    for (std::size_t i = 0; i < m_; ++i) {
      if (pick < score_[i]) return ObjectId{i};
      pick -= score_[i];
    }
  }
  return ObjectId{rng.index(m_)};
}

StepOutcome PopularityProtocol::on_probe_result(PlayerId /*player*/,
                                                Round /*round*/,
                                                ObjectId object, double value,
                                                double /*cost*/,
                                                bool locally_good,
                                                Rng& /*rng*/) {
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

}  // namespace acp
