#include "acp/baseline/collab_baseline.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

CollabBaselineProtocol::CollabBaselineProtocol(double follow_prob)
    : follow_prob_(follow_prob) {
  ACP_EXPECTS(follow_prob_ >= 0.0 && follow_prob_ <= 1.0);
}

void CollabBaselineProtocol::initialize(const WorldView& world,
                                        std::size_t num_players) {
  n_ = num_players;
  m_ = world.num_objects();
  ledger_.emplace(VotePolicy::kFirstPositive, n_, m_, 1);
}

void CollabBaselineProtocol::on_round_begin(Round /*round*/,
                                            const Billboard& billboard) {
  ledger_->ingest(billboard);
}

std::optional<ObjectId> CollabBaselineProtocol::choose_probe(
    PlayerId /*player*/, Round /*round*/, Rng& rng) {
  if (rng.bernoulli(follow_prob_)) {
    const PlayerId j{rng.index(n_)};
    if (const auto vote = ledger_->current_vote(j); vote.has_value()) {
      return *vote;
    }
  }
  return ObjectId{rng.index(m_)};
}

StepOutcome CollabBaselineProtocol::on_probe_result(
    PlayerId /*player*/, Round /*round*/, ObjectId object, double value,
    double /*cost*/, bool locally_good, Rng& /*rng*/) {
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

const VoteLedger& CollabBaselineProtocol::ledger() const {
  ACP_EXPECTS(ledger_.has_value());
  return *ledger_;
}

AsyncCollabProtocol::AsyncCollabProtocol(double follow_prob)
    : follow_prob_(follow_prob) {
  ACP_EXPECTS(follow_prob_ >= 0.0 && follow_prob_ <= 1.0);
}

void AsyncCollabProtocol::initialize(const WorldView& world,
                                     std::size_t num_players) {
  n_ = num_players;
  m_ = world.num_objects();
  ledger_.emplace(VotePolicy::kFirstPositive, n_, m_, 1);
}

std::optional<ObjectId> AsyncCollabProtocol::choose_probe(
    PlayerId /*player*/, const Billboard& billboard, Rng& rng) {
  ledger_->ingest(billboard);
  if (rng.bernoulli(follow_prob_)) {
    const PlayerId j{rng.index(n_)};
    if (const auto vote = ledger_->current_vote(j); vote.has_value()) {
      return *vote;
    }
  }
  return ObjectId{rng.index(m_)};
}

StepOutcome AsyncCollabProtocol::on_probe_result(PlayerId /*player*/,
                                                 ObjectId object, double value,
                                                 double /*cost*/,
                                                 bool locally_good,
                                                 Rng& /*rng*/) {
  return StepOutcome{ProbeReport{object, value, locally_good}, locally_good};
}

}  // namespace acp
