// ParamMap — the open-ended knob bag of a scenario's protocol/adversary
// section.
//
// Registered factories read their knobs from here by name, so a scenario
// file can configure any protocol the registry knows without the spec type
// enumerating every parameter of every algorithm. Values are doubles
// (covers every numeric and boolean knob in this codebase); factories
// declare their known keys and reject unknown ones with a message listing
// what is valid — a typo in a scenario file must not silently run the
// default configuration.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

namespace acp::scenario {

class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<const std::string, double>> init)
      : values_(init) {}

  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool contains(std::string_view key) const {
    return values_.find(std::string(key)) != values_.end();
  }

  void set(std::string key, double value) {
    values_[std::move(key)] = value;
  }

  /// Value of `key`, or `fallback` when absent.
  [[nodiscard]] double get(std::string_view key, double fallback) const;
  /// get() rounded to size_t; throws std::invalid_argument when negative.
  [[nodiscard]] std::size_t get_size(std::string_view key,
                                     std::size_t fallback) const;
  /// get() != 0.
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Throws std::invalid_argument if any stored key is not in `known`.
  /// `owner` names the protocol/adversary for the error message, e.g.
  /// "protocol 'distill'".
  void require_known(std::string_view owner,
                     std::initializer_list<std::string_view> known) const;

  [[nodiscard]] const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

  friend bool operator==(const ParamMap&, const ParamMap&) = default;

 private:
  std::map<std::string, double> values_;  // ordered: deterministic JSON
};

}  // namespace acp::scenario
