// Registration entry points implemented by the algorithm modules.
//
// Each module registers its own classes (the factory code lives next to
// the types it constructs):
//   register_builtin_core_protocols      src/core/src/scenario_protocols.cpp
//   register_builtin_baseline_protocols  src/baseline/src/scenario_protocols.cpp
//   register_builtin_adversaries         src/adversary/src/scenario_adversaries.cpp
//
// registries() calls all three on first use. The calls are ordinary
// strong symbol references, so the linker is forced to pull the
// registration objects out of the static archives — unlike
// static-initializer self-registration, which silently drops unreferenced
// translation units.
#pragma once

namespace acp::scenario {

class ProtocolRegistry;
class AdversaryRegistry;

void register_builtin_core_protocols(ProtocolRegistry& registry);
void register_builtin_baseline_protocols(ProtocolRegistry& registry);
void register_builtin_adversaries(AdversaryRegistry& registry);

}  // namespace acp::scenario
