// String-keyed factories for protocols and adversaries.
//
// Every algorithm in the reproduction — DISTILL and its paper variants
// (HP, the alpha-halving wrapper, cost-class scheduling, NOLT), the
// baselines, and the whole Byzantine strategy library — registers a
// factory under its scenario name, so a ScenarioSpec can construct any of
// them without the construction code knowing the concrete types. The
// factories themselves live next to the classes they build
// (src/core/src/scenario_protocols.cpp, src/baseline/...,
// src/adversary/...); registries().* pulls them in at first use via
// register_builtin_* (modules.hpp), avoiding the static-initializer
// dead-stripping that plagues self-registration in static libraries.
//
// Unknown names throw std::invalid_argument listing every registered name
// — a typo must read like a typo, not like a crash.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "acp/engine/adversary.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/scenario/spec.hpp"
#include "acp/world/world.hpp"

namespace acp::scenario {

/// Everything a protocol factory may need: the spec (alpha, n, params)
/// and the already-built world (no-lt derives its horizon from beta).
struct ProtocolBuildContext {
  const ScenarioSpec& spec;
  const World& world;
};

/// Adversary factories additionally see the trial's protocol instance so
/// observer strategies (split-vote) can attach to it.
struct AdversaryBuildContext {
  const ScenarioSpec& spec;
  Protocol& protocol;
};

class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Protocol>(const ProtocolBuildContext&)>;

  /// Last registration wins (tests may shadow a builtin).
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Throws std::invalid_argument listing the registered names when
  /// `name` is unknown; otherwise invokes the factory (which validates
  /// its parameters).
  [[nodiscard]] std::unique_ptr<Protocol> make(
      const std::string& name, const ProtocolBuildContext& context) const;

 private:
  std::map<std::string, Factory> factories_;
};

class AdversaryRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Adversary>(const AdversaryBuildContext&)>;

  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::unique_ptr<Adversary> make(
      const std::string& name, const AdversaryBuildContext& context) const;

 private:
  std::map<std::string, Factory> factories_;
};

struct Registries {
  ProtocolRegistry protocols;
  AdversaryRegistry adversaries;
};

/// The process-wide registries, populated with every builtin on first
/// use. Not synchronized: registration and lookup happen on the driver
/// thread before trials fan out.
[[nodiscard]] Registries& registries();

}  // namespace acp::scenario
