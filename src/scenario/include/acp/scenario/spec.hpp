// ScenarioSpec — one experiment as data.
//
// A spec captures everything needed to reproduce a run: the world shape,
// the execution substrate, the protocol and adversary (by registry name,
// with open-ended parameter maps), churn, and the trial plan. Specs load
// from and save to versioned JSON ("acp.scenario.v1" — the checked-in
// scenarios/*.json files pin the paper's headline configurations), can be
// overridden key-by-key (`acpsim --set n=256`), and validate with
// actionable error messages before anything runs.
//
// The spec layer deliberately knows nothing about concrete protocol
// classes; construction goes through the registries (registry.hpp), which
// the core/baseline/adversary modules populate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "acp/scenario/params.hpp"
#include "acp/util/types.hpp"

namespace acp::scenario {

struct ScenarioSpec {
  static constexpr std::string_view kSchema = "acp.scenario.v1";

  /// Identification (optional; echoed in reports and error messages).
  std::string name;
  std::string description;

  // -- World ---------------------------------------------------------------
  std::size_t n = 256;  ///< players
  std::size_t m = 256;  ///< objects
  std::size_t good = 1;
  double alpha = 0.5;  ///< honest fraction in (0, 1]
  /// World builder: "auto" (derived from the protocol: cost-classes ->
  /// cost-class world, no-lt -> top-beta world, else simple), "simple",
  /// "cost-classes", or "top-beta".
  std::string world = "auto";
  /// Cost-class world shape (world == "cost-classes" or auto+cost-classes).
  std::size_t cost_classes = 4;
  std::size_t cheapest_good_class = 0;

  // -- Protocol & adversary (registry names + open parameter maps) ---------
  std::string protocol = "distill";
  ParamMap protocol_params;
  std::string adversary = "silent";
  ParamMap adversary_params;

  // -- Execution substrate -------------------------------------------------
  std::string engine = "sync";  ///< sync | async | lockstep | gossip
  std::string scheduler = "rr";  ///< rr | random (async/lockstep)
  std::size_t fanout = 2;        ///< gossip push fanout
  /// Gossip dissemination substrate: "digest" (versioned anti-entropy,
  /// the default) or "exchange" (the legacy exchange-everything oracle).
  std::string substrate = "digest";
  bool pull = false;       ///< gossip push-pull (see GossipConfig::pull)
  double loss_prob = 0.0;  ///< gossip per-exchange loss probability
  Round max_rounds = 500000;     ///< sync/gossip per-trial cap
  Count max_steps = 10000000;    ///< async/lockstep honest-step cap
  /// Round-kernel worker threads inside each trial (sync engine; 0 =
  /// hardware concurrency). Bit-identical results at any value; falls
  /// back to sequential when the protocol is not parallel_choose_safe.
  /// Composes multiplicatively with the trial-driver `threads` knob.
  std::size_t engine_threads = 1;
  /// Billboard backend: "inproc" (default, kernel-owned in-process board)
  /// | "socket:<path>" | "tcp:<host>:<port>" (a running acp_billboardd;
  /// each trial opens its own private board). In-process and remote runs
  /// produce bit-identical results (see acp/billboard/service.hpp).
  std::string billboard = "inproc";

  // -- Churn ---------------------------------------------------------------
  /// Stagger honest arrivals over [0, W) on the engine's churn clock; the
  /// i-th honest player joins at floor(i*W/h). 0 = everyone at round 0.
  Round arrival_window = 0;
  /// Fraction of honest players that crash-stop at depart_round.
  double depart_frac = 0.0;
  Round depart_round = 0;

  // -- Trial plan ----------------------------------------------------------
  std::size_t trials = 20;
  std::uint64_t seed = 1;
  /// Trial-driver worker threads; 0 = hardware concurrency. Results are
  /// bit-identical at any thread count (see acp/sim/runner.hpp).
  std::size_t threads = 1;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  /// The world kind after resolving "auto" against the protocol name.
  [[nodiscard]] std::string resolved_world() const;

  /// Throws std::invalid_argument with a field-named message on any
  /// out-of-range or inconsistent value. Registry names are validated at
  /// construction time (registry.hpp), not here.
  void validate() const;

  // -- JSON ----------------------------------------------------------------
  [[nodiscard]] static ScenarioSpec from_json(std::string_view text);
  [[nodiscard]] static ScenarioSpec load_file(const std::string& path);
  void to_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json_string() const;
  void save_file(const std::string& path) const;
};

/// Apply one `key=value` override (the --set flag). Keys are the flat
/// spec fields (n, m, good, alpha, world, protocol, adversary, engine,
/// scheduler, fanout, substrate, pull, loss_prob, max_rounds, max_steps,
/// engine_threads,
/// arrival_window, depart_frac, depart_round, trials, seed, threads,
/// cost_classes, cheapest_good_class,
/// name) plus dotted parameter paths: protocol.<param>, adversary.<param>
/// and billboard.backend. Throws std::invalid_argument on unknown keys or
/// unparsable values.
void apply_override(ScenarioSpec& spec, std::string_view assignment);

}  // namespace acp::scenario
