// Construction and execution of one scenario trial.
//
// This is the single place that turns a ScenarioSpec into live objects —
// world, population, protocol (via the registry), adversary (via the
// registry), engine — and runs one seeded trial. Every consumer (acpsim,
// the fig/tab benches, the examples, the sharded trial driver) goes
// through here, so a spec means exactly the same run everywhere; the
// scenario-parity test pins that a spec-built run is bit-identical to the
// hand-wired equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "acp/engine/observer.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/rng/rng.hpp"
#include "acp/scenario/spec.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp::scenario {

/// Honest-player count for a target fraction: llround(alpha*n) clamped to
/// [0, n]. (Round-half-up — a truncating cast ran alpha=0.7, n=10 at six
/// honest players.)
[[nodiscard]] std::size_t honest_count(double alpha, std::size_t n);

/// World per spec.resolved_world(): "simple", "cost-classes" (geometric
/// cost classes, good objects only from cheapest_good_class up) or
/// "top-beta" (no local testing).
[[nodiscard]] World build_world(const ScenarioSpec& spec, Rng& rng);

/// n players with honest_count(alpha, n) honest at random positions.
[[nodiscard]] Population build_population(const ScenarioSpec& spec, Rng& rng);

/// Staircase arrivals over [0, arrival_window): the i-th honest player
/// (ascending id) joins at floor(i*W/h). Empty when no window configured.
[[nodiscard]] std::vector<Round> build_arrivals(const ScenarioSpec& spec,
                                                const Population& population);

/// The last ceil(depart_frac*h) honest players crash-stop at
/// depart_round. Empty when no departures are configured.
[[nodiscard]] std::vector<Round> build_departures(
    const ScenarioSpec& spec, const Population& population);

/// Run ONE trial of the scenario under `seed`: derive the world and
/// population from Rng(seed), construct protocol and adversary by
/// registry name, and execute on the spec's engine (engine seed is
/// seed ^ 0x2545F491, the acpsim convention). `observer` may be null;
/// it is only honored on the engines that expose observer slots.
/// Throws std::invalid_argument on unknown names, bad parameters, or
/// unsupported combinations (e.g. adversary "splitvote" on engine
/// "gossip", which has no single protocol instance to observe).
[[nodiscard]] RunResult run_scenario_trial(const ScenarioSpec& spec,
                                           std::uint64_t seed,
                                           RunObserver* observer = nullptr);

}  // namespace acp::scenario
