#include "acp/scenario/registry.hpp"

#include <stdexcept>
#include <utility>

#include "acp/scenario/modules.hpp"

namespace acp::scenario {

namespace {

[[noreturn]] void unknown_name(const char* what, const std::string& name,
                               const std::vector<std::string>& known) {
  std::string message = std::string("unknown ") + what + " '" + name +
                        "' (registered:";
  bool first = true;
  for (const std::string& k : known) {
    message += first ? " " : ", ";
    message += k;
    first = false;
  }
  message += ")";
  throw std::invalid_argument(message);
}

}  // namespace

void ProtocolRegistry::add(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const std::string& name, const ProtocolBuildContext& context) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) unknown_name("protocol", name, names());
  return it->second(context);
}

void AdversaryRegistry::add(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool AdversaryRegistry::contains(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> AdversaryRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::unique_ptr<Adversary> AdversaryRegistry::make(
    const std::string& name, const AdversaryBuildContext& context) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) unknown_name("adversary", name, names());
  return it->second(context);
}

Registries& registries() {
  static Registries instance = [] {
    Registries r;
    register_builtin_core_protocols(r.protocols);
    register_builtin_baseline_protocols(r.protocols);
    register_builtin_adversaries(r.adversaries);
    return r;
  }();
  return instance;
}

}  // namespace acp::scenario
