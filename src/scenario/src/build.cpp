#include "acp/scenario/build.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "acp/baseline/collab_baseline.hpp"
#include "acp/baseline/trivial_random.hpp"
#include "acp/billboard/service.hpp"
#include "acp/engine/async_engine.hpp"
#include "acp/engine/lockstep.hpp"
#include "acp/engine/scheduler.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/gossip/gossip_engine.hpp"
#include "acp/scenario/registry.hpp"
#include "acp/world/builders.hpp"

namespace acp::scenario {

namespace {

/// Engine-stream seed derivation shared with the historical acpsim path;
/// keeping it bit-for-bit preserves reproducibility of published runs.
constexpr std::uint64_t kEngineSeedSalt = 0x2545F491;

std::unique_ptr<Scheduler> build_scheduler(const ScenarioSpec& spec) {
  if (spec.scheduler == "rr") return std::make_unique<RoundRobinScheduler>();
  if (spec.scheduler == "random") return std::make_unique<RandomScheduler>();
  throw std::invalid_argument("unknown scheduler '" + spec.scheduler +
                              "' (known: rr, random)");
}

/// Per-trial billboard backend. Returns null for "inproc" — the engines'
/// kernel-owned default, which skips the service seam entirely — and a
/// fresh private remote board otherwise. Dimensions come from the built
/// world (under cost-classes the object count is derived, not spec.m).
std::unique_ptr<BillboardService> build_billboard(const ScenarioSpec& spec,
                                                  const World& world,
                                                  Billboard::Mode mode) {
  const auto backend = BillboardBackendSpec::parse(spec.billboard);
  if (backend.in_process) return nullptr;
  return make_billboard_service(backend, spec.n, world.num_objects(), mode);
}

}  // namespace

std::size_t honest_count(double alpha, std::size_t n) {
  const long long rounded = std::llround(alpha * static_cast<double>(n));
  if (rounded <= 0) return 0;
  return std::min(n, static_cast<std::size_t>(rounded));
}

World build_world(const ScenarioSpec& spec, Rng& rng) {
  const std::string kind = spec.resolved_world();
  if (kind == "cost-classes") {
    CostClassWorldOptions opts;
    opts.num_classes = spec.cost_classes;
    opts.objects_per_class =
        std::max<std::size_t>(1, spec.m / spec.cost_classes);
    opts.cheapest_good_class = spec.cheapest_good_class;
    return make_cost_class_world(opts, rng);
  }
  if (kind == "top-beta") {
    return make_top_beta_world(spec.m, spec.good, rng);
  }
  if (kind == "simple") {
    return make_simple_world(spec.m, spec.good, rng);
  }
  throw std::invalid_argument("unknown world '" + kind +
                              "' (known: auto, simple, cost-classes, "
                              "top-beta)");
}

Population build_population(const ScenarioSpec& spec, Rng& rng) {
  return Population::with_random_honest(spec.n,
                                        honest_count(spec.alpha, spec.n), rng);
}

std::vector<Round> build_arrivals(const ScenarioSpec& spec,
                                  const Population& population) {
  if (spec.arrival_window <= 0) return {};
  const auto& honest = population.honest_players();
  const std::size_t h = honest.size();
  std::vector<Round> arrivals(population.num_players(), 0);
  for (std::size_t i = 0; i < h; ++i) {
    arrivals[honest[i].value()] = static_cast<Round>(
        (static_cast<std::uint64_t>(i) *
         static_cast<std::uint64_t>(spec.arrival_window)) /
        h);
  }
  return arrivals;
}

std::vector<Round> build_departures(const ScenarioSpec& spec,
                                    const Population& population) {
  if (spec.depart_frac <= 0.0) return {};
  const auto& honest = population.honest_players();
  const std::size_t h = honest.size();
  const std::size_t leavers = std::min(
      h, static_cast<std::size_t>(
             std::ceil(spec.depart_frac * static_cast<double>(h))));
  std::vector<Round> departures(population.num_players(), -1);
  for (std::size_t i = h - leavers; i < h; ++i) {
    departures[honest[i].value()] = spec.depart_round;
  }
  return departures;
}

RunResult run_scenario_trial(const ScenarioSpec& spec, std::uint64_t seed,
                             RunObserver* observer) {
  Registries& reg = registries();

  Rng rng(seed);
  const World world = build_world(spec, rng);
  const Population population = build_population(spec, rng);
  const std::vector<Round> arrivals = build_arrivals(spec, population);
  const std::vector<Round> departures = build_departures(spec, population);
  const std::uint64_t engine_seed = seed ^ kEngineSeedSalt;

  const ProtocolBuildContext protocol_ctx{spec, world};

  if (spec.engine == "gossip") {
    // Per-node protocol instances over the gossip substrate. Build one
    // probe instance anyway so protocol/adversary parameters are
    // validated before the run; the split-vote adversary needs a single
    // observed instance, which does not exist here.
    auto probe_protocol = reg.protocols.make(spec.protocol, protocol_ctx);
    auto adversary = reg.adversaries.make(
        spec.adversary, AdversaryBuildContext{spec, *probe_protocol});
    if (spec.adversary == "splitvote") {
      throw std::invalid_argument(
          "adversary 'splitvote' is not available on engine 'gossip' "
          "(there is no single protocol instance to observe)");
    }
    GossipConfig config;
    config.fanout = spec.fanout;
    config.substrate = spec.substrate == "exchange"
                           ? GossipSubstrate::kExchange
                           : GossipSubstrate::kDigest;
    config.pull = spec.pull;
    config.loss_prob = spec.loss_prob;
    config.max_rounds = spec.max_rounds;
    config.seed = engine_seed;
    config.arrivals = arrivals;
    config.departures = departures;
    // The union log is replica-mode (posts arrive stamped with their
    // origin rounds), so a remote backend opens a replica board.
    const auto billboard =
        build_billboard(spec, world, Billboard::Mode::kReplica);
    config.billboard = billboard.get();
    return GossipEngine::run(
        world, population,
        [&] { return reg.protocols.make(spec.protocol, protocol_ctx); },
        *adversary, config);
  }

  if (spec.engine == "sync") {
    auto protocol = reg.protocols.make(spec.protocol, protocol_ctx);
    auto adversary = reg.adversaries.make(
        spec.adversary, AdversaryBuildContext{spec, *protocol});
    SyncRunConfig config;
    config.max_rounds = spec.max_rounds;
    config.seed = engine_seed;
    config.arrivals = arrivals;
    config.departures = departures;
    config.observer = observer;
    config.engine_threads = spec.engine_threads;
    const auto billboard =
        build_billboard(spec, world, Billboard::Mode::kAuthoritative);
    config.billboard = billboard.get();
    return SyncEngine::run(world, population, *protocol, *adversary, config);
  }

  if (spec.engine == "lockstep") {
    auto protocol = reg.protocols.make(spec.protocol, protocol_ctx);
    auto adversary = reg.adversaries.make(
        spec.adversary, AdversaryBuildContext{spec, *protocol});
    auto scheduler = build_scheduler(spec);
    LockstepRunConfig config;
    config.max_steps = spec.max_steps;
    config.seed = engine_seed;
    config.arrivals = arrivals;
    config.departures = departures;
    config.observer = observer;
    config.engine_threads = spec.engine_threads;
    const auto billboard =
        build_billboard(spec, world, Billboard::Mode::kAuthoritative);
    config.billboard = billboard.get();
    return LockstepEngine::run(world, population, *protocol, *adversary,
                               *scheduler, config);
  }

  if (spec.engine == "async") {
    // Only the natively asynchronous protocols run here; synchronous
    // protocols go through engine "lockstep" (the timestamp synchronizer).
    std::unique_ptr<AsyncProtocol> protocol;
    if (spec.protocol == "collab") {
      protocol = std::make_unique<AsyncCollabProtocol>();
    } else if (spec.protocol == "trivial") {
      protocol = std::make_unique<AsyncTrivialRandomProtocol>();
    } else {
      throw std::invalid_argument(
          "engine 'async' supports protocol 'collab' or 'trivial'; run "
          "synchronous protocols on engine 'lockstep'");
    }
    auto probe_protocol = reg.protocols.make(spec.protocol, protocol_ctx);
    auto adversary = reg.adversaries.make(
        spec.adversary, AdversaryBuildContext{spec, *probe_protocol});
    auto scheduler = build_scheduler(spec);
    AsyncRunConfig config;
    config.max_steps = spec.max_steps;
    config.seed = engine_seed;
    config.arrivals = arrivals;
    config.departures = departures;
    config.observer = observer;
    const auto billboard =
        build_billboard(spec, world, Billboard::Mode::kAuthoritative);
    config.billboard = billboard.get();
    return AsyncEngine::run(world, population, *protocol, *adversary,
                            *scheduler, config);
  }

  throw std::invalid_argument("unknown engine '" + spec.engine +
                              "' (known: sync, async, lockstep, gossip)");
}

}  // namespace acp::scenario
