#include "acp/scenario/spec.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "acp/billboard/service.hpp"
#include "acp/obs/json.hpp"
#include "acp/obs/json_value.hpp"

namespace acp::scenario {

namespace {

using obs::JsonValue;

[[noreturn]] void field_error(const std::string& path,
                              const std::string& message) {
  throw std::invalid_argument("scenario." + path + ": " + message);
}

/// Wrap the JsonValue accessor exceptions with the field path so the user
/// sees `scenario.world.n: expected number, got string` instead of a bare
/// type name.
template <class Fn>
auto at(const std::string& path, Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    field_error(path, e.what());
  }
}

double get_number(const JsonValue& section, const std::string& section_name,
                  std::string_view key, double fallback) {
  const JsonValue* v = section.find(key);
  if (v == nullptr) return fallback;
  return at(section_name + "." + std::string(key),
            [&] { return v->as_number(); });
}

std::uint64_t get_u64(const JsonValue& section,
                      const std::string& section_name, std::string_view key,
                      std::uint64_t fallback) {
  const JsonValue* v = section.find(key);
  if (v == nullptr) return fallback;
  return at(section_name + "." + std::string(key),
            [&] { return v->as_u64(); });
}

bool get_bool(const JsonValue& section, const std::string& section_name,
              std::string_view key, bool fallback) {
  const JsonValue* v = section.find(key);
  if (v == nullptr) return fallback;
  return at(section_name + "." + std::string(key),
            [&] { return v->as_bool(); });
}

std::string get_string(const JsonValue& section,
                       const std::string& section_name, std::string_view key,
                       std::string fallback) {
  const JsonValue* v = section.find(key);
  if (v == nullptr) return fallback;
  return at(section_name + "." + std::string(key),
            [&] { return v->as_string(); });
}

/// Reject unknown members so a misspelled knob cannot silently fall back
/// to its default.
void require_members(const JsonValue& object, const std::string& path,
                     std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : object.as_object()) {
    bool found = false;
    for (const std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::string message = "unknown key '" + key + "' (expected one of:";
      bool first = true;
      for (const std::string_view k : known) {
        message += first ? " " : ", ";
        message += std::string(k);
        first = false;
      }
      message += ")";
      field_error(path, message);
    }
  }
}

ParamMap parse_params(const JsonValue& section, const std::string& path) {
  ParamMap params;
  for (const auto& [key, value] : section.as_object()) {
    const std::string member_path = path + "." + key;
    if (value.is_bool()) {
      params.set(key, value.as_bool() ? 1.0 : 0.0);
    } else {
      params.set(key, at(member_path, [&] { return value.as_number(); }));
    }
  }
  return params;
}

void write_params(obs::JsonWriter& json, const ParamMap& params) {
  json.begin_object();
  for (const auto& [key, value] : params.values()) {
    json.member(key, value);
  }
  json.end_object();
}

}  // namespace

std::string ScenarioSpec::resolved_world() const {
  if (world != "auto") return world;
  if (protocol == "cost-classes") return "cost-classes";
  if (protocol == "no-lt") return "top-beta";
  return "simple";
}

void ScenarioSpec::validate() const {
  if (n < 1) field_error("world.n", "must be >= 1");
  if (m < 1) field_error("world.m", "must be >= 1");
  if (good < 1 || good > m) {
    field_error("world.good",
                "must be in [1, m]; got " + std::to_string(good) + " with m=" +
                    std::to_string(m));
  }
  if (alpha <= 0.0 || alpha > 1.0) {
    field_error("world.alpha",
                "must be in (0, 1], got " + std::to_string(alpha));
  }
  if (world != "auto" && world != "simple" && world != "cost-classes" &&
      world != "top-beta") {
    field_error("world.kind", "unknown world '" + world +
                                  "' (known: auto, simple, cost-classes, "
                                  "top-beta)");
  }
  if (world == "cost-classes" || resolved_world() == "cost-classes") {
    if (cost_classes < 1) field_error("world.cost_classes", "must be >= 1");
    if (cheapest_good_class >= cost_classes) {
      field_error("world.cheapest_good_class",
                  "must be < cost_classes (" + std::to_string(cost_classes) +
                      "), got " + std::to_string(cheapest_good_class));
    }
  }
  if (engine != "sync" && engine != "async" && engine != "lockstep" &&
      engine != "gossip") {
    field_error("engine.kind", "unknown engine '" + engine +
                                   "' (known: sync, async, lockstep, "
                                   "gossip)");
  }
  if (scheduler != "rr" && scheduler != "random") {
    field_error("engine.scheduler", "unknown scheduler '" + scheduler +
                                        "' (known: rr, random)");
  }
  if (substrate != "digest" && substrate != "exchange") {
    field_error("engine.substrate", "unknown substrate '" + substrate +
                                        "' (known: digest, exchange)");
  }
  if (loss_prob < 0.0 || loss_prob >= 1.0) {
    field_error("engine.loss_prob",
                "must be in [0, 1), got " + std::to_string(loss_prob));
  }
  if (max_rounds < 1) field_error("engine.max_rounds", "must be >= 1");
  if (max_steps < 1) field_error("engine.max_steps", "must be >= 1");
  try {
    (void)BillboardBackendSpec::parse(billboard);
  } catch (const std::invalid_argument& e) {
    field_error("billboard.backend", e.what());
  }
  if (depart_frac < 0.0 || depart_frac > 1.0) {
    field_error("churn.depart_frac",
                "must be in [0, 1], got " + std::to_string(depart_frac));
  }
  if (depart_frac > 0.0 && depart_round < 1) {
    field_error("churn.depart_round",
                "departures need depart_round >= 1 (a departure at round 0 "
                "would remove the player before it ever acts)");
  }
  if (arrival_window < 0) field_error("churn.arrival_window", "must be >= 0");
  if (trials < 1) field_error("trials.count", "must be >= 1");
}

ScenarioSpec ScenarioSpec::from_json(std::string_view text) {
  const JsonValue doc = obs::parse_json(text);
  if (!doc.is_object()) {
    throw std::invalid_argument(
        "scenario: top level must be a JSON object, got " +
        std::string(JsonValue::kind_name(doc.kind())));
  }
  require_members(doc, "<top>",
                  {"schema", "name", "description", "world", "protocol",
                   "adversary", "engine", "billboard", "churn", "trials"});

  if (const JsonValue* schema = doc.find("schema")) {
    const std::string& value =
        at(std::string("schema"), [&]() -> const std::string& {
          return schema->as_string();
        });
    if (value != kSchema) {
      throw std::invalid_argument("scenario.schema: expected \"" +
                                  std::string(kSchema) + "\", got \"" + value +
                                  "\"");
    }
  } else {
    throw std::invalid_argument(
        "scenario.schema: missing (expected \"acp.scenario.v1\")");
  }

  ScenarioSpec spec;
  spec.name = get_string(doc, "<top>", "name", "");
  spec.description = get_string(doc, "<top>", "description", "");

  if (const JsonValue* w = doc.find("world")) {
    at(std::string("world"), [&] { return &w->as_object(); });
    require_members(*w, "world",
                    {"kind", "n", "m", "good", "alpha", "cost_classes",
                     "cheapest_good_class"});
    spec.world = get_string(*w, "world", "kind", spec.world);
    spec.n = get_u64(*w, "world", "n", spec.n);
    spec.m = get_u64(*w, "world", "m", spec.m);
    spec.good = get_u64(*w, "world", "good", spec.good);
    spec.alpha = get_number(*w, "world", "alpha", spec.alpha);
    spec.cost_classes =
        get_u64(*w, "world", "cost_classes", spec.cost_classes);
    spec.cheapest_good_class =
        get_u64(*w, "world", "cheapest_good_class", spec.cheapest_good_class);
  }

  if (const JsonValue* p = doc.find("protocol")) {
    at(std::string("protocol"), [&] { return &p->as_object(); });
    require_members(*p, "protocol", {"name", "params"});
    spec.protocol = get_string(*p, "protocol", "name", spec.protocol);
    if (const JsonValue* params = p->find("params")) {
      spec.protocol_params = parse_params(*params, "protocol.params");
    }
  }

  if (const JsonValue* a = doc.find("adversary")) {
    at(std::string("adversary"), [&] { return &a->as_object(); });
    require_members(*a, "adversary", {"name", "params"});
    spec.adversary = get_string(*a, "adversary", "name", spec.adversary);
    if (const JsonValue* params = a->find("params")) {
      spec.adversary_params = parse_params(*params, "adversary.params");
    }
  }

  if (const JsonValue* e = doc.find("engine")) {
    at(std::string("engine"), [&] { return &e->as_object(); });
    require_members(*e, "engine",
                    {"kind", "scheduler", "fanout", "substrate", "pull",
                     "loss_prob", "max_rounds", "max_steps", "threads"});
    spec.engine = get_string(*e, "engine", "kind", spec.engine);
    spec.scheduler = get_string(*e, "engine", "scheduler", spec.scheduler);
    spec.fanout = get_u64(*e, "engine", "fanout", spec.fanout);
    spec.substrate = get_string(*e, "engine", "substrate", spec.substrate);
    spec.pull = get_bool(*e, "engine", "pull", spec.pull);
    spec.loss_prob = get_number(*e, "engine", "loss_prob", spec.loss_prob);
    spec.max_rounds = static_cast<Round>(get_u64(
        *e, "engine", "max_rounds", static_cast<std::uint64_t>(spec.max_rounds)));
    spec.max_steps = static_cast<Count>(get_u64(
        *e, "engine", "max_steps", static_cast<std::uint64_t>(spec.max_steps)));
    spec.engine_threads =
        get_u64(*e, "engine", "threads", spec.engine_threads);
  }

  if (const JsonValue* b = doc.find("billboard")) {
    at(std::string("billboard"), [&] { return &b->as_object(); });
    require_members(*b, "billboard", {"backend"});
    spec.billboard = get_string(*b, "billboard", "backend", spec.billboard);
  }

  if (const JsonValue* c = doc.find("churn")) {
    at(std::string("churn"), [&] { return &c->as_object(); });
    require_members(*c, "churn",
                    {"arrival_window", "depart_frac", "depart_round"});
    spec.arrival_window = static_cast<Round>(
        get_u64(*c, "churn", "arrival_window",
                static_cast<std::uint64_t>(spec.arrival_window)));
    spec.depart_frac = get_number(*c, "churn", "depart_frac", spec.depart_frac);
    spec.depart_round = static_cast<Round>(
        get_u64(*c, "churn", "depart_round",
                static_cast<std::uint64_t>(spec.depart_round)));
  }

  if (const JsonValue* t = doc.find("trials")) {
    at(std::string("trials"), [&] { return &t->as_object(); });
    require_members(*t, "trials", {"count", "seed", "threads"});
    spec.trials = get_u64(*t, "trials", "count", spec.trials);
    spec.seed = get_u64(*t, "trials", "seed", spec.seed);
    spec.threads = get_u64(*t, "trials", "threads", spec.threads);
  }

  spec.validate();
  return spec;
}

ScenarioSpec ScenarioSpec::load_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::invalid_argument("scenario: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  try {
    return from_json(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  } catch (const obs::JsonParseError& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void ScenarioSpec::to_json(std::ostream& os) const {
  obs::JsonWriter json(os);
  json.begin_object();
  json.member("schema", kSchema);
  if (!name.empty()) json.member("name", name);
  if (!description.empty()) json.member("description", description);

  json.key("world").begin_object();
  json.member("kind", world);
  json.member("n", static_cast<std::uint64_t>(n));
  json.member("m", static_cast<std::uint64_t>(m));
  json.member("good", static_cast<std::uint64_t>(good));
  json.member("alpha", alpha);
  if (resolved_world() == "cost-classes") {
    json.member("cost_classes", static_cast<std::uint64_t>(cost_classes));
    json.member("cheapest_good_class",
                static_cast<std::uint64_t>(cheapest_good_class));
  }
  json.end_object();

  json.key("protocol").begin_object();
  json.member("name", protocol);
  json.key("params");
  write_params(json, protocol_params);
  json.end_object();

  json.key("adversary").begin_object();
  json.member("name", adversary);
  json.key("params");
  write_params(json, adversary_params);
  json.end_object();

  json.key("engine").begin_object();
  json.member("kind", engine);
  json.member("scheduler", scheduler);
  json.member("fanout", static_cast<std::uint64_t>(fanout));
  json.member("substrate", substrate);
  json.member("pull", pull);
  json.member("loss_prob", loss_prob);
  json.member("max_rounds", static_cast<std::uint64_t>(max_rounds));
  json.member("max_steps", static_cast<std::uint64_t>(max_steps));
  json.member("threads", static_cast<std::uint64_t>(engine_threads));
  json.end_object();

  json.key("billboard").begin_object();
  json.member("backend", billboard);
  json.end_object();

  json.key("churn").begin_object();
  json.member("arrival_window", static_cast<std::uint64_t>(arrival_window));
  json.member("depart_frac", depart_frac);
  json.member("depart_round", static_cast<std::uint64_t>(depart_round));
  json.end_object();

  json.key("trials").begin_object();
  json.member("count", static_cast<std::uint64_t>(trials));
  json.member("seed", seed);
  json.member("threads", static_cast<std::uint64_t>(threads));
  json.end_object();

  json.end_object();
  os << "\n";
}

std::string ScenarioSpec::to_json_string() const {
  std::ostringstream out;
  to_json(out);
  return out.str();
}

void ScenarioSpec::save_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::invalid_argument("scenario: cannot open " + path +
                                " for writing");
  }
  to_json(file);
}

namespace {

double parse_double_value(std::string_view key, std::string_view text) {
  if (text == "true") return 1.0;
  if (text == "false") return 0.0;
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw std::invalid_argument("--set " + std::string(key) + ": '" +
                                std::string(text) + "' is not a number");
  }
  return value;
}

std::size_t parse_size_value(std::string_view key, std::string_view text) {
  const double value = parse_double_value(key, text);
  if (value < 0.0 || value != std::floor(value)) {
    throw std::invalid_argument("--set " + std::string(key) + ": '" +
                                std::string(text) +
                                "' is not a non-negative integer");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

void apply_override(ScenarioSpec& spec, std::string_view assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    throw std::invalid_argument("--set wants key=value, got: " +
                                std::string(assignment));
  }
  const std::string_view key = assignment.substr(0, eq);
  const std::string_view value = assignment.substr(eq + 1);

  // Dotted paths address the open parameter maps (and the billboard
  // backend, whose value is a string, not a number).
  if (key == "billboard.backend") {
    spec.billboard = std::string(value);
    return;
  }
  if (key.substr(0, 9) == "protocol." && key.size() > 9) {
    spec.protocol_params.set(std::string(key.substr(9)),
                             parse_double_value(key, value));
    return;
  }
  if (key.substr(0, 10) == "adversary." && key.size() > 10) {
    spec.adversary_params.set(std::string(key.substr(10)),
                              parse_double_value(key, value));
    return;
  }

  if (key == "n") {
    spec.n = parse_size_value(key, value);
  } else if (key == "m") {
    spec.m = parse_size_value(key, value);
  } else if (key == "good") {
    spec.good = parse_size_value(key, value);
  } else if (key == "alpha") {
    spec.alpha = parse_double_value(key, value);
  } else if (key == "world") {
    spec.world = std::string(value);
  } else if (key == "cost_classes") {
    spec.cost_classes = parse_size_value(key, value);
  } else if (key == "cheapest_good_class") {
    spec.cheapest_good_class = parse_size_value(key, value);
  } else if (key == "protocol") {
    spec.protocol = std::string(value);
  } else if (key == "adversary") {
    spec.adversary = std::string(value);
  } else if (key == "engine") {
    spec.engine = std::string(value);
  } else if (key == "scheduler") {
    spec.scheduler = std::string(value);
  } else if (key == "fanout") {
    spec.fanout = parse_size_value(key, value);
  } else if (key == "substrate") {
    spec.substrate = std::string(value);
  } else if (key == "pull") {
    spec.pull = parse_double_value(key, value) != 0.0;
  } else if (key == "loss_prob") {
    spec.loss_prob = parse_double_value(key, value);
  } else if (key == "max_rounds") {
    spec.max_rounds = static_cast<Round>(parse_size_value(key, value));
  } else if (key == "max_steps") {
    spec.max_steps = static_cast<Count>(parse_size_value(key, value));
  } else if (key == "engine_threads") {
    spec.engine_threads = parse_size_value(key, value);
  } else if (key == "arrival_window") {
    spec.arrival_window = static_cast<Round>(parse_size_value(key, value));
  } else if (key == "depart_frac") {
    spec.depart_frac = parse_double_value(key, value);
  } else if (key == "depart_round") {
    spec.depart_round = static_cast<Round>(parse_size_value(key, value));
  } else if (key == "trials") {
    spec.trials = parse_size_value(key, value);
  } else if (key == "seed") {
    // Full 64-bit range (a double round-trip would clip above 2^53).
    std::uint64_t seed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), seed);
    if (ec != std::errc() || ptr != value.data() + value.size()) {
      throw std::invalid_argument("--set seed: '" + std::string(value) +
                                  "' is not a non-negative integer");
    }
    spec.seed = seed;
  } else if (key == "threads") {
    spec.threads = parse_size_value(key, value);
  } else if (key == "name") {
    spec.name = std::string(value);
  } else {
    throw std::invalid_argument(
        "--set: unknown key '" + std::string(key) +
        "' (known: n, m, good, alpha, world, cost_classes, "
        "cheapest_good_class, protocol, adversary, engine, scheduler, "
        "fanout, substrate, pull, loss_prob, max_rounds, max_steps, "
        "engine_threads, arrival_window, "
        "depart_frac, depart_round, trials, seed, threads, name, "
        "protocol.<param>, adversary.<param>, billboard.backend)");
  }
}

}  // namespace acp::scenario
