#include "acp/scenario/params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acp::scenario {

double ParamMap::get(std::string_view key, double fallback) const {
  const auto it = values_.find(std::string(key));
  return it == values_.end() ? fallback : it->second;
}

std::size_t ParamMap::get_size(std::string_view key,
                               std::size_t fallback) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) return fallback;
  const double value = it->second;
  if (value < 0.0 || value != std::floor(value)) {
    throw std::invalid_argument("parameter '" + std::string(key) +
                                "' must be a non-negative integer, got " +
                                std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

bool ParamMap::get_bool(std::string_view key, bool fallback) const {
  const auto it = values_.find(std::string(key));
  return it == values_.end() ? fallback : it->second != 0.0;
}

void ParamMap::require_known(
    std::string_view owner,
    std::initializer_list<std::string_view> known) const {
  for (const auto& [key, value] : values_) {
    if (std::find(known.begin(), known.end(), key) != known.end()) continue;
    std::string message = "unknown parameter '" + key + "' for " +
                          std::string(owner) + " (known:";
    bool first = true;
    for (const std::string_view k : known) {
      message += first ? " " : ", ";
      message += std::string(k);
      first = false;
    }
    if (known.size() == 0) message += " none";
    message += ")";
    throw std::invalid_argument(message);
  }
}

}  // namespace acp::scenario
