// Command-line experiment runner (the `acpsim` tool).
//
// Lets a user run any registered protocol/adversary combination from the
// shell without writing C++ — either from flags:
//
//   acpsim --n 1024 --alpha 0.5 --protocol distill --adversary splitvote
//
// or from a checked-in scenario file, with key overrides:
//
//   acpsim --scenario scenarios/fig1_cost_vs_n.json --set n=256 --set m=256
//
// Precedence is scenario file < flags < --set (left to right within each).
// The configuration is a ScenarioSpec; flags are just spelling. Parsing
// and execution live in the library so they are testable; tools/acpsim.cpp
// is a thin main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "acp/scenario/spec.hpp"

namespace acp::cli {

struct CliConfig {
  /// The experiment itself — everything a run needs is in the spec.
  scenario::ScenarioSpec spec;

  bool csv = false;
  bool help = false;

  /// Enable deep profiling for the run: PhaseProfiler (kernel phase and
  /// per-shard timing), BandwidthMeter (bits read/written), and the
  /// metrics registry. The collected breakdown lands in the report's
  /// "phases"/"bandwidth" sections (with --report-json) and is printed
  /// as a summary after the result table. Not available with --sweep.
  bool profile = false;

  /// Write a per-round trace CSV of the FIRST trial to this path
  /// (engines sync and lockstep). Empty = no trace.
  std::string trace_path;

  /// Write a per-round JSONL trace ("acp.trace.v1") of the FIRST trial to
  /// this path (engines sync and lockstep). Empty = no trace.
  std::string trace_jsonl_path;

  /// Write a machine-readable JSON run report ("acp.report.v2") — config
  /// echo, per-metric summaries, metrics-registry counters and timer
  /// totals — to this path. Enables metrics collection for the run.
  /// Empty = no report. Not available with --sweep.
  std::string report_json_path;

  /// Optional one-dimensional parameter sweep (--sweep name=lo:hi:step).
  /// Supported names: alpha, n, good, f, err, veto. Empty = no sweep.
  std::string sweep_param;
  double sweep_lo = 0.0;
  double sweep_hi = 0.0;
  double sweep_step = 0.0;
};

/// Parse argv-style arguments (without argv[0]). Loads --scenario first,
/// then applies flags, then --set overrides; validates ranges and registry
/// names. Throws std::invalid_argument with a human-readable message on
/// bad input.
[[nodiscard]] CliConfig parse_args(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string usage();

/// Run the configured experiment and print a result table (or CSV) to
/// `out`. Returns the process exit code.
int run(const CliConfig& config, std::ostream& out);

}  // namespace acp::cli
