// Command-line experiment runner (the `acpsim` tool).
//
// Lets a user run any protocol/adversary combination from the shell
// without writing C++:
//
//   acpsim --n 1024 --alpha 0.5 --protocol distill --adversary splitvote
//   (plus --trials 20, etc.)
//
// The parsing and execution logic lives in the library so it is testable;
// tools/acpsim.cpp is a thin main().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "acp/util/types.hpp"

namespace acp::cli {

enum class ProtocolKind {
  kDistill,
  kDistillHp,
  kGuessAlpha,
  kCostClasses,
  kNoLocalTesting,
  kCollab,
  kTrivial,
};

enum class AdversaryKind {
  kSilent,
  kSlander,
  kEager,
  kCollude,
  kSplitVote,
  kValueLiar,
};

/// Which execution substrate runs the trial. All four share the simulation
/// kernel (docs/architecture.md), so churn and metrics behave uniformly.
enum class EngineKind {
  /// The paper's synchronous shared-billboard model (default).
  kSync,
  /// Asynchronous basic steps under a scheduler; restricted to the
  /// natively asynchronous protocols (collab, trivial).
  kAsync,
  /// Any synchronous protocol over the asynchronous engine through the
  /// timestamp synchronizer (LockstepAdapter).
  kLockstep,
  /// Per-node replicas synchronized by push gossip.
  kGossip,
};

/// Asynchronous schedule (engines async and lockstep).
enum class SchedulerKind {
  kRoundRobin,
  kRandom,
};

struct CliConfig {
  std::size_t n = 256;
  std::size_t m = 256;
  std::size_t good = 1;
  double alpha = 0.5;
  ProtocolKind protocol = ProtocolKind::kDistill;
  AdversaryKind adversary = AdversaryKind::kSilent;
  std::size_t trials = 20;
  std::uint64_t seed = 1;
  Round max_rounds = 500000;

  // Protocol knobs.
  std::size_t votes_per_player = 1;
  double error_vote_prob = 0.0;
  double veto_fraction = 0.0;
  bool use_advice = true;

  // Cost-class worlds (protocol == kCostClasses).
  std::size_t cost_classes = 4;
  std::size_t cheapest_good_class = 0;

  /// Execution substrate (--engine). `gossip` is kept in sync with
  /// `engine == kGossip` (the historical --gossip flag is an alias).
  EngineKind engine = EngineKind::kSync;
  bool gossip = false;
  std::size_t fanout = 2;

  /// Schedule for the asynchronous engines (async, lockstep).
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;
  /// Hard stop on honest basic steps (async, lockstep).
  Count max_steps = 10000000;

  /// Churn. arrival_window W staggers honest arrivals over [0, W) on the
  /// engine's churn clock (rounds for sync/lockstep/gossip, steps for
  /// async): the i-th honest player joins at floor(i*W/h). 0 = everyone
  /// at 0. depart_frac F makes the last ceil(F*h) honest players
  /// crash-stop at depart_round.
  Round arrival_window = 0;
  double depart_frac = 0.0;
  Round depart_round = 0;

  /// Trust-weighted SeekAdvice (§6 exploration; distill/distill-hp only).
  bool trust_advice = false;

  bool csv = false;
  bool help = false;

  /// Write a per-round trace CSV of the FIRST trial to this path
  /// (shared-billboard engine only). Empty = no trace.
  std::string trace_path;

  /// Write a per-round JSONL trace ("acp.trace.v1") of the FIRST trial to
  /// this path (shared-billboard engine only). Empty = no trace.
  std::string trace_jsonl_path;

  /// Write a machine-readable JSON run report ("acp.report.v1") — config
  /// echo, per-metric summaries, metrics-registry counters and timer
  /// totals — to this path. Enables metrics collection for the run.
  /// Empty = no report. Not available with --sweep.
  std::string report_json_path;

  /// Optional one-dimensional parameter sweep (--sweep name=lo:hi:step).
  /// Supported names: alpha, n, good, f, err, veto. Empty = no sweep.
  std::string sweep_param;
  double sweep_lo = 0.0;
  double sweep_hi = 0.0;
  double sweep_step = 0.0;
};

/// Parse argv-style arguments (without argv[0]). Throws std::invalid_argument
/// with a human-readable message on bad input.
[[nodiscard]] CliConfig parse_args(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string usage();

/// Run the configured experiment and print a result table (or CSV) to
/// `out`. Returns the process exit code.
int run(const CliConfig& config, std::ostream& out);

}  // namespace acp::cli
