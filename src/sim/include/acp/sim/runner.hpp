// Trial runner: repeat an experiment over independent seeds and summarize.
//
// A trial function maps a 64-bit seed to one metric vector (e.g. {mean
// probes, max probes, success fraction}); the runner fans trials out over a
// thread pool and returns one Summary per metric. Seeds are base_seed,
// base_seed+1, ... so every experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "acp/stats/summary.hpp"

namespace acp {

struct TrialPlan {
  std::size_t trials = 30;
  std::uint64_t base_seed = 1;
  /// 0 = use hardware_concurrency (at least 1).
  std::size_t threads = 0;
};

/// Trial returning a single metric.
[[nodiscard]] Summary run_trials(
    const TrialPlan& plan, const std::function<double(std::uint64_t)>& trial);

/// Trial returning `num_metrics` metrics; result has one Summary per
/// metric, in order. Every trial must return exactly num_metrics values.
[[nodiscard]] std::vector<Summary> run_trials_multi(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial);

}  // namespace acp
