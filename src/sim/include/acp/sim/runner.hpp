// Trial runner: repeat an experiment over independent seeds and reduce.
//
// A trial function maps a 64-bit seed to one metric vector (e.g. {mean
// probes, max probes, success fraction}). Seeds are a splitmix64 stream
// derived from base_seed — NOT base_seed, base_seed+1, ...: sequential
// seeds land in adjacent xoshiro basins and correlate the trials they are
// supposed to make independent. derive_trial_seeds() is the single source
// of truth, so every experiment is exactly reproducible from (base_seed,
// trials).
//
// Execution is sharded, not per-trial: the trial range is split into a
// fixed number of contiguous shards (a function of `trials` only), each
// shard accumulates its metrics in trial order, and shards merge in shard
// index order. Worker threads only decide WHICH shard runs where, never
// the reduction order — results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "acp/stats/running_stats.hpp"
#include "acp/stats/summary.hpp"

namespace acp {

struct TrialPlan {
  std::size_t trials = 30;
  std::uint64_t base_seed = 1;
  /// 0 = use hardware_concurrency (at least 1).
  std::size_t threads = 0;
};

/// The per-trial seeds for a plan: trial t gets the (t+1)-th output of a
/// SplitMix64 stream seeded with base_seed.
[[nodiscard]] std::vector<std::uint64_t> derive_trial_seeds(
    std::uint64_t base_seed, std::size_t trials);

/// Run the plan and stream every trial's metrics into merged accumulators
/// — one RunningStats per metric, O(num_metrics) memory regardless of
/// trial count. Every trial must return exactly num_metrics values.
/// The scenario driver and the benches reduce through this entry point.
[[nodiscard]] std::vector<RunningStats> run_trials_stats(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial);

/// As run_trials_stats, but materializes per-trial samples and returns one
/// Summary per metric — for consumers that need quantiles (the acpsim
/// table, acp.report.v1). Same seeds, same sharded execution.
[[nodiscard]] std::vector<Summary> run_trials_multi(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial);

/// Single-metric convenience over run_trials_multi.
[[nodiscard]] Summary run_trials(
    const TrialPlan& plan, const std::function<double(std::uint64_t)>& trial);

}  // namespace acp
