// The scenario-driven trial driver.
//
// Bridges the declarative layer (acp/scenario) to the sharded runner
// (acp/sim/runner.hpp): a ScenarioSpec's trial plan fans out over the
// thread pool with splitmix64-derived per-trial seeds, each trial is built
// and executed by acp::scenario::run_scenario_trial, and the fixed metric
// vector reduces either into streamed RunningStats (benches, smoke) or
// materialized Summaries (the acpsim table and acp.report.v1, which need
// quantiles). acpsim, the fig/tab benches and examples/quickstart all sit
// on these entry points, so a scenario file means the same numbers
// everywhere.
#pragma once

#include <vector>

#include "acp/engine/run_result.hpp"
#include "acp/scenario/spec.hpp"
#include "acp/sim/runner.hpp"
#include "acp/stats/running_stats.hpp"
#include "acp/stats/summary.hpp"

namespace acp::sim {

/// Metric order of every scenario-driven run.
enum ScenarioMetric : std::size_t {
  kMeanProbes = 0,       ///< mean probes per honest player
  kMaxProbes = 1,        ///< worst honest player's probes
  kMeanCost = 2,         ///< mean probe cost per honest player
  kRounds = 3,           ///< rounds executed
  kSuccessFraction = 4,  ///< fraction of honest players satisfied
  kCompleted = 5,        ///< 1.0 iff every honest player was satisfied
  kNumScenarioMetrics = 6,
};

/// One trial's RunResult flattened into the ScenarioMetric order.
[[nodiscard]] std::vector<double> scenario_metrics(const RunResult& result);

/// The spec's trial plan (trials, seed, threads) as a runner TrialPlan.
[[nodiscard]] TrialPlan scenario_trial_plan(
    const scenario::ScenarioSpec& spec);

/// Run the spec's trials and stream into one RunningStats per
/// ScenarioMetric — O(1) memory in the trial count.
[[nodiscard]] std::vector<RunningStats> run_scenario_stats(
    const scenario::ScenarioSpec& spec);

/// As run_scenario_stats but materializes per-trial samples into one
/// Summary per ScenarioMetric, for consumers that need quantiles.
[[nodiscard]] std::vector<Summary> run_scenario_summaries(
    const scenario::ScenarioSpec& spec);

}  // namespace acp::sim
