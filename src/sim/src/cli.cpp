#include "acp/sim/cli.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "acp/adversary/split_vote.hpp"
#include "acp/adversary/strategies.hpp"
#include "acp/baseline/collab_baseline.hpp"
#include "acp/baseline/trivial_random.hpp"
#include "acp/core/cost_classes.hpp"
#include "acp/core/distill.hpp"
#include "acp/core/guess_alpha.hpp"
#include "acp/core/theory.hpp"
#include <fstream>

#include "acp/engine/lockstep.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/engine/trace.hpp"
#include "acp/gossip/gossip_engine.hpp"
#include "acp/obs/jsonl_trace.hpp"
#include "acp/obs/metrics.hpp"
#include "acp/obs/observer_mux.hpp"
#include "acp/obs/report.hpp"
#include "acp/sim/runner.hpp"
#include "acp/stats/table.hpp"
#include "acp/world/builders.hpp"

namespace acp::cli {

namespace {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kDistill: return "distill";
    case ProtocolKind::kDistillHp: return "distill-hp";
    case ProtocolKind::kGuessAlpha: return "guess-alpha";
    case ProtocolKind::kCostClasses: return "cost-classes";
    case ProtocolKind::kNoLocalTesting: return "no-lt";
    case ProtocolKind::kCollab: return "collab";
    case ProtocolKind::kTrivial: return "trivial";
  }
  return "?";
}

const char* adversary_name(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kSlander: return "slander";
    case AdversaryKind::kEager: return "eager";
    case AdversaryKind::kCollude: return "collude";
    case AdversaryKind::kSplitVote: return "splitvote";
    case AdversaryKind::kValueLiar: return "liar";
  }
  return "?";
}

ProtocolKind parse_protocol(const std::string& name) {
  static const std::map<std::string, ProtocolKind> kinds = {
      {"distill", ProtocolKind::kDistill},
      {"distill-hp", ProtocolKind::kDistillHp},
      {"guess-alpha", ProtocolKind::kGuessAlpha},
      {"cost-classes", ProtocolKind::kCostClasses},
      {"no-lt", ProtocolKind::kNoLocalTesting},
      {"collab", ProtocolKind::kCollab},
      {"trivial", ProtocolKind::kTrivial},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    throw std::invalid_argument("unknown protocol: " + name);
  }
  return it->second;
}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSync: return "sync";
    case EngineKind::kAsync: return "async";
    case EngineKind::kLockstep: return "lockstep";
    case EngineKind::kGossip: return "gossip";
  }
  return "?";
}

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin: return "rr";
    case SchedulerKind::kRandom: return "random";
  }
  return "?";
}

EngineKind parse_engine(const std::string& name) {
  static const std::map<std::string, EngineKind> kinds = {
      {"sync", EngineKind::kSync},
      {"async", EngineKind::kAsync},
      {"lockstep", EngineKind::kLockstep},
      {"gossip", EngineKind::kGossip},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    throw std::invalid_argument("unknown engine: " + name);
  }
  return it->second;
}

SchedulerKind parse_scheduler(const std::string& name) {
  static const std::map<std::string, SchedulerKind> kinds = {
      {"rr", SchedulerKind::kRoundRobin},
      {"random", SchedulerKind::kRandom},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    throw std::invalid_argument("unknown scheduler: " + name);
  }
  return it->second;
}

AdversaryKind parse_adversary(const std::string& name) {
  static const std::map<std::string, AdversaryKind> kinds = {
      {"silent", AdversaryKind::kSilent},
      {"slander", AdversaryKind::kSlander},
      {"eager", AdversaryKind::kEager},
      {"collude", AdversaryKind::kCollude},
      {"splitvote", AdversaryKind::kSplitVote},
      {"liar", AdversaryKind::kValueLiar},
  };
  const auto it = kinds.find(name);
  if (it == kinds.end()) {
    throw std::invalid_argument("unknown adversary: " + name);
  }
  return it->second;
}

}  // namespace

std::string usage() {
  return R"(acpsim — billboard collaboration simulator (ICDCS'05 DISTILL)

usage: acpsim [options]

world:
  --n N            players (default 256)
  --m M            objects (default 256)
  --good G         good objects (default 1)
  --alpha A        honest fraction in (0,1] (default 0.5)
  --cost-classes C     cost classes for --protocol cost-classes (default 4)
  --cheapest-good K    class of the cheapest good object (default 0)

algorithm:
  --protocol P     distill | distill-hp | guess-alpha | cost-classes |
                   no-lt | collab | trivial (default distill)
  --f F            positive votes per player (default 1)
  --err E          honest false-positive vote probability (default 0)
  --veto V         negative-vote veto fraction, 0 disables (default 0)
  --no-advice      disable the SeekAdvice half of PROBE&SEEKADVICE
  --trust          trust-weighted SeekAdvice (distill/distill-hp only)

adversary:
  --adversary A    silent | slander | eager | collude | splitvote | liar
                   (default silent)

substrate:
  --engine E       sync | async | lockstep | gossip (default sync):
                   the shared-billboard round model; asynchronous basic
                   steps under a scheduler (protocols collab/trivial only);
                   a synchronous protocol over the asynchronous engine via
                   the timestamp synchronizer; or per-node replicas
                   synchronized by push gossip
  --gossip         alias for --engine gossip
  --fanout F       gossip push fanout (default 2)
  --scheduler S    rr | random — async/lockstep schedule (default rr)

churn:
  --arrival-window W   stagger honest arrivals over [0, W) on the engine's
                       churn clock (rounds; basic steps for --engine
                       async); the i-th honest player joins at i*W/h
  --depart-frac F      fraction of honest players that crash-stop mid-run
  --depart-round R     round (or step) at which the departing fraction
                       leaves (requires --depart-frac)

execution:
  --sweep P=LO:HI:STEP   sweep one parameter (alpha|n|good|f|err|veto),
                         printing one row per value
  --trials T       independent seeded trials (default 20)
  --seed S         base seed (default 1)
  --max-rounds R   per-trial round cap, sync/gossip (default 500000)
  --max-steps S    per-trial honest-step cap, async/lockstep
                   (default 10000000)
  --csv            machine-readable output
  --trace FILE     write a per-round trace CSV of the first trial
                   (engines sync and lockstep)
  --trace-jsonl FILE   write a per-round JSONL trace (acp.trace.v1) of the
                       first trial (engines sync and lockstep)
  --report-json FILE   write a machine-readable run report (acp.report.v1):
                       config echo, metric summaries, and internal
                       counters/timers (not available with --sweep)
  --help           this text
)";
}

CliConfig parse_args(const std::vector<std::string>& args) {
  CliConfig config;
  auto need_value = [&](std::size_t i) -> const std::string& {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value after " + args[i]);
    }
    return args[i + 1];
  };
  auto to_size = [](const std::string& flag, const std::string& text) {
    try {
      const long long value = std::stoll(text);
      if (value < 0) throw std::invalid_argument("");
      return static_cast<std::size_t>(value);
    } catch (...) {
      throw std::invalid_argument("bad value for " + flag + ": " + text);
    }
  };
  auto to_double = [](const std::string& flag, const std::string& text) {
    try {
      return std::stod(text);
    } catch (...) {
      throw std::invalid_argument("bad value for " + flag + ": " + text);
    }
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      config.help = true;
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--no-advice") {
      config.use_advice = false;
    } else if (arg == "--gossip") {
      config.engine = EngineKind::kGossip;
    } else if (arg == "--engine") {
      config.engine = parse_engine(need_value(i));
      ++i;
    } else if (arg == "--scheduler") {
      config.scheduler = parse_scheduler(need_value(i));
      ++i;
    } else if (arg == "--max-steps") {
      config.max_steps = static_cast<Count>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--arrival-window") {
      config.arrival_window = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--depart-frac") {
      config.depart_frac = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--depart-round") {
      config.depart_round = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--trust") {
      config.trust_advice = true;
    } else if (arg == "--fanout") {
      config.fanout = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--trace") {
      config.trace_path = need_value(i);
      ++i;
    } else if (arg == "--trace-jsonl") {
      config.trace_jsonl_path = need_value(i);
      ++i;
    } else if (arg == "--report-json") {
      config.report_json_path = need_value(i);
      ++i;
    } else if (arg == "--n") {
      config.n = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--m") {
      config.m = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--good") {
      config.good = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--alpha") {
      config.alpha = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--protocol") {
      config.protocol = parse_protocol(need_value(i));
      ++i;
    } else if (arg == "--adversary") {
      config.adversary = parse_adversary(need_value(i));
      ++i;
    } else if (arg == "--trials") {
      config.trials = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--seed") {
      config.seed = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--max-rounds") {
      config.max_rounds = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--f") {
      config.votes_per_player = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--err") {
      config.error_vote_prob = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--veto") {
      config.veto_fraction = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--cost-classes") {
      config.cost_classes = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--cheapest-good") {
      config.cheapest_good_class = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--sweep") {
      // name=lo:hi:step
      const std::string& spec = need_value(i);
      ++i;
      const auto eq = spec.find('=');
      const auto c1 = spec.find(':', eq == std::string::npos ? 0 : eq);
      const auto c2 =
          c1 == std::string::npos ? std::string::npos : spec.find(':', c1 + 1);
      if (eq == std::string::npos || c1 == std::string::npos ||
          c2 == std::string::npos) {
        throw std::invalid_argument(
            "--sweep wants name=lo:hi:step, got: " + spec);
      }
      config.sweep_param = spec.substr(0, eq);
      config.sweep_lo = to_double(arg, spec.substr(eq + 1, c1 - eq - 1));
      config.sweep_hi = to_double(arg, spec.substr(c1 + 1, c2 - c1 - 1));
      config.sweep_step = to_double(arg, spec.substr(c2 + 1));
    } else {
      throw std::invalid_argument("unknown option: " + arg +
                                  " (try --help)");
    }
  }

  if (config.help) return config;
  if (config.n < 1) throw std::invalid_argument("--n must be >= 1");
  if (config.m < 1) throw std::invalid_argument("--m must be >= 1");
  if (config.good < 1 || config.good > config.m) {
    throw std::invalid_argument("--good must be in [1, m]");
  }
  if (config.alpha <= 0.0 || config.alpha > 1.0) {
    throw std::invalid_argument("--alpha must be in (0, 1]");
  }
  if (config.trials < 1) throw std::invalid_argument("--trials must be >= 1");
  if (config.max_rounds < 1) {
    throw std::invalid_argument("--max-rounds must be >= 1");
  }
  if (config.max_steps < 1) {
    throw std::invalid_argument("--max-steps must be >= 1");
  }
  if (config.depart_frac < 0.0 || config.depart_frac > 1.0) {
    throw std::invalid_argument("--depart-frac must be in [0, 1]");
  }
  if (config.depart_frac > 0.0 && config.depart_round < 1) {
    throw std::invalid_argument(
        "--depart-frac needs --depart-round >= 1 (a departure at round 0 "
        "would remove the player before it ever acts)");
  }
  config.gossip = config.engine == EngineKind::kGossip;
  if (!config.sweep_param.empty()) {
    static const std::vector<std::string> kSweepable = {
        "alpha", "n", "good", "f", "err", "veto"};
    if (std::find(kSweepable.begin(), kSweepable.end(),
                  config.sweep_param) == kSweepable.end()) {
      throw std::invalid_argument("--sweep: unknown parameter " +
                                  config.sweep_param);
    }
    if (config.sweep_step <= 0.0 || config.sweep_hi < config.sweep_lo) {
      throw std::invalid_argument("--sweep: need lo <= hi and step > 0");
    }
    if (!config.report_json_path.empty()) {
      throw std::invalid_argument(
          "--report-json is not available with --sweep (one report "
          "describes one configuration point)");
    }
  }
  return config;
}

namespace {

struct TrialSetup {
  World world;
  Population population;
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<Adversary> adversary;
};

World make_world(const CliConfig& config, Rng& rng) {
  switch (config.protocol) {
    case ProtocolKind::kCostClasses: {
      CostClassWorldOptions opts;
      opts.num_classes = config.cost_classes;
      opts.objects_per_class =
          std::max<std::size_t>(1, config.m / config.cost_classes);
      opts.cheapest_good_class = config.cheapest_good_class;
      return make_cost_class_world(opts, rng);
    }
    case ProtocolKind::kNoLocalTesting:
      return make_top_beta_world(config.m, config.good, rng);
    default:
      return make_simple_world(config.m, config.good, rng);
  }
}

std::unique_ptr<Protocol> make_protocol(const CliConfig& config,
                                        const World& world) {
  switch (config.protocol) {
    case ProtocolKind::kDistill:
    case ProtocolKind::kDistillHp: {
      DistillParams params = config.protocol == ProtocolKind::kDistillHp
                                 ? make_hp_params(config.alpha, config.n)
                                 : DistillParams{};
      params.alpha = config.alpha;
      params.votes_per_player = config.votes_per_player;
      params.error_vote_prob = config.error_vote_prob;
      params.veto_fraction = config.veto_fraction;
      params.use_advice = config.use_advice;
      params.trust_weighted_advice = config.trust_advice;
      return std::make_unique<DistillProtocol>(params);
    }
    case ProtocolKind::kGuessAlpha:
      return std::make_unique<GuessAlphaProtocol>();
    case ProtocolKind::kCostClasses: {
      CostClassParams params;
      params.alpha = config.alpha;
      return std::make_unique<CostClassProtocol>(params);
    }
    case ProtocolKind::kNoLocalTesting: {
      DistillParams params = make_no_local_testing_params(
          config.alpha, world.beta(), config.n);
      return std::make_unique<DistillProtocol>(params);
    }
    case ProtocolKind::kCollab:
      return std::make_unique<CollabBaselineProtocol>();
    case ProtocolKind::kTrivial:
      return std::make_unique<TrivialRandomProtocol>();
  }
  throw std::logic_error("unreachable protocol kind");
}

std::unique_ptr<Adversary> make_adversary(const CliConfig& config,
                                          Protocol& protocol) {
  switch (config.adversary) {
    case AdversaryKind::kSilent:
      return std::make_unique<SilentAdversary>();
    case AdversaryKind::kSlander:
      return std::make_unique<SlandererAdversary>();
    case AdversaryKind::kEager:
      return std::make_unique<EagerVoteAdversary>();
    case AdversaryKind::kCollude:
      return std::make_unique<CollusionAdversary>(4);
    case AdversaryKind::kSplitVote: {
      auto* distill = dynamic_cast<DistillProtocol*>(&protocol);
      if (distill == nullptr) {
        throw std::invalid_argument(
            "--adversary splitvote requires --protocol distill or "
            "distill-hp (it observes DISTILL's phase schedule)");
      }
      return std::make_unique<SplitVoteAdversary>(*distill);
    }
    case AdversaryKind::kValueLiar:
      return std::make_unique<ValueLiarAdversary>();
  }
  throw std::logic_error("unreachable adversary kind");
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>();
  }
  throw std::logic_error("unreachable scheduler kind");
}

/// Staircase arrivals over [0, W): the i-th honest player (ascending id)
/// joins at floor(i*W/h). Empty when no window is configured.
std::vector<Round> build_arrivals(const CliConfig& config,
                                  const Population& population) {
  if (config.arrival_window <= 0) return {};
  const auto& honest = population.honest_players();
  const std::size_t h = honest.size();
  std::vector<Round> arrivals(population.num_players(), 0);
  for (std::size_t i = 0; i < h; ++i) {
    arrivals[honest[i].value()] = static_cast<Round>(
        (static_cast<std::uint64_t>(i) *
         static_cast<std::uint64_t>(config.arrival_window)) /
        h);
  }
  return arrivals;
}

/// The last ceil(F*h) honest players crash-stop at depart_round. Empty
/// when no departures are configured.
std::vector<Round> build_departures(const CliConfig& config,
                                    const Population& population) {
  if (config.depart_frac <= 0.0) return {};
  const auto& honest = population.honest_players();
  const std::size_t h = honest.size();
  const std::size_t leavers = std::min(
      h, static_cast<std::size_t>(
             std::ceil(config.depart_frac * static_cast<double>(h))));
  std::vector<Round> departures(population.num_players(), -1);
  for (std::size_t i = h - leavers; i < h; ++i) {
    departures[honest[i].value()] = config.depart_round;
  }
  return departures;
}

}  // namespace

namespace {

/// Six metric summaries for one configuration point.
std::vector<Summary> measure_point(const CliConfig& config) {
  TrialPlan plan;
  plan.trials = config.trials;
  plan.base_seed = config.seed;
  plan.threads = 1;

  const auto summaries = run_trials_multi(
      plan, 6, [&](std::uint64_t seed) {
        Rng rng(seed);
        const World world = make_world(config, rng);
        const auto honest = std::max<std::size_t>(
            1, static_cast<std::size_t>(config.alpha *
                                        static_cast<double>(config.n)));
        const Population population =
            Population::with_random_honest(config.n, honest, rng);
        // `config.gossip` may have been set directly (bypassing
        // parse_args); treat it as the alias it is.
        const EngineKind engine =
            config.gossip ? EngineKind::kGossip : config.engine;
        const std::vector<Round> arrivals = build_arrivals(config, population);
        const std::vector<Round> departures =
            build_departures(config, population);

        // Traces cover the FIRST trial only, on the engines whose observer
        // sees synchronous rounds (lockstep observers see virtual rounds —
        // the same shape). The mux lets the CSV and JSONL recorders share
        // the engine's single observer slot.
        const bool first_trial = seed == config.seed;
        const bool traces_ok =
            engine == EngineKind::kSync || engine == EngineKind::kLockstep;
        obs::ObserverMux mux;
        TraceRecorder trace;
        const bool want_trace =
            traces_ok && !config.trace_path.empty() && first_trial;
        if (want_trace) mux.add(&trace);
        std::ofstream jsonl_file;
        std::optional<obs::JsonlTraceWriter> jsonl;
        if (traces_ok && !config.trace_jsonl_path.empty() && first_trial) {
          jsonl_file.open(config.trace_jsonl_path);
          if (!jsonl_file) {
            throw std::invalid_argument("--trace-jsonl: cannot open " +
                                        config.trace_jsonl_path);
          }
          jsonl.emplace(jsonl_file);
          mux.add(&*jsonl);
        }
        RunObserver* observer = mux.empty() ? nullptr : &mux;

        RunResult result;
        switch (engine) {
          case EngineKind::kGossip: {
            // Per-node protocol instances over the gossip substrate. The
            // split-vote adversary needs a single observed instance, which
            // does not exist here; make_adversary rejects it below.
            auto probe_protocol = make_protocol(config, world);  // validation
            auto adversary = make_adversary(config, *probe_protocol);
            if (config.adversary == AdversaryKind::kSplitVote) {
              throw std::invalid_argument(
                  "--adversary splitvote is not available with --engine "
                  "gossip (there is no single protocol instance to observe)");
            }
            GossipConfig gossip_config;
            gossip_config.fanout = config.fanout;
            gossip_config.max_rounds = config.max_rounds;
            gossip_config.seed = seed ^ 0x2545F491;
            gossip_config.arrivals = arrivals;
            gossip_config.departures = departures;
            result = GossipEngine::run(
                world, population,
                [&] { return make_protocol(config, world); }, *adversary,
                gossip_config);
            break;
          }
          case EngineKind::kSync: {
            auto protocol = make_protocol(config, world);
            auto adversary = make_adversary(config, *protocol);
            SyncRunConfig run_config;
            run_config.max_rounds = config.max_rounds;
            run_config.seed = seed ^ 0x2545F491;
            run_config.arrivals = arrivals;
            run_config.departures = departures;
            run_config.observer = observer;
            result = SyncEngine::run(world, population, *protocol, *adversary,
                                     run_config);
            break;
          }
          case EngineKind::kLockstep: {
            auto protocol = make_protocol(config, world);
            auto adversary = make_adversary(config, *protocol);
            auto scheduler = make_scheduler(config.scheduler);
            LockstepRunConfig run_config;
            run_config.max_steps = config.max_steps;
            run_config.seed = seed ^ 0x2545F491;
            run_config.arrivals = arrivals;
            run_config.departures = departures;
            run_config.observer = observer;
            result =
                LockstepEngine::run(world, population, *protocol, *adversary,
                                    *scheduler, run_config);
            break;
          }
          case EngineKind::kAsync: {
            // Only the natively asynchronous protocols run here; the
            // synchronous ones go through --engine lockstep instead.
            std::unique_ptr<AsyncProtocol> protocol;
            switch (config.protocol) {
              case ProtocolKind::kCollab:
                protocol = std::make_unique<AsyncCollabProtocol>();
                break;
              case ProtocolKind::kTrivial:
                protocol = std::make_unique<AsyncTrivialRandomProtocol>();
                break;
              default:
                throw std::invalid_argument(
                    "--engine async supports --protocol collab or trivial; "
                    "run synchronous protocols with --engine lockstep");
            }
            auto probe_protocol = make_protocol(config, world);  // validation
            auto adversary = make_adversary(config, *probe_protocol);
            auto scheduler = make_scheduler(config.scheduler);
            AsyncRunConfig run_config;
            run_config.max_steps = config.max_steps;
            run_config.seed = seed ^ 0x2545F491;
            run_config.arrivals = arrivals;
            run_config.departures = departures;
            result = AsyncEngine::run(world, population, *protocol,
                                      *adversary, *scheduler, run_config);
            break;
          }
        }
        if (want_trace) {
          std::ofstream file(config.trace_path);
          if (!file) {
            throw std::invalid_argument("--trace: cannot open " +
                                        config.trace_path);
          }
          trace.write_csv(file);
        }
        return std::vector<double>{
            result.mean_honest_probes(),
            static_cast<double>(result.max_honest_probes()),
            result.mean_honest_cost(),
            static_cast<double>(result.rounds_executed),
            result.honest_success_fraction(),
            result.all_honest_satisfied ? 1.0 : 0.0,
        };
      });

  return summaries;
}

/// Apply a sweep value to a copy of the configuration.
CliConfig with_sweep_value(const CliConfig& base, double value) {
  CliConfig config = base;
  if (base.sweep_param == "alpha") {
    config.alpha = value;
  } else if (base.sweep_param == "n") {
    config.n = static_cast<std::size_t>(value);
  } else if (base.sweep_param == "good") {
    config.good = static_cast<std::size_t>(value);
  } else if (base.sweep_param == "f") {
    config.votes_per_player = static_cast<std::size_t>(value);
  } else if (base.sweep_param == "err") {
    config.error_vote_prob = value;
  } else if (base.sweep_param == "veto") {
    config.veto_fraction = value;
  }
  return config;
}

}  // namespace

int run(const CliConfig& config, std::ostream& out) {
  if (config.help) {
    out << usage();
    return 0;
  }

  if (!config.sweep_param.empty()) {
    Table table({config.sweep_param, "probes/player", "worst", "cost",
                 "rounds", "success", "completed"});
    int exit_code = 0;
    for (double value = config.sweep_lo; value <= config.sweep_hi + 1e-12;
         value += config.sweep_step) {
      const auto summaries = measure_point(with_sweep_value(config, value));
      table.add_row({Table::cell(value, 3),
                     Table::cell(summaries[0].mean()),
                     Table::cell(summaries[1].mean()),
                     Table::cell(summaries[2].mean()),
                     Table::cell(summaries[3].mean()),
                     Table::cell(summaries[4].mean(), 4),
                     Table::cell(summaries[5].min(), 0)});
      if (summaries[5].min() < 1.0) exit_code = 2;
    }
    if (config.csv) {
      table.print_csv(out);
    } else {
      out << "acpsim sweep over " << config.sweep_param << "\n\n";
      table.print(out);
    }
    return exit_code;
  }

  // --report-json turns on the process-global metrics registry so the
  // report can include engine counters and hot-path timer totals.
  const bool want_report = !config.report_json_path.empty();
  if (want_report) {
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::set_enabled(true);
  }
  const auto summaries = measure_point(config);
  if (want_report) {
    obs::MetricsRegistry::set_enabled(false);
    obs::RunReport report;
    report.set_config("n", config.n);
    report.set_config("m", config.m);
    report.set_config("good", config.good);
    report.set_config("alpha", config.alpha);
    report.set_config("protocol", protocol_name(config.protocol));
    report.set_config("adversary", adversary_name(config.adversary));
    report.set_config("trials", config.trials);
    report.set_config("seed", static_cast<std::uint64_t>(config.seed));
    report.set_config("max_rounds",
                      static_cast<std::uint64_t>(config.max_rounds));
    report.set_config("f", config.votes_per_player);
    report.set_config("err", config.error_vote_prob);
    report.set_config("veto", config.veto_fraction);
    report.set_config("use_advice", config.use_advice);
    report.set_config("trust_advice", config.trust_advice);
    const EngineKind engine =
        config.gossip ? EngineKind::kGossip : config.engine;
    report.set_config("engine", engine_name(engine));
    report.set_config("gossip", engine == EngineKind::kGossip);
    if (engine == EngineKind::kGossip) {
      report.set_config("fanout", config.fanout);
    }
    if (engine == EngineKind::kAsync || engine == EngineKind::kLockstep) {
      report.set_config("scheduler", scheduler_name(config.scheduler));
      report.set_config("max_steps",
                        static_cast<std::uint64_t>(config.max_steps));
    }
    if (config.arrival_window > 0) {
      report.set_config("arrival_window",
                        static_cast<std::uint64_t>(config.arrival_window));
    }
    if (config.depart_frac > 0.0) {
      report.set_config("depart_frac", config.depart_frac);
      report.set_config("depart_round",
                        static_cast<std::uint64_t>(config.depart_round));
    }
    report.add_metric("probes_per_player", summaries[0]);
    report.add_metric("worst_player_probes", summaries[1]);
    report.add_metric("cost_per_player", summaries[2]);
    report.add_metric("rounds", summaries[3]);
    report.add_metric("success_fraction", summaries[4]);
    report.add_metric("run_completed", summaries[5]);
    report.set_metrics_snapshot(obs::MetricsRegistry::global().snapshot());
    std::ofstream file(config.report_json_path);
    if (!file) {
      throw std::invalid_argument("--report-json: cannot open " +
                                  config.report_json_path);
    }
    report.write_json(file);
  }
  Table table({"metric", "mean", "p50", "p90", "min", "max"});
  const std::vector<std::string> names = {
      "probes/player",  "worst player probes", "cost/player",
      "rounds",         "success fraction",    "run completed"};
  for (std::size_t metric = 0; metric < names.size(); ++metric) {
    const Summary& s = summaries[metric];
    table.add_row({names[metric], Table::cell(s.mean()),
                   Table::cell(s.median()), Table::cell(s.p90()),
                   Table::cell(s.min()), Table::cell(s.max())});
  }
  if (config.csv) {
    table.print_csv(out);
  } else {
    out << "acpsim: n=" << config.n << " m=" << config.m
        << " good=" << config.good << " alpha=" << config.alpha
        << " trials=" << config.trials << "\n\n";
    table.print(out);
  }
  // Signal failure if any trial failed to satisfy all honest players.
  return summaries[5].min() >= 1.0 ? 0 : 2;
}

}  // namespace acp::cli
