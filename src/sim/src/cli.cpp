#include "acp/sim/cli.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "acp/concurrency/thread_pool.hpp"
#include "acp/engine/trace.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/jsonl_trace.hpp"
#include "acp/obs/metrics.hpp"
#include "acp/obs/profiler.hpp"
#include "acp/obs/observer_mux.hpp"
#include "acp/obs/report.hpp"
#include "acp/scenario/build.hpp"
#include "acp/scenario/registry.hpp"
#include "acp/sim/runner.hpp"
#include "acp/sim/scenario_driver.hpp"
#include "acp/stats/table.hpp"

namespace acp::cli {

std::string usage() {
  return R"(acpsim — billboard collaboration simulator (ICDCS'05 DISTILL)

usage: acpsim [options]

scenario files:
  --scenario FILE  load an "acp.scenario.v1" JSON spec (see scenarios/);
                   later flags override the file, --set overrides both
  --set KEY=VALUE  override one spec key (n, m, alpha, protocol, engine,
                   seed, ..., plus protocol.<param> and adversary.<param>);
                   applied last, in order

world:
  --n N            players (default 256)
  --m M            objects (default 256)
  --good G         good objects (default 1)
  --alpha A        honest fraction in (0,1] (default 0.5)
  --world W        auto | simple | cost-classes | top-beta (default auto:
                   derived from the protocol)
  --cost-classes C     cost classes for --protocol cost-classes (default 4)
  --cheapest-good K    class of the cheapest good object (default 0)

algorithm:
  --protocol P     any registered protocol: distill | distill-hp |
                   guess-alpha | cost-classes | no-lt | collab | trivial |
                   popularity | full-coop (default distill)
  --f F            positive votes per player (default 1)
  --err E          honest false-positive vote probability (default 0)
  --veto V         negative-vote veto fraction, 0 disables (default 0)
  --no-advice      disable the SeekAdvice half of PROBE&SEEKADVICE
  --trust          trust-weighted SeekAdvice (distill/distill-hp only)

adversary:
  --adversary A    any registered adversary: silent | slander | eager |
                   collude | spam | splitvote | liar | targeted-slander
                   (default silent)

substrate:
  --engine E       sync | async | lockstep | gossip (default sync):
                   the shared-billboard round model; asynchronous basic
                   steps under a scheduler (protocols collab/trivial only);
                   a synchronous protocol over the asynchronous engine via
                   the timestamp synchronizer; or per-node replicas
                   synchronized by push gossip
  --gossip         alias for --engine gossip
  --fanout F       gossip push fanout (default 2)
  --scheduler S    rr | random — async/lockstep schedule (default rr)
  --billboard B    billboard backend: inproc (default, in-process board) |
                   socket:<path> | tcp:<host>:<port> — a running
                   acp_billboardd; results are bit-identical across
                   backends (each trial opens a private board)

churn:
  --arrival-window W   stagger honest arrivals over [0, W) on the engine's
                       churn clock (rounds; basic steps for --engine
                       async); the i-th honest player joins at i*W/h
  --depart-frac F      fraction of honest players that crash-stop mid-run
  --depart-round R     round (or step) at which the departing fraction
                       leaves (requires --depart-frac)

execution:
  --sweep P=LO:HI:STEP   sweep one parameter (alpha|n|good|f|err|veto),
                         printing one row per value
  --trials T       independent seeded trials (default 20)
  --seed S         base seed (default 1); per-trial seeds are a splitmix64
                   stream derived from it
  --threads T      trial-driver worker threads, 0 = all cores (default 1);
                   results are bit-identical at any thread count
  --engine-threads T   round-kernel worker threads inside each trial,
                       0 = all cores (default 1); sync engine only,
                       bit-identical at any value, sequential fallback
                       for protocols without parallel_choose_safe
  --max-rounds R   per-trial round cap, sync/gossip (default 500000)
  --max-steps S    per-trial honest-step cap, async/lockstep
                   (default 10000000)
  --csv            machine-readable output
  --trace FILE     write a per-round trace CSV of the first trial
                   (engines sync and lockstep)
  --trace-jsonl FILE   write a per-round JSONL trace (acp.trace.v1) of the
                       first trial (engines sync and lockstep)
  --report-json FILE   write a machine-readable run report (acp.report.v2):
                       config echo, metric summaries, internal
                       counters/timers, and — with --profile — kernel
                       phase and bandwidth breakdowns (not available
                       with --sweep)
  --profile        enable deep profiling: per-shard kernel phase timing
                   (evaluate/apply/barrier, pool wake latency) and
                   per-player bandwidth metering; prints a profile
                   summary and fills the report's phases/bandwidth
                   sections (not available with --sweep)
  --help           this text
)";
}

namespace {

[[noreturn]] void unknown_registry_name(const char* what,
                                        const std::string& name,
                                        const std::vector<std::string>& known) {
  std::string message =
      std::string("unknown ") + what + " '" + name + "' (registered:";
  bool first = true;
  for (const std::string& k : known) {
    message += first ? " " : ", ";
    message += k;
    first = false;
  }
  message += ")";
  throw std::invalid_argument(message);
}

}  // namespace

CliConfig parse_args(const std::vector<std::string>& args) {
  CliConfig config;
  auto need_value = [&](std::size_t i) -> const std::string& {
    if (i + 1 >= args.size()) {
      throw std::invalid_argument("missing value after " + args[i]);
    }
    return args[i + 1];
  };
  auto to_size = [](const std::string& flag, const std::string& text) {
    try {
      const long long value = std::stoll(text);
      if (value < 0) throw std::invalid_argument("");
      return static_cast<std::size_t>(value);
    } catch (...) {
      throw std::invalid_argument("bad value for " + flag + ": " + text);
    }
  };
  auto to_double = [](const std::string& flag, const std::string& text) {
    try {
      return std::stod(text);
    } catch (...) {
      throw std::invalid_argument("bad value for " + flag + ": " + text);
    }
  };

  // The scenario file is the base layer: load it before any flag lands on
  // the spec, regardless of where --scenario sits on the command line.
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scenario") {
      config.spec = scenario::ScenarioSpec::load_file(need_value(i));
      ++i;
    }
  }

  scenario::ScenarioSpec& spec = config.spec;
  std::vector<std::string> overrides;  // --set, applied after all flags

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      config.help = true;
    } else if (arg == "--csv") {
      config.csv = true;
    } else if (arg == "--profile") {
      config.profile = true;
    } else if (arg == "--scenario") {
      ++i;  // already loaded above
    } else if (arg == "--set") {
      overrides.push_back(need_value(i));
      ++i;
    } else if (arg == "--no-advice") {
      spec.protocol_params.set("use_advice", 0.0);
    } else if (arg == "--trust") {
      spec.protocol_params.set("trust", 1.0);
    } else if (arg == "--gossip") {
      spec.engine = "gossip";
    } else if (arg == "--engine") {
      spec.engine = need_value(i);
      ++i;
    } else if (arg == "--scheduler") {
      spec.scheduler = need_value(i);
      ++i;
    } else if (arg == "--billboard") {
      spec.billboard = need_value(i);
      ++i;
    } else if (arg == "--world") {
      spec.world = need_value(i);
      ++i;
    } else if (arg == "--max-steps") {
      spec.max_steps = static_cast<Count>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--arrival-window") {
      spec.arrival_window = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--depart-frac") {
      spec.depart_frac = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--depart-round") {
      spec.depart_round = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--fanout") {
      spec.fanout = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--trace") {
      config.trace_path = need_value(i);
      ++i;
    } else if (arg == "--trace-jsonl") {
      config.trace_jsonl_path = need_value(i);
      ++i;
    } else if (arg == "--report-json") {
      config.report_json_path = need_value(i);
      ++i;
    } else if (arg == "--n") {
      spec.n = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--m") {
      spec.m = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--good") {
      spec.good = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--alpha") {
      spec.alpha = to_double(arg, need_value(i));
      ++i;
    } else if (arg == "--protocol") {
      spec.protocol = need_value(i);
      ++i;
    } else if (arg == "--adversary") {
      spec.adversary = need_value(i);
      ++i;
    } else if (arg == "--trials") {
      spec.trials = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--seed") {
      spec.seed = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--threads") {
      spec.threads = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--engine-threads") {
      spec.engine_threads = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--max-rounds") {
      spec.max_rounds = static_cast<Round>(to_size(arg, need_value(i)));
      ++i;
    } else if (arg == "--f") {
      spec.protocol_params.set("f",
                               static_cast<double>(to_size(arg, need_value(i))));
      ++i;
    } else if (arg == "--err") {
      spec.protocol_params.set("err", to_double(arg, need_value(i)));
      ++i;
    } else if (arg == "--veto") {
      spec.protocol_params.set("veto", to_double(arg, need_value(i)));
      ++i;
    } else if (arg == "--cost-classes") {
      spec.cost_classes = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--cheapest-good") {
      spec.cheapest_good_class = to_size(arg, need_value(i));
      ++i;
    } else if (arg == "--sweep") {
      // name=lo:hi:step
      const std::string& sweep = need_value(i);
      ++i;
      const auto eq = sweep.find('=');
      const auto c1 = sweep.find(':', eq == std::string::npos ? 0 : eq);
      const auto c2 = c1 == std::string::npos ? std::string::npos
                                              : sweep.find(':', c1 + 1);
      if (eq == std::string::npos || c1 == std::string::npos ||
          c2 == std::string::npos) {
        throw std::invalid_argument(
            "--sweep wants name=lo:hi:step, got: " + sweep);
      }
      config.sweep_param = sweep.substr(0, eq);
      config.sweep_lo = to_double(arg, sweep.substr(eq + 1, c1 - eq - 1));
      config.sweep_hi = to_double(arg, sweep.substr(c1 + 1, c2 - c1 - 1));
      config.sweep_step = to_double(arg, sweep.substr(c2 + 1));
    } else {
      throw std::invalid_argument("unknown option: " + arg +
                                  " (try --help)");
    }
  }

  for (const std::string& assignment : overrides) {
    scenario::apply_override(spec, assignment);
  }

  if (config.help) return config;
  spec.validate();

  // Fail fast on unknown names — a typo should die in argument parsing,
  // not in the middle of trial 0.
  const scenario::Registries& reg = scenario::registries();
  if (!reg.protocols.contains(spec.protocol)) {
    unknown_registry_name("protocol", spec.protocol, reg.protocols.names());
  }
  if (!reg.adversaries.contains(spec.adversary)) {
    unknown_registry_name("adversary", spec.adversary,
                          reg.adversaries.names());
  }

  if (!config.sweep_param.empty()) {
    static const std::vector<std::string> kSweepable = {
        "alpha", "n", "good", "f", "err", "veto"};
    if (std::find(kSweepable.begin(), kSweepable.end(),
                  config.sweep_param) == kSweepable.end()) {
      throw std::invalid_argument("--sweep: unknown parameter " +
                                  config.sweep_param);
    }
    if (config.sweep_step <= 0.0 || config.sweep_hi < config.sweep_lo) {
      throw std::invalid_argument("--sweep: need lo <= hi and step > 0");
    }
    if (!config.report_json_path.empty()) {
      throw std::invalid_argument(
          "--report-json is not available with --sweep (one report "
          "describes one configuration point)");
    }
    if (config.profile) {
      throw std::invalid_argument(
          "--profile is not available with --sweep (the profile "
          "describes one configuration point)");
    }
  }
  return config;
}

namespace {

/// Six metric summaries for one configuration point, honoring the
/// first-trial trace options.
std::vector<Summary> measure_point(const CliConfig& config) {
  const scenario::ScenarioSpec& spec = config.spec;
  const TrialPlan plan = sim::scenario_trial_plan(spec);
  const std::uint64_t first_seed =
      derive_trial_seeds(plan.base_seed, plan.trials).front();

  return run_trials_multi(
      plan, sim::kNumScenarioMetrics, [&](std::uint64_t seed) {
        // Traces cover the FIRST trial only, on the engines whose observer
        // sees synchronous rounds (lockstep observers see virtual rounds —
        // the same shape). The mux lets the CSV and JSONL recorders share
        // the engine's single observer slot.
        const bool first_trial = seed == first_seed;
        const bool traces_ok =
            spec.engine == "sync" || spec.engine == "lockstep";
        obs::ObserverMux mux;
        TraceRecorder trace;
        const bool want_trace =
            traces_ok && !config.trace_path.empty() && first_trial;
        if (want_trace) mux.add(&trace);
        std::ofstream jsonl_file;
        std::optional<obs::JsonlTraceWriter> jsonl;
        if (traces_ok && !config.trace_jsonl_path.empty() && first_trial) {
          jsonl_file.open(config.trace_jsonl_path);
          if (!jsonl_file) {
            throw std::invalid_argument("--trace-jsonl: cannot open " +
                                        config.trace_jsonl_path);
          }
          jsonl.emplace(jsonl_file);
          mux.add(&*jsonl);
        }
        RunObserver* observer = mux.empty() ? nullptr : &mux;

        const RunResult result =
            scenario::run_scenario_trial(spec, seed, observer);
        if (want_trace) {
          std::ofstream file(config.trace_path);
          if (!file) {
            throw std::invalid_argument("--trace: cannot open " +
                                        config.trace_path);
          }
          trace.write_csv(file);
        }
        return sim::scenario_metrics(result);
      });
}

/// Human-readable digest of a --profile run: where the kernel time went
/// and how many bits moved. The full breakdown is in the report JSON.
void print_profile_summary(const obs::PhaseProfileSnapshot& phases,
                           const obs::BandwidthSnapshot& bandwidth,
                           std::ostream& out) {
  const std::uint64_t kernel_ns =
      phases.evaluate_ns + phases.apply_ns + phases.barrier_ns;
  const auto pct = [kernel_ns](std::uint64_t ns) {
    return kernel_ns == 0 ? 0.0
                          : 100.0 * static_cast<double>(ns) /
                                static_cast<double>(kernel_ns);
  };
  out << "\nprofile: kernel phases over "
      << (phases.parallel_rounds + phases.sequential_rounds) << " rounds ("
      << phases.parallel_rounds << " parallel, " << phases.sequential_rounds
      << " sequential)\n";
  out << "  engine.kernel.evaluate  " << phases.evaluate_ns << " ns ("
      << Table::cell(pct(phases.evaluate_ns), 1) << "%)\n";
  out << "  engine.kernel.apply     " << phases.apply_ns << " ns ("
      << Table::cell(pct(phases.apply_ns), 1) << "%)\n";
  out << "  engine.kernel.barrier   " << phases.barrier_ns << " ns ("
      << Table::cell(pct(phases.barrier_ns), 1) << "%)\n";
  if (!phases.shards.empty()) {
    out << "  shards (evaluate ns | wake ns):\n";
    for (std::size_t s = 0; s < phases.shards.size(); ++s) {
      out << "    shard " << s << ": " << phases.shards[s].evaluate_ns
          << " | " << phases.shards[s].wake_ns << "\n";
    }
  }
  out << "  pool: tasks=" << phases.pool_tasks
      << " wake_ns=" << phases.pool_wake_ns
      << " max_queue_depth=" << phases.pool_max_queue_depth << "\n";
  out << "profile: bandwidth engine.io.bits_read=" << bandwidth.bits_read
      << " engine.io.bits_written=" << bandwidth.bits_written << "\n";
  for (std::size_t c = 0; c < bandwidth.channels.size(); ++c) {
    const obs::IoChannelSample& channel = bandwidth.channels[c];
    if (channel.read_ops == 0 && channel.write_ops == 0) continue;
    out << "  " << obs::io_channel_name(static_cast<obs::IoChannel>(c))
        << ": read " << channel.read_bits << " bits (" << channel.read_ops
        << " ops), wrote " << channel.write_bits << " bits ("
        << channel.write_ops << " ops)\n";
  }
}

/// Apply a sweep value to a copy of the configuration.
CliConfig with_sweep_value(const CliConfig& base, double value) {
  CliConfig config = base;
  if (base.sweep_param == "alpha") {
    config.spec.alpha = value;
  } else if (base.sweep_param == "n") {
    config.spec.n = static_cast<std::size_t>(value);
  } else if (base.sweep_param == "good") {
    config.spec.good = static_cast<std::size_t>(value);
  } else if (base.sweep_param == "f") {
    config.spec.protocol_params.set("f", static_cast<double>(
                                             static_cast<std::size_t>(value)));
  } else if (base.sweep_param == "err") {
    config.spec.protocol_params.set("err", value);
  } else if (base.sweep_param == "veto") {
    config.spec.protocol_params.set("veto", value);
  }
  return config;
}

}  // namespace

int run(const CliConfig& config, std::ostream& out) {
  if (config.help) {
    out << usage();
    return 0;
  }

  const scenario::ScenarioSpec& spec = config.spec;

  if (!config.sweep_param.empty()) {
    Table table({config.sweep_param, "probes/player", "worst", "cost",
                 "rounds", "success", "completed"});
    int exit_code = 0;
    for (double value = config.sweep_lo; value <= config.sweep_hi + 1e-12;
         value += config.sweep_step) {
      const auto summaries = measure_point(with_sweep_value(config, value));
      table.add_row({Table::cell(value, 3),
                     Table::cell(summaries[sim::kMeanProbes].mean()),
                     Table::cell(summaries[sim::kMaxProbes].mean()),
                     Table::cell(summaries[sim::kMeanCost].mean()),
                     Table::cell(summaries[sim::kRounds].mean()),
                     Table::cell(summaries[sim::kSuccessFraction].mean(), 4),
                     Table::cell(summaries[sim::kCompleted].min(), 0)});
      if (summaries[sim::kCompleted].min() < 1.0) exit_code = 2;
    }
    if (config.csv) {
      table.print_csv(out);
    } else {
      out << "acpsim sweep over " << config.sweep_param << "\n\n";
      table.print(out);
    }
    return exit_code;
  }

  // --report-json turns on the process-global metrics registry so the
  // report can include engine counters and hot-path timer totals;
  // --profile additionally arms the phase profiler and bandwidth meter.
  const bool want_report = !config.report_json_path.empty();
  if (want_report || config.profile) {
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::set_enabled(true);
  }
  if (config.profile) {
    obs::PhaseProfiler::global().reset();
    obs::PhaseProfiler::set_enabled(true);
    obs::BandwidthMeter::global().reset();
    obs::BandwidthMeter::set_enabled(true);
  }
  const auto summaries = measure_point(config);
  obs::PhaseProfileSnapshot phases;
  obs::BandwidthSnapshot bandwidth;
  if (config.profile) {
    obs::PhaseProfiler::set_enabled(false);
    obs::BandwidthMeter::set_enabled(false);
    phases = obs::PhaseProfiler::global().snapshot();
    bandwidth = obs::BandwidthMeter::global().snapshot();
  }
  if (want_report || config.profile) {
    obs::MetricsRegistry::set_enabled(false);
  }
  if (want_report) {
    obs::RunReport report;
    report.set_config("n", spec.n);
    report.set_config("m", spec.m);
    report.set_config("good", spec.good);
    report.set_config("alpha", spec.alpha);
    report.set_config("protocol", spec.protocol);
    report.set_config("adversary", spec.adversary);
    report.set_config("trials", spec.trials);
    report.set_config("seed", spec.seed);
    report.set_config("max_rounds",
                      static_cast<std::uint64_t>(spec.max_rounds));
    report.set_config("f", spec.protocol_params.get_size("f", 1));
    report.set_config("err", spec.protocol_params.get("err", 0.0));
    report.set_config("veto", spec.protocol_params.get("veto", 0.0));
    report.set_config("use_advice",
                      spec.protocol_params.get_bool("use_advice", true));
    report.set_config("trust_advice",
                      spec.protocol_params.get_bool("trust", false));
    report.set_config("engine", spec.engine);
    report.set_config("billboard", spec.billboard);
    report.set_config("threads", spec.threads);
    // Requested vs hardware-resolved round-kernel threads. The count a
    // specific run actually used (1 under the sequential fallback) is in
    // the JSONL trace header's engine_threads field.
    report.set_config("engine_threads", spec.engine_threads);
    report.set_config("engine_threads_resolved",
                      ThreadPool::resolve(spec.engine_threads));
    report.set_config("gossip", spec.engine == "gossip");
    if (spec.engine == "gossip") {
      report.set_config("fanout", spec.fanout);
    }
    if (spec.engine == "async" || spec.engine == "lockstep") {
      report.set_config("scheduler", spec.scheduler);
      report.set_config("max_steps",
                        static_cast<std::uint64_t>(spec.max_steps));
    }
    if (spec.arrival_window > 0) {
      report.set_config("arrival_window",
                        static_cast<std::uint64_t>(spec.arrival_window));
    }
    if (spec.depart_frac > 0.0) {
      report.set_config("depart_frac", spec.depart_frac);
      report.set_config("depart_round",
                        static_cast<std::uint64_t>(spec.depart_round));
    }
    report.add_metric("probes_per_player", summaries[sim::kMeanProbes]);
    report.add_metric("worst_player_probes", summaries[sim::kMaxProbes]);
    report.add_metric("cost_per_player", summaries[sim::kMeanCost]);
    report.add_metric("rounds", summaries[sim::kRounds]);
    report.add_metric("success_fraction", summaries[sim::kSuccessFraction]);
    report.add_metric("run_completed", summaries[sim::kCompleted]);
    report.set_metrics_snapshot(obs::MetricsRegistry::global().snapshot());
    if (config.profile) {
      report.set_phase_profile(phases);
      report.set_bandwidth(bandwidth);
    }
    std::ofstream file(config.report_json_path);
    if (!file) {
      throw std::invalid_argument("--report-json: cannot open " +
                                  config.report_json_path);
    }
    report.write_json(file);
  }
  Table table({"metric", "mean", "p50", "p90", "min", "max"});
  const std::vector<std::string> names = {
      "probes/player",  "worst player probes", "cost/player",
      "rounds",         "success fraction",    "run completed"};
  for (std::size_t metric = 0; metric < names.size(); ++metric) {
    const Summary& s = summaries[metric];
    table.add_row({names[metric], Table::cell(s.mean()),
                   Table::cell(s.median()), Table::cell(s.p90()),
                   Table::cell(s.min()), Table::cell(s.max())});
  }
  if (config.csv) {
    table.print_csv(out);
  } else {
    out << "acpsim: n=" << spec.n << " m=" << spec.m
        << " good=" << spec.good << " alpha=" << spec.alpha
        << " trials=" << spec.trials << "\n\n";
    table.print(out);
    if (config.profile) {
      print_profile_summary(phases, bandwidth, out);
    }
  }
  // Signal failure if any trial failed to satisfy all honest players.
  return summaries[sim::kCompleted].min() >= 1.0 ? 0 : 2;
}

}  // namespace acp::cli
