#include "acp/sim/runner.hpp"

#include <algorithm>
#include <exception>

#include "acp/rng/splitmix64.hpp"
#include "acp/concurrency/thread_pool.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {

/// Shard count is a function of `trials` alone — never of the worker
/// count — so the shard boundaries (and with them the merge order) are
/// part of the experiment definition, not of the machine it ran on.
constexpr std::size_t kMaxShards = 64;

/// Run `body(t, seed_t)` for every trial, sharded over the pool. Shards
/// are contiguous trial ranges executed in trial order; the caller's
/// per-shard state is reduced in shard index order by `finish(shard)`.
/// The first failure (by shard index, then trial order within the shard —
/// deterministic, unlike first-to-fail wall-clock order) is rethrown
/// after all shards drain.
void for_each_trial_sharded(
    const TrialPlan& plan,
    const std::function<void(std::size_t shard, std::size_t trial,
                             std::uint64_t seed)>& body) {
  const std::vector<std::uint64_t> seeds =
      derive_trial_seeds(plan.base_seed, plan.trials);
  const std::size_t shards = std::min(plan.trials, kMaxShards);
  std::vector<std::exception_ptr> failures(shards);

  auto run_shard = [&](std::size_t shard) {
    const std::size_t begin = shard * plan.trials / shards;
    const std::size_t end = (shard + 1) * plan.trials / shards;
    try {
      for (std::size_t t = begin; t < end; ++t) body(shard, t, seeds[t]);
    } catch (...) {
      failures[shard] = std::current_exception();
    }
  };

  const std::size_t threads = ThreadPool::resolve(plan.threads);
  if (threads == 1) {
    for (std::size_t shard = 0; shard < shards; ++shard) run_shard(shard);
  } else {
    ThreadPool pool(threads);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      pool.submit([&run_shard, shard] { run_shard(shard); });
    }
    pool.wait_idle();
  }

  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }
}

}  // namespace

std::vector<std::uint64_t> derive_trial_seeds(std::uint64_t base_seed,
                                              std::size_t trials) {
  std::vector<std::uint64_t> seeds(trials);
  SplitMix64 stream(base_seed);
  for (std::uint64_t& seed : seeds) seed = stream.next();
  return seeds;
}

std::vector<RunningStats> run_trials_stats(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial) {
  ACP_EXPECTS(plan.trials >= 1);
  ACP_EXPECTS(num_metrics >= 1);
  ACP_EXPECTS(trial != nullptr);

  const std::size_t shards = std::min(plan.trials, kMaxShards);
  std::vector<std::vector<RunningStats>> per_shard(
      shards, std::vector<RunningStats>(num_metrics));

  for_each_trial_sharded(
      plan, [&](std::size_t shard, std::size_t, std::uint64_t seed) {
        const std::vector<double> row = trial(seed);
        ACP_ENSURES(row.size() == num_metrics);
        for (std::size_t metric = 0; metric < num_metrics; ++metric) {
          per_shard[shard][metric].push(row[metric]);
        }
      });

  std::vector<RunningStats> merged(num_metrics);
  for (const auto& shard_stats : per_shard) {
    for (std::size_t metric = 0; metric < num_metrics; ++metric) {
      merged[metric].merge(shard_stats[metric]);
    }
  }
  return merged;
}

std::vector<Summary> run_trials_multi(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial) {
  ACP_EXPECTS(plan.trials >= 1);
  ACP_EXPECTS(num_metrics >= 1);
  ACP_EXPECTS(trial != nullptr);

  // Samples land at their trial index, so the materialized vectors are
  // identical no matter which worker ran which shard.
  std::vector<std::vector<double>> results(plan.trials);
  for_each_trial_sharded(
      plan, [&](std::size_t, std::size_t t, std::uint64_t seed) {
        results[t] = trial(seed);
      });

  std::vector<std::vector<double>> per_metric(num_metrics);
  for (auto& samples : per_metric) samples.reserve(plan.trials);
  for (const auto& row : results) {
    ACP_ENSURES(row.size() == num_metrics);
    for (std::size_t metric = 0; metric < num_metrics; ++metric) {
      per_metric[metric].push_back(row[metric]);
    }
  }

  std::vector<Summary> summaries;
  summaries.reserve(num_metrics);
  for (auto& samples : per_metric) {
    summaries.push_back(Summary::from_samples(std::move(samples)));
  }
  return summaries;
}

Summary run_trials(const TrialPlan& plan,
                   const std::function<double(std::uint64_t)>& trial) {
  ACP_EXPECTS(trial != nullptr);
  auto summaries = run_trials_multi(
      plan, 1, [&trial](std::uint64_t seed) {
        return std::vector<double>{trial(seed)};
      });
  return summaries.front();
}

}  // namespace acp
