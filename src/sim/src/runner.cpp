#include "acp/sim/runner.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "acp/sim/thread_pool.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {
std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

std::vector<Summary> run_trials_multi(
    const TrialPlan& plan, std::size_t num_metrics,
    const std::function<std::vector<double>(std::uint64_t)>& trial) {
  ACP_EXPECTS(plan.trials >= 1);
  ACP_EXPECTS(num_metrics >= 1);
  ACP_EXPECTS(trial != nullptr);

  std::vector<std::vector<double>> results(plan.trials);
  std::mutex failure_mutex;
  std::exception_ptr first_failure;

  const std::size_t threads = resolve_threads(plan.threads);
  if (threads == 1) {
    for (std::size_t t = 0; t < plan.trials; ++t) {
      results[t] = trial(plan.base_seed + t);
    }
  } else {
    ThreadPool pool(threads);
    for (std::size_t t = 0; t < plan.trials; ++t) {
      pool.submit([&, t] {
        try {
          results[t] = trial(plan.base_seed + t);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(failure_mutex);
          if (!first_failure) first_failure = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    if (first_failure) std::rethrow_exception(first_failure);
  }

  std::vector<std::vector<double>> per_metric(num_metrics);
  for (auto& samples : per_metric) samples.reserve(plan.trials);
  for (const auto& row : results) {
    ACP_ENSURES(row.size() == num_metrics);
    for (std::size_t metric = 0; metric < num_metrics; ++metric) {
      per_metric[metric].push_back(row[metric]);
    }
  }

  std::vector<Summary> summaries;
  summaries.reserve(num_metrics);
  for (auto& samples : per_metric) {
    summaries.push_back(Summary::from_samples(std::move(samples)));
  }
  return summaries;
}

Summary run_trials(const TrialPlan& plan,
                   const std::function<double(std::uint64_t)>& trial) {
  ACP_EXPECTS(trial != nullptr);
  auto summaries = run_trials_multi(
      plan, 1, [&trial](std::uint64_t seed) {
        return std::vector<double>{trial(seed)};
      });
  return summaries.front();
}

}  // namespace acp
