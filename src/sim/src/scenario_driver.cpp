#include "acp/sim/scenario_driver.hpp"

#include "acp/scenario/build.hpp"

namespace acp::sim {

std::vector<double> scenario_metrics(const RunResult& result) {
  return {
      result.mean_honest_probes(),
      static_cast<double>(result.max_honest_probes()),
      result.mean_honest_cost(),
      static_cast<double>(result.rounds_executed),
      result.honest_success_fraction(),
      result.all_honest_satisfied ? 1.0 : 0.0,
  };
}

TrialPlan scenario_trial_plan(const scenario::ScenarioSpec& spec) {
  TrialPlan plan;
  plan.trials = spec.trials;
  plan.base_seed = spec.seed;
  plan.threads = spec.threads;
  return plan;
}

std::vector<RunningStats> run_scenario_stats(
    const scenario::ScenarioSpec& spec) {
  spec.validate();
  return run_trials_stats(
      scenario_trial_plan(spec), kNumScenarioMetrics,
      [&spec](std::uint64_t seed) {
        return scenario_metrics(scenario::run_scenario_trial(spec, seed));
      });
}

std::vector<Summary> run_scenario_summaries(
    const scenario::ScenarioSpec& spec) {
  spec.validate();
  return run_trials_multi(
      scenario_trial_plan(spec), kNumScenarioMetrics,
      [&spec](std::uint64_t seed) {
        return scenario_metrics(scenario::run_scenario_trial(spec, seed));
      });
}

}  // namespace acp::sim
