// Length-prefixed binary framing for the billboard wire protocol
// ("acp.bbwire.v1", see acp/billboard/wire.hpp and docs/architecture.md).
//
// This module is transport- and message-agnostic: it knows how to carry an
// opaque (type, payload) frame over a byte stream and how to encode the
// primitive scalars the payloads are built from. One frame is
//
//   magic   u16 LE  0xB1BD  ("billboard")
//   version u8      1
//   type    u8      message discriminator (opaque here)
//   length  u32 LE  payload byte count, <= kMaxFramePayload
//   payload length bytes
//
// Payload scalars use LEB128 varints (unsigned) and zigzag varints
// (signed, for Round values that may be -1); 64-bit doubles travel as
// their IEEE-754 bit pattern in 8 little-endian bytes.
//
// Everything that reads untrusted bytes throws WireFormatError with an
// actionable message (what was being decoded, at which offset, what was
// wrong) — the server turns these into ERROR frames, clients surface them
// to the caller.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace acp::net {

inline constexpr std::uint16_t kFrameMagic = 0xB1BD;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 8;
/// Hard payload ceiling: a frame larger than this is a corrupt length
/// field, not a real message (the biggest legitimate payload — a bulk
/// post transfer — batches well below it).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Malformed bytes on the wire (truncation, bad magic, corrupt length,
/// out-of-range values). The message names the decode site and offset.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& message)
      : std::runtime_error("bbwire: " + message) {}
};

// -- Varint primitives ------------------------------------------------------

/// Append an LEB128 varint (1..10 bytes).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

[[nodiscard]] inline std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] inline std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

inline void put_varint_signed(std::vector<std::uint8_t>& out,
                              std::int64_t value) {
  put_varint(out, zigzag_encode(value));
}

inline void put_u64_le(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

inline void put_double(std::vector<std::uint8_t>& out, double value) {
  put_u64_le(out, std::bit_cast<std::uint64_t>(value));
}

/// Bounded cursor over one frame payload. Every accessor throws
/// WireFormatError naming `context` and the byte offset on truncation or
/// malformed input, so a corrupt frame produces a message like
/// "bbwire: commit: truncated varint at payload offset 12".
class PayloadReader {
 public:
  PayloadReader(std::span<const std::uint8_t> payload, const char* context)
      : data_(payload), context_(context) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  [[nodiscard]] std::uint8_t u8() {
    if (pos_ >= data_.size()) fail("truncated byte");
    return data_[pos_++];
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) fail("truncated varint");
      const std::uint8_t byte = data_[pos_++];
      value |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) {
        if (shift == 63 && (byte & 0x7Eu) != 0) fail("varint overflows u64");
        return value;
      }
    }
    fail("varint longer than 10 bytes");
  }

  [[nodiscard]] std::int64_t varint_signed() {
    return zigzag_decode(varint());
  }

  [[nodiscard]] std::uint64_t u64_le() {
    if (remaining() < 8) fail("truncated u64");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                          i)])
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64_le()); }

  [[nodiscard]] std::string string(std::size_t max_len) {
    const std::uint64_t len = varint();
    if (len > max_len) {
      fail("string length " + std::to_string(len) + " exceeds limit " +
           std::to_string(max_len));
    }
    if (remaining() < len) fail("truncated string");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  /// The decoder consumed the whole payload; trailing garbage is a
  /// framing bug, not padding.
  void expect_done() {
    if (!done()) {
      fail(std::to_string(remaining()) + " trailing bytes after message");
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw WireFormatError(std::string(context_) + ": " + what +
                          " at payload offset " + std::to_string(pos_));
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  const char* context_;
};

/// Append strings with the same shape PayloadReader::string expects.
inline void put_string(std::vector<std::uint8_t>& out, std::string_view text) {
  put_varint(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
}

// -- Frame assembly ---------------------------------------------------------

/// One complete frame as carved out of the stream. The payload view
/// aliases the assembler's buffer: valid until the next append()/next().
struct Frame {
  std::uint8_t type = 0;
  std::span<const std::uint8_t> payload;
};

/// Open a frame of `type` in `out`, returning the offset end_frame needs.
/// The caller appends the payload bytes, then calls end_frame to patch
/// the length field.
[[nodiscard]] inline std::size_t begin_frame(std::vector<std::uint8_t>& out,
                                             std::uint8_t type) {
  const std::size_t header_at = out.size();
  out.push_back(static_cast<std::uint8_t>(kFrameMagic & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(kFrameMagic >> 8));
  out.push_back(kFrameVersion);
  out.push_back(type);
  out.insert(out.end(), 4, 0);  // length, patched by end_frame
  return header_at;
}

inline void end_frame(std::vector<std::uint8_t>& out, std::size_t header_at) {
  const std::size_t payload_len = out.size() - header_at - kFrameHeaderSize;
  if (payload_len > kMaxFramePayload) {
    throw WireFormatError("encode: payload of " + std::to_string(payload_len) +
                          " bytes exceeds the " +
                          std::to_string(kMaxFramePayload) + "-byte limit");
  }
  for (int i = 0; i < 4; ++i) {
    out[header_at + 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
}

/// Incremental stream -> frame splitter. Feed arbitrary byte chunks with
/// append(); next() yields complete frames in order, throwing
/// WireFormatError the moment the header is provably corrupt (wrong
/// magic, wrong version, oversized length) — a byte-stream desync is not
/// recoverable, so callers should surface the error and close.
class FrameAssembler {
 public:
  FrameAssembler() = default;
  explicit FrameAssembler(std::size_t max_payload)
      : max_payload_(max_payload) {}

  void append(std::span<const std::uint8_t> data) {
    compact();
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Total bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

  [[nodiscard]] std::optional<Frame> next() {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderSize) return std::nullopt;
    const std::uint8_t* head = buffer_.data() + consumed_;
    const std::uint16_t magic = static_cast<std::uint16_t>(
        head[0] | static_cast<std::uint16_t>(head[1]) << 8);
    if (magic != kFrameMagic) {
      throw WireFormatError(
          "frame: bad magic 0x" + hex16(magic) + " (want 0x" +
          hex16(kFrameMagic) + ") — not an acp.bbwire.v1 stream");
    }
    if (head[2] != kFrameVersion) {
      throw WireFormatError("frame: unsupported version " +
                            std::to_string(head[2]) + " (this peer speaks " +
                            std::to_string(kFrameVersion) + ")");
    }
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(head[4 + i]) << (8 * i);
    }
    if (length > max_payload_) {
      throw WireFormatError("frame: length " + std::to_string(length) +
                            " exceeds the " + std::to_string(max_payload_) +
                            "-byte payload limit (corrupt length field?)");
    }
    if (available < kFrameHeaderSize + length) return std::nullopt;
    Frame frame;
    frame.type = head[3];
    frame.payload = std::span<const std::uint8_t>(head + kFrameHeaderSize,
                                                  length);
    consumed_ += kFrameHeaderSize + length;
    return frame;
  }

 private:
  void compact() {
    if (consumed_ == buffer_.size()) {
      buffer_.clear();
      consumed_ = 0;
    } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
  }

  static std::string hex16(std::uint16_t value) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(4, '0');
    for (int i = 3; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = kDigits[value & 0xFu];
      value >>= 4;
    }
    return out;
  }

  std::size_t max_payload_ = kMaxFramePayload;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace acp::net
