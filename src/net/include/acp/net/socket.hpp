// Minimal stream-socket transport for the billboard service: endpoint
// parsing ("socket:<path>" Unix-domain, "tcp:<host>:<port>"), RAII fds,
// a listener, and the blocking send/recv helpers the client uses. The
// server's readiness loop (epoll/poll) lives with the server
// (acp/billboard/server.hpp); this header only owns what both ends share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace acp::net {

/// Transport-level failure (connect refused, peer closed mid-message,
/// bind errors). Distinct from WireFormatError: the bytes never arrived,
/// rather than arriving malformed.
class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& message)
      : std::runtime_error("net: " + message) {}
};

/// Where a billboard server lives. Parsed from the scenario/CLI backend
/// string minus the "inproc" case (see acp::BillboardBackendSpec).
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem path of the socket
  std::string host;  ///< kTcp
  std::uint16_t port = 0;

  /// Parse "socket:<path>" or "tcp:<host>:<port>". Throws
  /// std::invalid_argument with the accepted forms on anything else.
  [[nodiscard]] static Endpoint parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Move-only owner of a file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle();
  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Blocking connect to `endpoint`. Throws SocketError with the endpoint
/// and errno text on failure.
[[nodiscard]] FdHandle connect_endpoint(const Endpoint& endpoint);

/// A connected pair of stream sockets (socketpair) — the in-process
/// transport the parity tests drive the server core over.
[[nodiscard]] std::pair<FdHandle, FdHandle> stream_pair();

/// Bound + listening server socket. Unix endpoints unlink a stale socket
/// file before binding and remove it again on destruction. For
/// "tcp:<host>:0" the kernel-assigned port is reflected into endpoint().
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint, int backlog = 512);
  ~Listener();
  Listener(Listener&&) noexcept = default;
  Listener& operator=(Listener&&) noexcept = default;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] const Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Accept one connection (blocking). Throws SocketError on failure.
  [[nodiscard]] FdHandle accept_blocking();

 private:
  FdHandle fd_;
  Endpoint endpoint_;
  bool unlink_on_close_ = false;
};

/// Write the whole buffer, retrying short writes and EINTR. Throws
/// SocketError if the peer goes away.
void send_all(int fd, std::span<const std::uint8_t> data);

/// Read up to data.size() bytes once (blocking). Returns 0 on orderly
/// EOF; throws SocketError on failure.
[[nodiscard]] std::size_t recv_some(int fd, std::span<std::uint8_t> data);

/// O_NONBLOCK on/off. Throws SocketError on failure.
void set_nonblocking(int fd, bool on);

/// TCP_NODELAY for request/response latency; a no-op on Unix sockets.
void set_nodelay(int fd);

/// SIG_IGN for SIGPIPE, once per process (idempotent, thread-safe). A
/// peer that vanishes between poll() and send() must surface as EPIPE,
/// not kill the daemon — MSG_NOSIGNAL covers send() but not every path
/// (e.g. writev), so servers call this belt-and-braces at startup.
void ignore_sigpipe();

/// Raise RLIMIT_NOFILE toward `want` (capped at the hard limit). Returns
/// the limit actually in effect — callers opening 10^4+ sockets check
/// this instead of dying on EMFILE mid-run.
[[nodiscard]] std::size_t raise_nofile_limit(std::size_t want);

}  // namespace acp::net
