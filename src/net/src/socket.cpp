#include "acp/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <mutex>

namespace acp::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("unix socket path too long (" +
                      std::to_string(path.size()) + " bytes, limit " +
                      std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("cannot parse tcp host \"" + host +
                      "\" (IPv4 dotted-quad or \"localhost\" expected)");
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(std::string_view text) {
  constexpr std::string_view kUnixPrefix = "socket:";
  constexpr std::string_view kTcpPrefix = "tcp:";
  if (text.starts_with(kUnixPrefix)) {
    Endpoint ep;
    ep.kind = Kind::kUnix;
    ep.path = std::string(text.substr(kUnixPrefix.size()));
    if (ep.path.empty()) {
      throw std::invalid_argument(
          "billboard endpoint \"socket:\" is missing a path (want "
          "socket:<path>)");
    }
    return ep;
  }
  if (text.starts_with(kTcpPrefix)) {
    const std::string_view rest = text.substr(kTcpPrefix.size());
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("billboard endpoint \"" + std::string(text) +
                                  "\" is malformed (want tcp:<host>:<port>)");
    }
    Endpoint ep;
    ep.kind = Kind::kTcp;
    ep.host = std::string(rest.substr(0, colon));
    const std::string_view port_text = rest.substr(colon + 1);
    unsigned port_value = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port_value);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port_value > 65535) {
      throw std::invalid_argument("billboard endpoint \"" + std::string(text) +
                                  "\" has an invalid port \"" +
                                  std::string(port_text) +
                                  "\" (want an integer in [0, 65535])");
    }
    ep.port = static_cast<std::uint16_t>(port_value);
    return ep;
  }
  throw std::invalid_argument(
      "billboard endpoint \"" + std::string(text) +
      "\" is not recognized (want socket:<path> or tcp:<host>:<port>)");
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "socket:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

FdHandle::~FdHandle() { reset(); }

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FdHandle connect_endpoint(const Endpoint& endpoint) {
  const int family = endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  FdHandle fd(::socket(family, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket() for " + endpoint.to_string());
  int rc = 0;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) throw_errno("connect to " + endpoint.to_string());
  if (endpoint.kind == Endpoint::Kind::kTcp) set_nodelay(fd.get());
  return fd;
}

std::pair<FdHandle, FdHandle> stream_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  return {FdHandle(fds[0]), FdHandle(fds[1])};
}

Listener::Listener(const Endpoint& endpoint, int backlog)
    : endpoint_(endpoint) {
  const int family = endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  fd_ = FdHandle(::socket(family, SOCK_STREAM, 0));
  if (!fd_.valid()) throw_errno("socket() for " + endpoint.to_string());
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    // A stale socket file from a crashed server would make bind fail with
    // EADDRINUSE even though nobody is listening.
    ::unlink(endpoint_.path.c_str());
    const sockaddr_un addr = unix_address(endpoint_.path);
    if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + endpoint_.to_string());
    }
    unlink_on_close_ = true;
  } else {
    const int one = 1;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_address(endpoint_.host, endpoint_.port);
    if (::bind(fd_.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + endpoint_.to_string());
    }
    if (endpoint_.port == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0) {
        endpoint_.port = ntohs(bound.sin_port);
      }
    }
  }
  if (::listen(fd_.get(), backlog) != 0) {
    throw_errno("listen on " + endpoint_.to_string());
  }
}

Listener::~Listener() {
  if (unlink_on_close_ && fd_.valid()) {
    ::unlink(endpoint_.path.c_str());
  }
}

FdHandle Listener::accept_blocking() {
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) return FdHandle(fd);
    if (errno == EINTR) continue;
    throw_errno("accept on " + endpoint_.to_string());
  }
}

void send_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send of " + std::to_string(data.size() - sent) + " bytes");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t recv_some(int fd, std::span<std::uint8_t> data) {
  for (;;) {
    const ssize_t n = ::recv(fd, data.data(), data.size(), 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ignore_sigpipe() {
  // call_once so concurrent server startups don't race the handler
  // installation (sigaction itself is async-signal-safe but the flag
  // pattern would not be).
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action{};
    action.sa_handler = SIG_IGN;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGPIPE, &action, nullptr);
  });
}

std::size_t raise_nofile_limit(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    throw_errno("getrlimit(RLIMIT_NOFILE)");
  }
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = (lim.rlim_max == RLIM_INFINITY ||
                       lim.rlim_max >= static_cast<rlim_t>(want))
                          ? static_cast<rlim_t>(want)
                          : lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) {
      lim = raised;
    }
  }
  if (lim.rlim_cur == RLIM_INFINITY) return want;
  return static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace acp::net
