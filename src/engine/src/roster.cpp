#include "acp/engine/roster.hpp"

#include <algorithm>

#include "acp/util/contracts.hpp"

namespace acp {

PlayerRoster::PlayerRoster(const Population& population,
                           std::span<const Round> arrivals,
                           std::span<const Round> departures)
    : arrivals_(arrivals), departures_(departures) {
  ACP_EXPECTS(arrivals_.empty() ||
              arrivals_.size() == population.num_players());
  ACP_EXPECTS(departures_.empty() ||
              departures_.size() == population.num_players());

  for (PlayerId p : population.honest_players()) {
    const Round arrival = arrivals_.empty() ? 0 : arrivals_[p.value()];
    ACP_EXPECTS(arrival >= 0);
    if (arrival == 0) {
      active_.push_back(p);
    } else {
      pending_.push_back(p);
    }
  }
  std::stable_sort(pending_.begin(), pending_.end(),
                   [&](PlayerId a, PlayerId b) {
                     return arrivals_[a.value()] < arrivals_[b.value()];
                   });
}

void PlayerRoster::admit_arrivals(Round now) {
  while (next_pending_ < pending_.size() &&
         arrivals_[pending_[next_pending_].value()] <= now) {
    active_.push_back(pending_[next_pending_]);
    ++next_pending_;
  }
}

const std::vector<PlayerId>& PlayerRoster::apply_departures(Round now) {
  departed_scratch_.clear();
  if (!departures_.empty()) {
    std::erase_if(active_, [&](PlayerId p) {
      const Round depart = departures_[p.value()];
      if (depart >= 0 && now >= depart) {
        departed_scratch_.push_back(p);
        return true;
      }
      return false;
    });
  }
  return departed_scratch_;
}

void PlayerRoster::remove(PlayerId p) {
  active_.erase(std::remove(active_.begin(), active_.end(), p),
                active_.end());
}

void PlayerRoster::halt_all() {
  active_.clear();
  next_pending_ = pending_.size();
}

bool PlayerRoster::is_active(PlayerId p) const {
  return std::find(active_.begin(), active_.end(), p) != active_.end();
}

}  // namespace acp
