#include "acp/engine/async_engine.hpp"

#include <algorithm>
#include <vector>

#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

PlayerId RoundRobinScheduler::next(const std::vector<PlayerId>& active,
                                   Rng& /*rng*/) {
  ACP_EXPECTS(!active.empty());
  if (cursor_ >= active.size()) cursor_ = 0;
  return active[cursor_++];
}

PlayerId RandomScheduler::next(const std::vector<PlayerId>& active,
                               Rng& rng) {
  ACP_EXPECTS(!active.empty());
  return active[rng.index(active.size())];
}

PlayerId StarveScheduler::next(const std::vector<PlayerId>& active,
                               Rng& /*rng*/) {
  ACP_EXPECTS(!active.empty());
  return active.front();
}

RunResult AsyncEngine::run(const World& world, const Population& population,
                           AsyncProtocol& protocol, Adversary& adversary,
                           Scheduler& scheduler,
                           const AsyncRunConfig& config) {
  ACP_EXPECTS(config.max_steps > 0);

  const std::size_t n = population.num_players();
  Billboard billboard(n, world.num_objects());
  const WorldView world_view(world);

  protocol.initialize(world_view, n);
  adversary.initialize(world, population);

  std::vector<Rng> player_rng;
  player_rng.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    player_rng.push_back(derive_stream(config.seed, p));
  }
  Rng adversary_rng = derive_stream(config.seed, n + 1);
  Rng scheduler_rng = derive_stream(config.seed, n + 2);

  RunResult result;
  result.players.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    result.players[p].honest = population.is_honest(PlayerId{p});
  }

  std::vector<PlayerId> active = population.honest_players();
  std::vector<Post> step_posts;

  if (config.observer != nullptr) {
    config.observer->on_run_begin(RunContext{n, population.num_honest(),
                                             world.num_objects(),
                                             config.seed});
  }
  std::size_t satisfied_honest = 0;

  Count step = 0;
  for (; step < config.max_steps && !active.empty(); ++step) {
    ACP_OBS_TIMED_SCOPE("engine.async.step");
    const Round stamp = static_cast<Round>(step);

    // The adversary may interleave dishonest posts at every step — in the
    // async model dishonest players can be scheduled arbitrarily often, and
    // the one-vote rule on the read side is what limits their influence.
    step_posts.clear();
    adversary.plan_round(
        AdversaryContext{world, population, stamp, billboard}, step_posts,
        adversary_rng);
    for (const Post& post : step_posts) {
      ACP_EXPECTS(!population.is_honest(post.author));
      ACP_EXPECTS(post.round == stamp);
    }

    const PlayerId p = scheduler.next(active, scheduler_rng);
    ACP_ASSERT(std::find(active.begin(), active.end(), p) != active.end());

    const auto choice =
        protocol.choose_probe(p, billboard, player_rng[p.value()]);
    bool halted = false;
    if (choice.has_value()) {
      const ObjectId object = *choice;
      const ProbeOutcome outcome = world.probe(object);

      PlayerStats& stats = result.players[p.value()];
      ++stats.probes;
      stats.cost_paid += outcome.cost;
      if (world.is_good(object)) stats.probed_good = true;

      const bool locally_good = world.model() == GoodnessModel::kLocalTesting
                                    ? outcome.locally_good
                                    : false;
      const StepOutcome out = protocol.on_probe_result(
          p, object, outcome.value, outcome.cost, locally_good,
          player_rng[p.value()]);
      if (out.post.has_value()) {
        step_posts.push_back(Post{p, stamp, out.post->object,
                                  out.post->reported_value,
                                  out.post->positive});
      }
      if (out.halt) {
        stats.satisfied_round = stamp;
        halted = true;
      }
    }

    billboard.commit_round(stamp, std::move(step_posts));
    step_posts = {};
    if (halted) {
      active.erase(std::remove(active.begin(), active.end(), p),
                   active.end());
      ++satisfied_honest;
    }

    if (config.observer != nullptr) {
      config.observer->on_round_end(stamp, billboard, active.size(),
                                    satisfied_honest,
                                    choice.has_value() ? 1 : 0);
    }
  }

  result.rounds_executed = static_cast<Round>(step);
  result.all_honest_satisfied = active.empty();
  result.total_posts = billboard.size();
  if (config.observer != nullptr) config.observer->on_run_end(result);
  return result;
}

}  // namespace acp
