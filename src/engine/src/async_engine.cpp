#include "acp/engine/async_engine.hpp"

#include "acp/engine/kernel.hpp"

namespace acp {

namespace {

/// Kernel stepper for AsyncProtocol: the slice index is the basic-step
/// stamp. Round-begin has no async counterpart (the billboard is passed to
/// choose_probe instead), and churn/halt hooks delegate to the protocol so
/// the LockstepAdapter can redirect them to its virtual round.
class AsyncStepper {
 public:
  explicit AsyncStepper(AsyncProtocol& protocol) : protocol_(&protocol) {}

  void initialize(const WorldView& world, std::size_t num_players) {
    protocol_->initialize(world, num_players);
  }
  [[nodiscard]] Round churn_clock(Round slice) const {
    return protocol_->churn_clock(slice);
  }
  void on_departure(PlayerId p) { protocol_->on_departure(p); }
  void begin_slice(Round /*slice*/, const Billboard& /*billboard*/) {}
  // Never called: OneScheduledPolicy is not an all-active policy. Present
  // to keep the Stepper concept uniform.
  void on_active_roster(Round /*slice*/, std::span<const PlayerId> /*active*/,
                        Rng& /*rng*/) {}
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId p,
                                                     Round /*slice*/,
                                                     const Billboard& billboard,
                                                     Rng& rng) {
    return protocol_->choose_probe(p, billboard, rng);
  }
  StepOutcome on_probe_result(PlayerId p, Round /*slice*/, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) {
    return protocol_->on_probe_result(p, object, value, cost, locally_good,
                                      rng);
  }
  [[nodiscard]] bool wants_halt_all(Round slice) const {
    return protocol_->wants_halt_all(slice);
  }

 private:
  AsyncProtocol* protocol_;
};

}  // namespace

RunResult AsyncEngine::run(const World& world, const Population& population,
                           AsyncProtocol& protocol, Adversary& adversary,
                           Scheduler& scheduler,
                           const AsyncRunConfig& config) {
  KernelSpec spec;
  spec.max_slices = static_cast<Round>(config.max_steps);
  spec.seed = config.seed;
  spec.arrivals = config.arrivals;
  spec.departures = config.departures;
  spec.observer = config.observer;
  spec.slice_timer = "engine.async.step";
  spec.slices_counter = "engine.async.steps";
  spec.probes_counter = "engine.async.probes";
  spec.billboard = config.billboard;
  return run_kernel(world, population, adversary, AsyncStepper(protocol),
                    OneScheduledPolicy(scheduler), spec);
}

}  // namespace acp
