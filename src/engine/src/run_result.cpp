#include "acp/engine/run_result.hpp"

#include <algorithm>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {
template <class Fn>
double honest_mean(const RunResult& r, Fn&& value_of) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const PlayerStats& s : r.players) {
    if (!s.honest) continue;
    sum += value_of(s);
    ++count;
  }
  ACP_EXPECTS(count > 0);
  return sum / static_cast<double>(count);
}
}  // namespace

double RunResult::mean_honest_probes() const {
  return honest_mean(*this, [](const PlayerStats& s) {
    return static_cast<double>(s.probes);
  });
}

Count RunResult::max_honest_probes() const {
  Count best = 0;
  for (const PlayerStats& s : players) {
    if (s.honest) best = std::max(best, s.probes);
  }
  return best;
}

double RunResult::mean_honest_cost() const {
  return honest_mean(*this, [](const PlayerStats& s) { return s.cost_paid; });
}

double RunResult::max_honest_cost() const {
  double best = 0.0;
  for (const PlayerStats& s : players) {
    if (s.honest) best = std::max(best, s.cost_paid);
  }
  return best;
}

Count RunResult::total_honest_probes() const {
  Count total = 0;
  for (const PlayerStats& s : players) {
    if (s.honest) total += s.probes;
  }
  return total;
}

double RunResult::mean_honest_satisfied_round() const {
  return honest_mean(*this, [this](const PlayerStats& s) {
    return static_cast<double>(s.satisfied() ? s.satisfied_round
                                             : rounds_executed);
  });
}

Round RunResult::max_honest_satisfied_round() const {
  Round best = 0;
  for (const PlayerStats& s : players) {
    if (!s.honest) continue;
    best = std::max(best, s.satisfied() ? s.satisfied_round : rounds_executed);
  }
  return best;
}

double RunResult::honest_success_fraction() const {
  return honest_mean(*this, [](const PlayerStats& s) {
    return s.probed_good ? 1.0 : 0.0;
  });
}

}  // namespace acp
