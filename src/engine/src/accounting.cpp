#include "acp/engine/accounting.hpp"

namespace acp {

RunAccounting::RunAccounting(const Population& population,
                             std::size_t num_objects, std::uint64_t seed,
                             RunObserver* observer,
                             const char* slices_counter,
                             const char* probes_counter,
                             std::size_t engine_threads)
    : observer_(observer),
      slices_name_(slices_counter),
      probes_name_(probes_counter) {
  const std::size_t n = population.num_players();
  result_.players.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    result_.players[p].honest = population.is_honest(PlayerId{p});
  }
  if (observer_ != nullptr) {
    observer_->on_run_begin(RunContext{n, population.num_honest(), num_objects,
                                       seed, engine_threads});
  }
}

void RunAccounting::record_probe(PlayerId p, double cost, bool probed_good) {
  stage_probe(p, cost, probed_good);
}

void RunAccounting::record_satisfied(PlayerId p, Round stamp) {
  stage_satisfied(p, stamp);
  fold_satisfied(1);
}

void RunAccounting::stage_probe(PlayerId p, double cost, bool probed_good) {
  PlayerStats& stats = result_.players[p.value()];
  ++stats.probes;
  stats.cost_paid += cost;
  if (probed_good) stats.probed_good = true;
}

void RunAccounting::stage_satisfied(PlayerId p, Round stamp) {
  result_.players[p.value()].satisfied_round = stamp;
}

void RunAccounting::end_slice(Round stamp, const Billboard& billboard,
                              std::size_t active_honest,
                              std::size_t probes_this_slice) {
  if (observer_ != nullptr) {
    observer_->on_round_end(stamp, billboard, active_honest,
                            satisfied_honest_, probes_this_slice);
  }
  if (!obs::MetricsRegistry::enabled() || slices_name_ == nullptr) return;
  if (slices_counter_ == nullptr) {
    slices_counter_ = &obs::MetricsRegistry::global().counter(slices_name_);
    probes_counter_ = &obs::MetricsRegistry::global().counter(probes_name_);
  }
  slices_counter_->add(1);
  probes_counter_->add(probes_this_slice);
}

RunResult RunAccounting::finish(Round slices_executed,
                                bool all_honest_satisfied,
                                const Billboard& billboard) {
  result_.rounds_executed = slices_executed;
  result_.all_honest_satisfied = all_honest_satisfied;
  result_.total_posts = billboard.size();
  if (observer_ != nullptr) observer_->on_run_end(result_);
  return std::move(result_);
}

}  // namespace acp
