#include "acp/engine/lockstep.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

LockstepAdapter::LockstepAdapter(Protocol& inner,
                                 std::size_t expected_participants)
    : inner_(&inner), expected_participants_(expected_participants) {
  ACP_EXPECTS(expected_participants_ >= 1);
}

void LockstepAdapter::initialize(const WorldView& world,
                                 std::size_t num_players) {
  n_ = num_players;
  inner_->initialize(world, num_players);
  virtual_bb_.emplace(num_players, world.num_objects());
  staged_.clear();
  vround_ = 0;
  round_open_ = false;
  ACP_EXPECTS(expected_participants_ <= n_);
  seen_participants_ = 0;
  participant_.assign(n_, false);
  halted_.assign(n_, false);
  local_round_.assign(n_, 0);
  foreign_posted_.assign(n_, false);
  real_cursor_ = 0;
  halted_count_ = 0;
  probes_in_round_ = 0;
}

const Billboard& LockstepAdapter::virtual_billboard() const {
  ACP_EXPECTS(virtual_bb_.has_value());
  return *virtual_bb_;
}

void LockstepAdapter::ingest_real(const Billboard& real) {
  const auto& posts = real.posts();
  for (; real_cursor_ < posts.size(); ++real_cursor_) {
    const Post& post = posts[real_cursor_];
    const std::size_t author = post.author.value();
    if (participant_[author]) continue;  // our own re-published sync posts
    // A non-participant is a player the async scheduler never ran —
    // dishonest. Re-stamp its post into the current virtual round, one
    // per author per round (billboard contract).
    if (foreign_posted_[author]) continue;
    foreign_posted_[author] = true;
    staged_.push_back(Post{post.author, vround_, post.object,
                           post.reported_value, post.positive});
  }
}

void LockstepAdapter::complete_step(PlayerId player) {
  ACP_ASSERT(local_round_[player.value()] == vround_);
  ++local_round_[player.value()];
  close_round_if_done();
}

void LockstepAdapter::close_round_if_done() {
  // A round cannot close while some participant has not even been
  // scheduled for the first time.
  if (seen_participants_ < expected_participants_) return;
  for (std::size_t p = 0; p < n_; ++p) {
    if (participant_[p] && !halted_[p] && local_round_[p] == vround_) {
      return;  // someone still owes this round a step
    }
  }
  virtual_bb_->commit_round(vround_, std::move(staged_));
  staged_ = {};
  if (observer_ != nullptr) {
    // The virtual billboard now includes this round's posts — exactly what
    // a SyncEngine observer sees after the round's commit.
    observer_->on_round_end(vround_, *virtual_bb_,
                            expected_participants_ - halted_count_,
                            halted_count_, probes_in_round_);
  }
  probes_in_round_ = 0;
  ++vround_;
  round_open_ = false;
  foreign_posted_.assign(n_, false);
}

std::optional<ObjectId> LockstepAdapter::choose_probe(
    PlayerId player, const Billboard& billboard, Rng& rng) {
  const std::size_t pv = player.value();
  ACP_EXPECTS(pv < n_);
  if (!participant_[pv]) {
    ACP_EXPECTS(seen_participants_ < expected_participants_);
    participant_[pv] = true;
    ++seen_participants_;
    local_round_[pv] = vround_;
  }
  ingest_real(billboard);

  if (local_round_[pv] > vround_) {
    return std::nullopt;  // ahead of the pack: wait, cost-free
  }

  if (!round_open_) {
    inner_->on_round_begin(vround_, *virtual_bb_);
    round_open_ = true;
  }

  const auto choice = inner_->choose_probe(player, vround_, rng);
  if (!choice.has_value()) {
    // A genuine idle step of the synchronous protocol still consumes the
    // player's round.
    complete_step(player);
    return std::nullopt;
  }
  return choice;
}

StepOutcome LockstepAdapter::on_probe_result(PlayerId player, ObjectId object,
                                             double value, double cost,
                                             bool locally_good, Rng& rng) {
  StepOutcome out = inner_->on_probe_result(player, vround_, object, value,
                                            cost, locally_good, rng);
  if (out.post.has_value()) {
    // Stage for the virtual billboard (virtual-round stamp); the engine
    // also records it on the real billboard with the step stamp.
    staged_.push_back(Post{player, vround_, out.post->object,
                           out.post->reported_value, out.post->positive});
  }
  if (out.halt && !halted_[player.value()]) {
    halted_[player.value()] = true;
    ++halted_count_;
  }
  ++probes_in_round_;
  complete_step(player);
  return out;
}

RunResult LockstepEngine::run(const World& world, const Population& population,
                              Protocol& protocol, Adversary& adversary,
                              Scheduler& scheduler,
                              const LockstepRunConfig& config) {
  LockstepAdapter adapter(protocol, population.num_honest());
  adapter.set_observer(config.observer);
  if (config.observer != nullptr) {
    config.observer->on_run_begin(RunContext{population.num_players(),
                                             population.num_honest(),
                                             world.num_objects(),
                                             config.seed});
  }
  // The async engine gets no observer of its own: the attached observer
  // sees the simulated synchronous run (virtual rounds), not raw steps.
  RunResult result =
      AsyncEngine::run(world, population, adapter, adversary, scheduler,
                       AsyncRunConfig{config.max_steps, config.seed, nullptr});
  if (config.observer != nullptr) config.observer->on_run_end(result);
  return result;
}

}  // namespace acp
