#include "acp/engine/lockstep.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

LockstepAdapter::LockstepAdapter(Protocol& inner,
                                 std::size_t expected_participants)
    : inner_(&inner), expected_participants_(expected_participants) {
  ACP_EXPECTS(expected_participants_ >= 1);
}

void LockstepAdapter::set_participants(const Population& population,
                                       std::span<const Round> arrivals) {
  const std::size_t n = population.num_players();
  ACP_EXPECTS(arrivals.empty() || arrivals.size() == n);
  ACP_EXPECTS(population.num_honest() == expected_participants_);
  declared_participant_.assign(n, false);
  for (std::size_t p = 0; p < n; ++p) {
    declared_participant_[p] = population.is_honest(PlayerId{p});
  }
  declared_arrival_.assign(arrivals.begin(), arrivals.end());
  informed_ = true;
}

void LockstepAdapter::initialize(const WorldView& world,
                                 std::size_t num_players) {
  n_ = num_players;
  inner_->initialize(world, num_players);
  virtual_bb_.emplace(num_players, world.num_objects());
  staged_.clear();
  vround_ = 0;
  round_open_ = false;
  ACP_EXPECTS(expected_participants_ <= n_);
  halted_.assign(n_, false);
  departed_.assign(n_, false);
  foreign_posted_.assign(n_, false);
  arrival_.assign(n_, 0);
  halt_all_ = false;
  if (informed_) {
    ACP_EXPECTS(declared_participant_.size() == n_);
    participant_ = declared_participant_;
    if (!declared_arrival_.empty()) arrival_ = declared_arrival_;
    // Membership is known upfront; nothing is discovered by scheduling.
    seen_participants_ = expected_participants_;
    local_round_ = arrival_;
  } else {
    seen_participants_ = 0;
    participant_.assign(n_, false);
    local_round_.assign(n_, 0);
  }
  real_cursor_ = 0;
  rounds_counter_ = nullptr;
  halted_count_ = 0;
  probes_in_round_ = 0;
}

const Billboard& LockstepAdapter::virtual_billboard() const {
  ACP_EXPECTS(virtual_bb_.has_value());
  return *virtual_bb_;
}

bool LockstepAdapter::live_at(std::size_t p, Round r) const {
  if (!participant_[p] || halted_[p] || departed_[p]) return false;
  return !informed_ || arrival_[p] <= r;
}

std::size_t LockstepAdapter::live_count() const {
  std::size_t count = 0;
  for (std::size_t p = 0; p < n_; ++p) {
    if (live_at(p, vround_)) ++count;
  }
  return count;
}

void LockstepAdapter::ingest_real(const Billboard& real) {
  const auto& posts = real.posts();
  for (; real_cursor_ < posts.size(); ++real_cursor_) {
    const Post& post = posts[real_cursor_];
    const std::size_t author = post.author.value();
    if (participant_[author]) continue;  // our own re-published sync posts
    // A non-participant is a player the async scheduler never ran —
    // dishonest. Re-stamp its post into the current virtual round, one
    // per author per round (billboard contract).
    if (foreign_posted_[author]) continue;
    foreign_posted_[author] = true;
    staged_.push_back(Post{post.author, vround_, post.object,
                           post.reported_value, post.positive});
  }
}

void LockstepAdapter::complete_step(PlayerId player) {
  ACP_ASSERT(local_round_[player.value()] == vround_);
  ++local_round_[player.value()];
  close_round_if_done();
}

void LockstepAdapter::close_round_if_done() {
  for (;;) {
    // A round cannot close while some participant has not even been
    // scheduled for the first time (lazy-discovery mode only).
    if (!informed_ && seen_participants_ < expected_participants_) return;
    for (std::size_t p = 0; p < n_; ++p) {
      if (participant_[p] && !halted_[p] && !departed_[p] &&
          local_round_[p] == vround_) {
        return;  // someone still owes this round a step
      }
    }
    // Mirror the synchronous round order: begin, commit, halt-all check,
    // observer. If nobody stepped this round (auto-closed while waiting
    // for an arrival), the inner protocol still sees on_round_begin so its
    // billboard-driven schedule matches a native synchronous run.
    if (!round_open_) inner_->on_round_begin(vround_, *virtual_bb_);
    // Commit from the staging buffer and keep its capacity for the next
    // virtual round (clear() does not release it).
    virtual_bb_->commit_round_from(vround_, staged_);
    staged_.clear();
    if (!halt_all_ && inner_->wants_halt_all(vround_)) {
      // The synchronous engine would halt every remaining active player
      // after this round's commit; mark them satisfied here so observer
      // counts match, and let wants_halt_all() tell the engine.
      halt_all_ = true;
      for (std::size_t p = 0; p < n_; ++p) {
        if (live_at(p, vround_)) {
          halted_[p] = true;
          ++halted_count_;
        }
      }
    }
    if (observer_ != nullptr) {
      // The virtual billboard now includes this round's posts — exactly
      // what a SyncEngine observer sees after the round's commit.
      observer_->on_round_end(vround_, *virtual_bb_, live_count(),
                              halted_count_, probes_in_round_);
    }
    if (obs::MetricsRegistry::enabled()) {
      if (rounds_counter_ == nullptr) {
        rounds_counter_ =
            &obs::MetricsRegistry::global().counter("engine.lockstep.rounds");
      }
      rounds_counter_->add(1);
    }
    probes_in_round_ = 0;
    ++vround_;
    round_open_ = false;
    foreign_posted_.assign(n_, false);
    if (halt_all_ || !informed_) return;
    // The new round may have nobody in it (everyone present halted or
    // departed) while arrivals are still pending: close it empty so the
    // virtual clock reaches the next arrival, exactly as the synchronous
    // engine's empty rounds pass by.
    bool anyone_here = false;
    bool future_arrival = false;
    for (std::size_t p = 0; p < n_; ++p) {
      if (!participant_[p] || halted_[p] || departed_[p]) continue;
      if (arrival_[p] <= vround_) {
        anyone_here = true;
      } else {
        future_arrival = true;
      }
    }
    if (anyone_here || !future_arrival) return;
  }
}

void LockstepAdapter::on_departure(PlayerId player) {
  const std::size_t pv = player.value();
  ACP_EXPECTS(pv < n_);
  if (departed_[pv]) return;
  departed_[pv] = true;
  if (!informed_ && !participant_[pv]) {
    // Departed before ever being scheduled: it no longer gates closure.
    ACP_EXPECTS(expected_participants_ > 0);
    --expected_participants_;
  }
  // Losing a participant can complete the current virtual round.
  close_round_if_done();
}

std::optional<ObjectId> LockstepAdapter::choose_probe(
    PlayerId player, const Billboard& billboard, Rng& rng) {
  const std::size_t pv = player.value();
  ACP_EXPECTS(pv < n_);
  if (!participant_[pv]) {
    // Lazy discovery: first time the scheduler runs this player. Informed
    // membership covers every player the engine can schedule.
    ACP_EXPECTS(!informed_);
    ACP_EXPECTS(seen_participants_ < expected_participants_);
    participant_[pv] = true;
    ++seen_participants_;
    local_round_[pv] = vround_;
  }
  ingest_real(billboard);

  if (local_round_[pv] > vround_) {
    return std::nullopt;  // ahead of the pack: wait, cost-free
  }

  if (!round_open_) {
    inner_->on_round_begin(vround_, *virtual_bb_);
    round_open_ = true;
  }

  const auto choice = inner_->choose_probe(player, vround_, rng);
  if (!choice.has_value()) {
    // A genuine idle step of the synchronous protocol still consumes the
    // player's round.
    complete_step(player);
    return std::nullopt;
  }
  return choice;
}

StepOutcome LockstepAdapter::on_probe_result(PlayerId player, ObjectId object,
                                             double value, double cost,
                                             bool locally_good, Rng& rng) {
  StepOutcome out = inner_->on_probe_result(player, vround_, object, value,
                                            cost, locally_good, rng);
  if (out.post.has_value()) {
    // Stage for the virtual billboard (virtual-round stamp); the engine
    // also records it on the real billboard with the step stamp.
    staged_.push_back(Post{player, vround_, out.post->object,
                           out.post->reported_value, out.post->positive});
  }
  if (out.halt && !halted_[player.value()]) {
    halted_[player.value()] = true;
    ++halted_count_;
  }
  ++probes_in_round_;
  complete_step(player);
  return out;
}

RunResult LockstepEngine::run(const World& world, const Population& population,
                              Protocol& protocol, Adversary& adversary,
                              Scheduler& scheduler,
                              const LockstepRunConfig& config) {
  LockstepAdapter adapter(protocol, population.num_honest());
  adapter.set_observer(config.observer);
  adapter.set_participants(population, config.arrivals);
  if (config.observer != nullptr) {
    config.observer->on_run_begin(RunContext{population.num_players(),
                                             population.num_honest(),
                                             world.num_objects(),
                                             config.seed});
  }
  AsyncRunConfig async_config;
  async_config.max_steps = config.max_steps;
  async_config.seed = config.seed;
  async_config.arrivals = config.arrivals;
  async_config.departures = config.departures;
  async_config.billboard = config.billboard;
  // The async engine gets no observer of its own: the attached observer
  // sees the simulated synchronous run (virtual rounds), not raw steps.
  RunResult result = AsyncEngine::run(world, population, adapter, adversary,
                                      scheduler, async_config);
  if (config.observer != nullptr) config.observer->on_run_end(result);
  return result;
}

}  // namespace acp
