#include "acp/engine/sync_engine.hpp"

#include <algorithm>
#include <thread>

#include "acp/concurrency/round_gang.hpp"
#include "acp/concurrency/thread_pool.hpp"
#include "acp/engine/kernel.hpp"

namespace acp {

namespace {

/// Kernel stepper for the synchronous Protocol interface: the slice index
/// *is* the round, and churn runs on it directly.
class SyncStepper {
 public:
  explicit SyncStepper(Protocol& protocol) : protocol_(&protocol) {}

  void initialize(const WorldView& world, std::size_t num_players) {
    protocol_->initialize(world, num_players);
  }
  [[nodiscard]] Round churn_clock(Round slice) const { return slice; }
  void on_departure(PlayerId /*p*/) {}
  void begin_slice(Round slice, const Billboard& billboard) {
    protocol_->on_round_begin(slice, billboard);
  }
  void on_active_roster(Round slice, std::span<const PlayerId> active,
                        Rng& rng) {
    protocol_->on_active_roster(slice, active, rng);
  }
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId p, Round slice,
                                                     const Billboard&,
                                                     Rng& rng) {
    return protocol_->choose_probe(p, slice, rng);
  }
  StepOutcome on_probe_result(PlayerId p, Round slice, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) {
    return protocol_->on_probe_result(p, slice, object, value, cost,
                                      locally_good, rng);
  }
  [[nodiscard]] bool wants_halt_all(Round slice) const {
    return protocol_->wants_halt_all(slice);
  }

 private:
  Protocol* protocol_;
};

}  // namespace

RunResult SyncEngine::run(const World& world, const Population& population,
                          Protocol& protocol, Adversary& adversary,
                          const SyncRunConfig& config) {
  KernelSpec spec;
  spec.max_slices = config.max_rounds;
  spec.seed = config.seed;
  spec.arrivals = config.arrivals;
  spec.departures = config.departures;
  spec.observer = config.observer;
  spec.slice_timer = "engine.sync.round";
  spec.slices_counter = "engine.sync.rounds";
  spec.probes_counter = "engine.sync.probes";
  spec.billboard = config.billboard;

  const std::size_t threads = ThreadPool::resolve(config.engine_threads);
  if (threads > 1 && protocol.parallel_choose_safe()) {
    spec.engine_threads = threads;
    // The kernel thread is gang lane 0, so `threads` lanes total. Workers
    // persist across rounds, parked on the gang's round barrier — no
    // per-round task allocation or queue handoff.
    RoundGang gang(threads - 1);
    return run_kernel(world, population, adversary, SyncStepper(protocol),
                      ParallelAllActivePolicy(gang), spec);
  }
  return run_kernel(world, population, adversary, SyncStepper(protocol),
                    AllActivePolicy{}, spec);
}

}  // namespace acp
