#include "acp/engine/sync_engine.hpp"

#include <algorithm>
#include <vector>

#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

RunResult SyncEngine::run(const World& world, const Population& population,
                          Protocol& protocol, Adversary& adversary,
                          const SyncRunConfig& config) {
  ACP_EXPECTS(config.max_rounds > 0);
  ACP_EXPECTS(config.arrivals.empty() ||
              config.arrivals.size() == population.num_players());
  ACP_EXPECTS(config.departures.empty() ||
              config.departures.size() == population.num_players());

  const std::size_t n = population.num_players();
  Billboard billboard(n, world.num_objects());
  const WorldView world_view(world);

  protocol.initialize(world_view, n);
  adversary.initialize(world, population);

  // Independent streams: one per player plus one for the adversary. Streams
  // are derived, not sequentially drawn, so the adversary cannot influence
  // honest randomness (and vice versa).
  std::vector<Rng> player_rng;
  player_rng.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    player_rng.push_back(derive_stream(config.seed, p));
  }
  Rng adversary_rng = derive_stream(config.seed, n + 1);

  RunResult result;
  result.players.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    result.players[p].honest = population.is_honest(PlayerId{p});
  }

  // Split honest players into already-active and yet-to-arrive.
  std::vector<PlayerId> active;
  std::vector<PlayerId> pending;  // sorted by arrival (stable by id)
  for (PlayerId p : population.honest_players()) {
    const Round arrival =
        config.arrivals.empty() ? 0 : config.arrivals[p.value()];
    ACP_EXPECTS(arrival >= 0);
    if (arrival == 0) {
      active.push_back(p);
    } else {
      pending.push_back(p);
    }
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [&](PlayerId a, PlayerId b) {
                     return config.arrivals[a.value()] <
                            config.arrivals[b.value()];
                   });
  std::size_t next_pending = 0;
  std::size_t satisfied_honest = 0;

  if (config.observer != nullptr) {
    config.observer->on_run_begin(RunContext{n, population.num_honest(),
                                             world.num_objects(),
                                             config.seed});
  }

  std::vector<Post> round_posts;

  Round round = 0;
  for (; round < config.max_rounds &&
         (!active.empty() || next_pending < pending.size());
       ++round) {
    ACP_OBS_TIMED_SCOPE("engine.sync.round");
    // Admit arrivals due this round.
    while (next_pending < pending.size() &&
           config.arrivals[pending[next_pending].value()] <= round) {
      active.push_back(pending[next_pending]);
      ++next_pending;
    }
    // Fail-stop departures: crash before taking this round's step.
    if (!config.departures.empty()) {
      std::erase_if(active, [&](PlayerId p) {
        const Round depart = config.departures[p.value()];
        return depart >= 0 && round >= depart;
      });
    }

    protocol.on_round_begin(round, billboard);

    round_posts.clear();
    adversary.plan_round(
        AdversaryContext{world, population, round, billboard}, round_posts,
        adversary_rng);
    for (const Post& post : round_posts) {
      // Billboard guarantees: the adversary speaks only for dishonest
      // players and cannot backdate.
      ACP_EXPECTS(!population.is_honest(post.author));
      ACP_EXPECTS(post.round == round);
    }

    std::size_t probes_this_round = 0;
    std::vector<PlayerId> still_active;
    still_active.reserve(active.size());
    for (PlayerId p : active) {
      const auto choice =
          protocol.choose_probe(p, round, player_rng[p.value()]);
      if (!choice.has_value()) {
        still_active.push_back(p);  // idle step: no probe, no cost
        continue;
      }
      const ObjectId object = *choice;
      const ProbeOutcome outcome = world.probe(object);
      ++probes_this_round;

      PlayerStats& stats = result.players[p.value()];
      ++stats.probes;
      stats.cost_paid += outcome.cost;
      if (world.is_good(object)) stats.probed_good = true;

      // Local testability is a property of the object model (§2.2): under
      // TopBeta a prober cannot tell good from bad, so the flag is masked.
      const bool locally_good = world.model() == GoodnessModel::kLocalTesting
                                    ? outcome.locally_good
                                    : false;
      const StepOutcome step = protocol.on_probe_result(
          p, round, object, outcome.value, outcome.cost, locally_good,
          player_rng[p.value()]);
      if (step.post.has_value()) {
        round_posts.push_back(Post{p, round, step.post->object,
                                   step.post->reported_value,
                                   step.post->positive});
      }
      if (step.halt) {
        stats.satisfied_round = round;
        ++satisfied_honest;
      } else {
        still_active.push_back(p);
      }
    }

    billboard.commit_round(round, std::move(round_posts));
    round_posts = {};
    active = std::move(still_active);

    if (protocol.wants_halt_all(round)) {
      for (PlayerId p : active) {
        result.players[p.value()].satisfied_round = round;
        ++satisfied_honest;
      }
      active.clear();
      next_pending = pending.size();
    }

    if (config.observer != nullptr) {
      config.observer->on_round_end(round, billboard, active.size(),
                                    satisfied_honest, probes_this_round);
    }
    if (obs::MetricsRegistry::enabled()) {
      static obs::Counter& rounds_counter =
          obs::MetricsRegistry::global().counter("engine.sync.rounds");
      static obs::Counter& probes_counter =
          obs::MetricsRegistry::global().counter("engine.sync.probes");
      rounds_counter.add(1);
      probes_counter.add(probes_this_round);
    }
  }

  result.rounds_executed = round;
  result.all_honest_satisfied =
      active.empty() && next_pending >= pending.size();
  result.total_posts = billboard.size();
  if (config.observer != nullptr) config.observer->on_run_end(result);
  return result;
}

}  // namespace acp
