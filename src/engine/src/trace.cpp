#include "acp/engine/trace.hpp"

#include <ostream>

namespace acp {

void TraceRecorder::on_round_end(Round round, const Billboard& billboard,
                                 std::size_t active_honest,
                                 std::size_t satisfied_honest,
                                 std::size_t probes_this_round) {
  rows_.push_back(TraceRow{round, active_honest, satisfied_honest,
                           probes_this_round, billboard.size()});
}

Round TraceRecorder::round_reaching_satisfied(std::size_t count) const {
  for (const TraceRow& row : rows_) {
    if (row.satisfied_honest >= count) return row.round;
  }
  return -1;
}

std::size_t TraceRecorder::total_probes() const {
  std::size_t total = 0;
  for (const TraceRow& row : rows_) total += row.probes;
  return total;
}

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "round,active_honest,satisfied_honest,probes,billboard_posts\n";
  for (const TraceRow& row : rows_) {
    os << row.round << ',' << row.active_honest << ','
       << row.satisfied_honest << ',' << row.probes << ','
       << row.billboard_posts << '\n';
  }
}

}  // namespace acp
