#include "acp/engine/scheduler.hpp"

#include <algorithm>

#include "acp/util/contracts.hpp"

namespace acp {

PlayerId RoundRobinScheduler::next(const std::vector<PlayerId>& active,
                                   Rng& /*rng*/) {
  ACP_EXPECTS(!active.empty());
  for (;;) {
    if (cycle_.empty()) cycle_.assign(active.begin(), active.end());
    const PlayerId p = cycle_.front();
    cycle_.pop_front();
    // Players that halted or departed since the cycle snapshot are
    // skipped; everyone else keeps its turn.
    if (std::find(active.begin(), active.end(), p) != active.end()) {
      return p;
    }
  }
}

PlayerId RandomScheduler::next(const std::vector<PlayerId>& active,
                               Rng& rng) {
  ACP_EXPECTS(!active.empty());
  return active[rng.index(active.size())];
}

PlayerId StarveScheduler::next(const std::vector<PlayerId>& active,
                               Rng& /*rng*/) {
  ACP_EXPECTS(!active.empty());
  return active.front();
}

}  // namespace acp
