// PlayerRoster — the honest-player membership state of one run.
//
// Owns the three churn sets of the execution model: *active* players
// (searching right now), *pending* players (arrival round not reached),
// and implicitly the departed/halted ones (no longer tracked). Arrival
// admission and fail-stop departures are driven by a caller-supplied
// clock value — the round number in the synchronous engine, the step
// stamp in the asynchronous engine, and the virtual round under the
// lockstep synchronizer — so every engine gets identical churn semantics
// from the single implementation.
//
// Ordering contract: `active()` preserves admission order (honest-id
// order for round-0 players, then arrivals in arrival order); removals
// keep the relative order. Schedulers and the synchronous step pass both
// rely on this for reproducibility.
#pragma once

#include <span>
#include <vector>

#include "acp/util/types.hpp"
#include "acp/world/population.hpp"

namespace acp {

class PlayerRoster {
 public:
  /// `arrivals` / `departures` are indexed by PlayerId and may be empty
  /// (nobody arrives late / nobody departs). Only honest players' entries
  /// are used. Non-empty vectors must have one entry per player; honest
  /// arrivals must be >= 0; departures use -1 for "never".
  PlayerRoster(const Population& population, std::span<const Round> arrivals,
               std::span<const Round> departures);

  /// Move pending players whose arrival round is <= now into the active
  /// set (in arrival order, stable by id).
  void admit_arrivals(Round now);

  /// Fail-stop churn: remove active players whose departure round is
  /// <= now (a player crash-stops *before* taking that round's step).
  /// Returns the players removed by this call, in roster order.
  const std::vector<PlayerId>& apply_departures(Round now);

  /// Remove one active player (it halted satisfied). Preserves order.
  void remove(PlayerId p);

  /// Replace the whole active set (the synchronous step pass rebuilds it
  /// while iterating). Swaps, so `next` holds the old set afterwards.
  void swap_active(std::vector<PlayerId>& next) { active_.swap(next); }

  /// Everyone stops: clears the active set and drops pending arrivals
  /// (used by Protocol::wants_halt_all horizons).
  void halt_all();

  [[nodiscard]] const std::vector<PlayerId>& active() const noexcept {
    return active_;
  }
  [[nodiscard]] bool is_active(PlayerId p) const;
  [[nodiscard]] bool has_pending() const noexcept {
    return next_pending_ < pending_.size();
  }
  /// True when no player is active and none will ever arrive — the run
  /// is over (all_honest_satisfied in RunResult terms).
  [[nodiscard]] bool done() const noexcept {
    return active_.empty() && !has_pending();
  }

 private:
  std::span<const Round> arrivals_;
  std::span<const Round> departures_;
  std::vector<PlayerId> active_;
  std::vector<PlayerId> pending_;  // sorted by arrival (stable by id)
  std::size_t next_pending_ = 0;
  std::vector<PlayerId> departed_scratch_;
};

}  // namespace acp
