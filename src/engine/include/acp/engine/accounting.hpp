// RunAccounting — per-run measurement state shared by every engine.
//
// Owns the RunResult under assembly (PlayerStats, satisfied counts),
// drives the RunObserver callbacks with identical semantics everywhere,
// and emits the `engine.<name>.<slices>` / `engine.<name>.probes`
// counters into the global metrics registry when collection is enabled.
// Engines report events (probe executed, player satisfied, slice ended)
// and never touch stats, observers, or counters directly.
#pragma once

#include <cstdint>

#include "acp/billboard/billboard.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/obs/metrics.hpp"
#include "acp/util/types.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

class RunAccounting {
 public:
  /// Fires observer->on_run_begin. `slices_counter` / `probes_counter`
  /// name the metrics emitted per slice (nullptr disables emission);
  /// `engine_threads` is the resolved thread count for RunContext.
  RunAccounting(const Population& population, std::size_t num_objects,
                std::uint64_t seed, RunObserver* observer,
                const char* slices_counter, const char* probes_counter,
                std::size_t engine_threads = 1);

  /// One probe executed by player p (cost and ground-truth goodness).
  /// Sequential spelling of stage_probe — identical effect.
  void record_probe(PlayerId p, double cost, bool probed_good);

  /// Player p halted satisfied at time `stamp` (round or step).
  /// Sequential spelling of stage_satisfied + fold_satisfied(1).
  void record_satisfied(PlayerId p, Round stamp);

  // Staging half for the parallel round kernel: stage_* touch only player
  // p's PlayerStats slot, so shard workers may call them concurrently for
  // *distinct* players; the shared satisfied total is folded afterwards on
  // the kernel thread, in canonical shard order, via fold_satisfied.

  /// Probe accounting into p's slot only — safe across distinct players.
  void stage_probe(PlayerId p, double cost, bool probed_good);

  /// Satisfied stamp into p's slot only; does NOT bump the shared count.
  void stage_satisfied(PlayerId p, Round stamp);

  /// Fold a shard's staged-satisfied count into the shared total
  /// (kernel thread only).
  void fold_satisfied(std::size_t count) { satisfied_honest_ += count; }

  [[nodiscard]] std::size_t satisfied_honest() const noexcept {
    return satisfied_honest_;
  }

  /// One slice (round or step) finished and its posts committed:
  /// observer on_round_end plus metrics counters.
  void end_slice(Round stamp, const Billboard& billboard,
                 std::size_t active_honest, std::size_t probes_this_slice);

  /// Final assembly: fires observer->on_run_end and returns the result.
  [[nodiscard]] RunResult finish(Round slices_executed,
                                 bool all_honest_satisfied,
                                 const Billboard& billboard);

 private:
  RunResult result_;
  RunObserver* observer_;
  const char* slices_name_;
  const char* probes_name_;
  obs::Counter* slices_counter_ = nullptr;  // resolved lazily when enabled
  obs::Counter* probes_counter_ = nullptr;
  std::size_t satisfied_honest_ = 0;
};

}  // namespace acp
