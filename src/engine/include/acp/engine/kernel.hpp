// RunKernel — the single simulation loop behind every engine.
//
// The paper describes one execution semantics viewed through different
// schedulers: Theorem 4's synchronous rounds, the §6 asynchronous
// round-robin baseline, and the §1.2 lockstep synchronizer. The kernel
// owns everything those views share — the per-run invariants:
//
//  * seeded RNG stream derivation (EngineStreams: players, adversary,
//    scheduler);
//  * honest-player membership under churn (PlayerRoster: arrivals,
//    fail-stop departures, halts);
//  * stats, observer callbacks and metrics emission (RunAccounting);
//  * adversary post validation and the atomic billboard commit;
//  * the honest step body: probe, cost accounting, local-testability
//    masking, post staging, halt handling, wants_halt_all horizons.
//
// Engines are thin configurations: a *Stepper* adapts the protocol
// interface (synchronous Protocol or AsyncProtocol) and a *SchedulePolicy*
// decides who steps in a slice — every active player per slice for the
// synchronous engine, one scheduler-picked player per slice for the
// asynchronous one. A "slice" is the kernel's commit unit: a round in the
// synchronous engine, a basic step in the asynchronous one.
//
// The honest step is split into three phases so a policy can overlap
// everything per-player across workers and keep only a cheap fold on the
// kernel thread:
//
//  * evaluate(p) -> ProbeEval — choose_probe plus the World probe and
//    local-testability masking. Touches only player p's RNG stream and
//    state that is read-only for the duration of the slice.
//  * stage(p, eval, sink) -> halted? — the order-independent half of the
//    old apply: on_probe_result, per-player accounting slots
//    (RunAccounting::stage_*), the post draft and the halt decision, all
//    accumulated into the caller-owned StageSink. Touches only player p's
//    RNG stream and per-player-indexed protocol/accounting state.
//  * fold(sink) — the order-dependent tail: shared slice totals and the
//    honest post sequence. Always runs on the kernel thread, folding
//    sinks in canonical order.
//
// Sequential policies run stage(p, evaluate(p), sink) per player into one
// sink and fold it once — exactly the historical interleaved order.
// ParallelAllActivePolicy splits the roster into contiguous count-only
// shards (the same determinism recipe as the sharded trial driver),
// lanes of a persistent RoundGang claim shards and run evaluate+stage
// into per-shard sinks, and the kernel thread folds the sinks in shard
// order — which reconstructs roster order, so the RunResult is
// bit-identical to the sequential policy at any thread count *when the
// protocol's parallel_choose_safe() contract holds* (both per-player
// hooks confined to per-player state; see protocol.hpp).
//
// Stepper concept:
//   void initialize(const WorldView&, std::size_t n);
//   Round churn_clock(Round slice);          // clock arrivals/departures run on
//   void on_departure(PlayerId);             // fail-stop notification
//   void begin_slice(Round slice, const Billboard&);
//   void on_active_roster(Round slice, std::span<const PlayerId>, Rng&);
//                                            // all-active policies only
//   std::optional<ObjectId> choose_probe(PlayerId, Round slice,
//                                        const Billboard&, Rng&);
//   StepOutcome on_probe_result(PlayerId, Round slice, ObjectId, double value,
//                               double cost, bool locally_good, Rng&);
//   bool wants_halt_all(Round slice);
//
// SchedulePolicy concept:
//   static constexpr bool kAllActive;        // steps every active player?
//   template <class Evaluate, class Stage, class Fold>
//   void run_slice(PlayerRoster&, Rng& scheduler_rng,
//                  Evaluate&& evaluate,    // evaluate(p) -> ProbeEval
//                  Stage&& stage,          // stage(p, eval, sink) -> halted?
//                  Fold&& fold);           // fold(sink), kernel thread,
//                                          // canonical order
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <new>
#include <optional>
#include <span>
#include <type_traits>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/service.hpp"
#include "acp/concurrency/round_gang.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/profiler.hpp"
#include "acp/engine/accounting.hpp"
#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/roster.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/engine/scheduler.hpp"
#include "acp/engine/streams.hpp"
#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

/// Engine-independent per-run parameters plus the engine's observability
/// names (a timer for the slice scope and the two emitted counters).
struct KernelSpec {
  Round max_slices = 0;
  std::uint64_t seed = 1;
  std::span<const Round> arrivals;
  std::span<const Round> departures;
  RunObserver* observer = nullptr;
  const char* slice_timer = nullptr;
  const char* slices_counter = nullptr;
  const char* probes_counter = nullptr;
  /// Engine threads actually driving this run (after the 0 -> hardware
  /// resolution and the parallel_choose_safe fallback): 1 for every
  /// sequential policy. Surfaced to observers via RunContext so traces
  /// and reports record what really ran — NOT part of RunResult, which
  /// stays bit-identical across thread counts.
  std::size_t engine_threads = 1;
  /// Billboard backend for the run. Null (the default) means the kernel
  /// owns a fresh InProcessBillboard — the historical zero-overhead
  /// configuration. A non-null service must be freshly opened (empty
  /// board) with dimensions matching the run; the kernel commits through
  /// it and reads its board() view, so in-process and remote backends
  /// produce bit-identical results.
  BillboardService* billboard = nullptr;
};

/// The read-only half of one player step: the chosen probe (if any) and
/// the World's answer, produced by a policy's evaluate phase and consumed
/// by its staged-apply phase.
struct ProbeEval {
  std::optional<ObjectId> object;  ///< nullopt: the player idles this slice
  double value = 0.0;
  double cost = 0.0;
  bool good = false;          ///< ground truth (for accounting)
  bool locally_good = false;  ///< masked by the goodness model (§2.2)
};

/// Alignment for per-shard staging state. PR 5's parallel policy wrote
/// adjacent ProbeEval slots of one shared vector from different workers
/// at every shard boundary; padding each shard's state to the destructive
/// interference size keeps concurrent writers on disjoint cache lines
/// (measured on the PR 5 layout: boundary-slot ping-pong was one of the
/// reasons t8 ran no faster than t1 — see docs/architecture.md,
/// "Where the 8-thread time goes").
#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
// GCC flags every use of the constant as ABI-sensitive (-Winterference-
// size); the value is only a padding hint here, never part of an ABI.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kStageSinkAlign =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kStageSinkAlign = 64;
#endif

/// Per-shard staging buffer for the staged half of apply. Exactly one
/// lane writes a given sink per slice (shards are claimed atomically);
/// the kernel thread folds sinks in canonical shard order afterwards.
/// Buffers keep their capacity across slices.
struct alignas(kStageSinkAlign) StageSink {
  std::vector<Post> posts;          ///< honest post drafts, shard order
  std::vector<PlayerId> survivors;  ///< non-halted players, shard order
  std::uint64_t probes = 0;
  std::uint64_t satisfied = 0;

  void reset() noexcept {
    posts.clear();
    survivors.clear();
    probes = 0;
    satisfied = 0;
  }
};

namespace kernel_detail {

[[nodiscard]] inline std::uint64_t ns_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace kernel_detail

/// Steps every active player once per slice — the synchronous round.
class AllActivePolicy {
 public:
  static constexpr bool kAllActive = true;

  template <class Evaluate, class Stage, class Fold>
  void run_slice(PlayerRoster& roster, Rng& /*scheduler_rng*/,
                 Evaluate&& evaluate, Stage&& stage, Fold&& fold) {
    still_active_.clear();
    still_active_.reserve(roster.active().size());
    sink_.reset();
    if (obs::PhaseProfiler::enabled()) {
      run_slice_profiled(roster, evaluate, stage);
    } else {
      for (PlayerId p : roster.active()) {
        if (!stage(p, evaluate(p), sink_)) {
          still_active_.push_back(p);  // survivors keep order
        }
      }
      roster.swap_active(still_active_);
    }
    fold(sink_);
  }

 private:
  /// Profiled variant: identical step order, with the evaluate and
  /// staged-apply halves of every step clocked separately so the
  /// sequential baseline shows up in the same phase breakdown as the
  /// parallel kernel.
  template <class Evaluate, class Stage>
  void run_slice_profiled(PlayerRoster& roster, Evaluate&& evaluate,
                          Stage&& stage) {
    using Clock = std::chrono::steady_clock;
    std::uint64_t evaluate_ns = 0;
    std::uint64_t apply_ns = 0;
    for (PlayerId p : roster.active()) {
      const auto before = Clock::now();
      const ProbeEval eval = evaluate(p);
      const auto evaluated = Clock::now();
      const bool halted = stage(p, eval, sink_);
      apply_ns += kernel_detail::ns_between(evaluated, Clock::now());
      evaluate_ns += kernel_detail::ns_between(before, evaluated);
      if (!halted) {
        still_active_.push_back(p);  // survivors keep order
      }
    }
    roster.swap_active(still_active_);
    obs::PhaseProfiler::global().record_sequential_round(evaluate_ns,
                                                         apply_ns);
  }

  StageSink sink_;
  std::vector<PlayerId> still_active_;
};

/// The synchronous round fanned out over a persistent RoundGang: the
/// active roster splits into contiguous shards (by count only — the same
/// determinism recipe as the sharded trial driver), gang lanes claim
/// shards from an atomic cursor and run evaluate + staged apply into the
/// shard's StageSink, and the kernel thread folds the sinks in shard
/// order after the round barrier. Requires the stepper's per-player hooks
/// to be concurrency safe across players (Protocol::parallel_choose_safe);
/// engines fall back to AllActivePolicy when they are not.
class ParallelAllActivePolicy {
 public:
  static constexpr bool kAllActive = true;

  explicit ParallelAllActivePolicy(RoundGang& gang) : gang_(&gang) {}

  template <class Evaluate, class Stage, class Fold>
  void run_slice(PlayerRoster& roster, Rng& /*scheduler_rng*/,
                 Evaluate&& evaluate, Stage&& stage, Fold&& fold) {
    using Clock = std::chrono::steady_clock;
    const std::span<const PlayerId> active = roster.active();
    const std::size_t count = active.size();
    still_active_.clear();
    still_active_.reserve(count);
    if (count == 0) {
      roster.swap_active(still_active_);
      return;
    }

    // Oversubscribe shards over lanes: idle lanes (including the leader,
    // which runs lane 0 inline instead of parking) claim work from the
    // shared cursor, so the barrier waits on at most one shard-sized
    // tail per lane rather than a static split's slowest straggler.
    // Which lane runs a shard never matters for results: a shard's sink
    // depends only on the shard's players, and the fold order is fixed.
    const std::size_t shards = std::min(count, gang_->lanes() * kShardsPerLane);

    const bool profiled = obs::PhaseProfiler::enabled();
    // The kernel thread's attribution sink, handed into the lanes so
    // reads metered inside evaluate()/stage() land in this run's
    // per-player slots. Null when bandwidth metering is off.
    obs::BandwidthMeter::Sink* const io_sink =
        obs::BandwidthMeter::current_sink();

    if (sinks_.size() < shards) sinks_.resize(shards);
    errors_.assign(shards, nullptr);
    shard_spans_.assign(profiled ? shards : 0, obs::ShardSpan{});
    next_shard_.store(0, std::memory_order_relaxed);

    const auto released = profiled ? Clock::now() : Clock::time_point{};

    auto work = [&](std::size_t /*lane*/) {
      const obs::BandwidthMeter::SinkScope io_scope(io_sink);
      bool first_claim = true;
      for (;;) {
        const std::size_t s =
            next_shard_.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards) return;
        StageSink& sink = sinks_[s];
        sink.reset();
        const std::size_t begin = s * count / shards;
        const std::size_t end = (s + 1) * count / shards;
        try {
          if (profiled) {
            // shard_spans_[s] has a single writer (the claiming lane) and
            // is read on the kernel thread only after the round barrier.
            const auto started = Clock::now();
            if (first_claim) {
              shard_spans_[s].wake_ns =
                  kernel_detail::ns_between(released, started);
            }
            std::uint64_t evaluate_ns = 0;
            std::uint64_t stage_ns = 0;
            for (std::size_t i = begin; i < end; ++i) {
              const PlayerId p = active[i];
              const auto before = Clock::now();
              const ProbeEval eval = evaluate(p);
              const auto evaluated = Clock::now();
              const bool halted = stage(p, eval, sink);
              stage_ns += kernel_detail::ns_between(evaluated, Clock::now());
              evaluate_ns += kernel_detail::ns_between(before, evaluated);
              if (!halted) sink.survivors.push_back(p);
            }
            shard_spans_[s].evaluate_ns = evaluate_ns;
            shard_spans_[s].stage_ns = stage_ns;
          } else {
            for (std::size_t i = begin; i < end; ++i) {
              const PlayerId p = active[i];
              if (!stage(p, evaluate(p), sink)) sink.survivors.push_back(p);
            }
          }
        } catch (...) {
          errors_[s] = std::current_exception();  // gang jobs must not throw
        }
        first_claim = false;
      }
    };
    using Work = decltype(work);

    gang_->begin_round(&work, [](void* ctx, std::size_t lane) {
      (*static_cast<Work*>(ctx))(lane);
    });
    work(0);  // the leader is lane 0
    const auto barrier_entered = profiled ? Clock::now() : Clock::time_point{};
    gang_->finish_round();
    const std::uint64_t barrier_ns =
        profiled ? kernel_detail::ns_between(barrier_entered, Clock::now())
                 : 0;

    for (const std::exception_ptr& error : errors_) {
      if (error) std::rethrow_exception(error);
    }

    // Canonical-order merge: folding sinks in shard order reconstructs
    // roster order (shards are contiguous count-only splits), so shared
    // totals, the honest post sequence and the survivor list come out
    // bit-identical to the sequential policy at any thread count.
    const auto merge_started = profiled ? Clock::now() : Clock::time_point{};
    for (std::size_t s = 0; s < shards; ++s) {
      fold(sinks_[s]);
      still_active_.insert(still_active_.end(), sinks_[s].survivors.begin(),
                           sinks_[s].survivors.end());
    }
    roster.swap_active(still_active_);
    if (profiled) {
      obs::PhaseProfiler::global().record_parallel_round(
          shard_spans_, barrier_ns,
          kernel_detail::ns_between(merge_started, Clock::now()));
    }
  }

 private:
  /// Claimable shards per lane. 4 keeps the barrier tail at ~1/4 of a
  /// static split's while the per-shard claim cost (one uncontended
  /// fetch_add) stays invisible next to thousands of player steps.
  static constexpr std::size_t kShardsPerLane = 4;

  RoundGang* gang_;
  std::vector<StageSink> sinks_;
  std::vector<std::exception_ptr> errors_;
  std::vector<obs::ShardSpan> shard_spans_;
  std::vector<PlayerId> still_active_;
  /// Own cache line: every lane hammers this cursor while the leader's
  /// other members stay read-mostly.
  alignas(kStageSinkAlign) std::atomic<std::size_t> next_shard_{0};
};

/// One scheduler-picked player per slice — the asynchronous basic step.
class OneScheduledPolicy {
 public:
  static constexpr bool kAllActive = false;

  explicit OneScheduledPolicy(Scheduler& scheduler) : scheduler_(&scheduler) {}

  template <class Evaluate, class Stage, class Fold>
  void run_slice(PlayerRoster& roster, Rng& scheduler_rng,
                 Evaluate&& evaluate, Stage&& stage, Fold&& fold) {
    // All current players may have halted while arrivals are still
    // pending: time passes (the adversary already posted) but nobody
    // moves.
    if (roster.active().empty()) return;
    const PlayerId p = scheduler_->next(roster.active(), scheduler_rng);
    ACP_ASSERT(roster.is_active(p));
    sink_.reset();
    const bool halted = stage(p, evaluate(p), sink_);
    fold(sink_);
    if (halted) roster.remove(p);
  }

 private:
  Scheduler* scheduler_;
  StageSink sink_;
};

namespace kernel_detail {

/// Billboard guarantees on fabricated posts: the adversary speaks only
/// for dishonest players and cannot backdate.
inline void validate_adversary_posts(const Population& population,
                                     const std::vector<Post>& posts,
                                     Round slice) {
  for (const Post& post : posts) {
    ACP_EXPECTS(!population.is_honest(post.author));
    ACP_EXPECTS(post.round == slice);
  }
}

}  // namespace kernel_detail

template <class Stepper, class SchedulePolicy>
RunResult run_kernel(const World& world, const Population& population,
                     Adversary& adversary, Stepper&& stepper,
                     SchedulePolicy&& policy, const KernelSpec& spec) {
  ACP_EXPECTS(spec.max_slices > 0);

  const std::size_t n = population.num_players();
  // The slice loop reads the board through a stable local view and
  // commits through the service, so a remote backend slots in without
  // touching any per-slice code (see BillboardService's visibility
  // contract).
  std::optional<InProcessBillboard> local_board;
  BillboardService* const board_service = [&]() -> BillboardService* {
    if (spec.billboard != nullptr) return spec.billboard;
    local_board.emplace(n, world.num_objects());
    return &*local_board;
  }();
  ACP_EXPECTS(board_service->num_players() == n);
  ACP_EXPECTS(board_service->num_objects() == world.num_objects());
  // A reused board would leak posts from another run into this one's
  // visibility window.
  ACP_EXPECTS(board_service->size() == 0);
  const Billboard& billboard = board_service->board();
  const WorldView world_view(world);

  stepper.initialize(world_view, n);
  adversary.initialize(world, population);

  EngineStreams streams(spec.seed, n);
  PlayerRoster roster(population, spec.arrivals, spec.departures);
  RunAccounting accounting(population, world.num_objects(), spec.seed,
                           spec.observer, spec.slices_counter,
                           spec.probes_counter, spec.engine_threads);

  // Per-run, per-player bandwidth attribution (no-op when metering is
  // disabled). Folded into the global meter when the run finishes.
  const obs::BandwidthMeter::RunScope io_run(n);

  obs::TimerStat& slice_timer =
      obs::MetricsRegistry::global().timer(spec.slice_timer);

  std::vector<Post> slice_posts;

  Round slice = 0;
  for (; slice < spec.max_slices && !roster.done(); ++slice) {
    const obs::ScopedTimer timed(slice_timer);

    // Churn runs on the stepper's clock (round == slice for sync, step
    // stamp for async, virtual round under lockstep). Iterate to a
    // fixpoint: under lockstep, a departure can close the virtual round
    // and advance the clock, making further churn due within this slice.
    Round now = stepper.churn_clock(slice);
    for (;;) {
      roster.admit_arrivals(now);
      for (PlayerId p : roster.apply_departures(now)) stepper.on_departure(p);
      const Round after = stepper.churn_clock(slice);
      if (after == now) break;
      now = after;
    }

    stepper.begin_slice(slice, billboard);
    if constexpr (std::remove_cvref_t<SchedulePolicy>::kAllActive) {
      // All-active policies reveal the round's roster before any
      // evaluation — the hook protocols use to pre-partition shared
      // per-round choices so their per-player hooks become parallel-safe
      // (see Protocol::on_active_roster). The scheduler stream is unused
      // by these policies otherwise, so consuming it here is
      // deterministic at any thread count.
      stepper.on_active_roster(slice, roster.active(), streams.scheduler);
    }

    slice_posts.clear();
    adversary.plan_round(
        AdversaryContext{world, population, slice, billboard}, slice_posts,
        streams.adversary);
    kernel_detail::validate_adversary_posts(population, slice_posts, slice);

    std::size_t probes_this_slice = 0;

    // Phase 1 — the read-only half of the step: may run concurrently
    // across players under ParallelAllActivePolicy (distinct RNG streams,
    // immutable World, slice-frozen billboard and protocol tables).
    const auto evaluate = [&](PlayerId p) -> ProbeEval {
      ProbeEval eval;
      // Billboard/ledger reads inside choose_probe are this player's
      // traffic (one relaxed load when metering is off).
      const obs::BandwidthMeter::PlayerScope io_player(p);
      const auto choice =
          stepper.choose_probe(p, slice, billboard, streams.player(p));
      if (!choice.has_value()) {
        return eval;  // idle step: no probe, no cost
      }
      const ObjectId object = *choice;
      const ProbeOutcome outcome = world.probe(object);
      eval.object = object;
      eval.value = outcome.value;
      eval.cost = outcome.cost;
      eval.good = world.is_good(object);
      // Local testability is a property of the object model (§2.2): under
      // TopBeta a prober cannot tell good from bad, so the flag is masked.
      eval.locally_good = world.model() == GoodnessModel::kLocalTesting
                              ? outcome.locally_good
                              : false;
      return eval;
    };

    // Phase 2 — the staged half of apply: order-independent per-player
    // work accumulated into the caller's sink. Under the parallel policy
    // this runs on gang lanes, concurrently across shards; everything it
    // touches is indexed by p (accounting slots, the stepper's per-player
    // state under the parallel_choose_safe contract) or shard-local (the
    // sink).
    const auto stage = [&](PlayerId p, const ProbeEval& eval,
                           StageSink& sink) -> bool {
      if (!eval.object.has_value()) return false;
      ++sink.probes;
      accounting.stage_probe(p, eval.cost, eval.good);
      const obs::BandwidthMeter::PlayerScope io_player(p);
      const StepOutcome step =
          stepper.on_probe_result(p, slice, *eval.object, eval.value,
                                  eval.cost, eval.locally_good,
                                  streams.player(p));
      if (step.post.has_value()) {
        sink.posts.push_back(Post{p, slice, step.post->object,
                                  step.post->reported_value,
                                  step.post->positive});
      }
      if (step.halt) {
        accounting.stage_satisfied(p, slice);
        ++sink.satisfied;
      }
      return step.halt;
    };

    // Phase 3 — the order-dependent tail, folded on the kernel thread in
    // canonical order: shared totals and the honest post sequence
    // (appended after the adversary's posts, preserving the historical
    // commit order).
    const auto fold = [&](const StageSink& sink) {
      probes_this_slice += sink.probes;
      accounting.fold_satisfied(sink.satisfied);
      slice_posts.insert(slice_posts.end(), sink.posts.begin(),
                         sink.posts.end());
    };

    policy.run_slice(roster, streams.scheduler, evaluate, stage, fold);

    // Commit from the staging buffer and keep its capacity: `slice_posts`
    // is cleared (not replaced) at the top of the loop, so no engine
    // reallocates a post vector per slice.
    board_service->commit_round_from(slice, slice_posts);

    if (stepper.wants_halt_all(slice)) {
      for (PlayerId p : roster.active()) accounting.record_satisfied(p, slice);
      roster.halt_all();
    }

    accounting.end_slice(slice, billboard, roster.active().size(),
                         probes_this_slice);
  }

  return accounting.finish(slice, roster.done(), billboard);
}

}  // namespace acp
