// RunKernel — the single simulation loop behind every engine.
//
// The paper describes one execution semantics viewed through different
// schedulers: Theorem 4's synchronous rounds, the §6 asynchronous
// round-robin baseline, and the §1.2 lockstep synchronizer. The kernel
// owns everything those views share — the per-run invariants:
//
//  * seeded RNG stream derivation (EngineStreams: players, adversary,
//    scheduler);
//  * honest-player membership under churn (PlayerRoster: arrivals,
//    fail-stop departures, halts);
//  * stats, observer callbacks and metrics emission (RunAccounting);
//  * adversary post validation and the atomic billboard commit;
//  * the honest step body: probe, cost accounting, local-testability
//    masking, post staging, halt handling, wants_halt_all horizons.
//
// Engines are thin configurations: a *Stepper* adapts the protocol
// interface (synchronous Protocol or AsyncProtocol) and a *SchedulePolicy*
// decides who steps in a slice — every active player per slice for the
// synchronous engine, one scheduler-picked player per slice for the
// asynchronous one. A "slice" is the kernel's commit unit: a round in the
// synchronous engine, a basic step in the asynchronous one.
//
// The honest step is split into two halves so a policy can overlap the
// expensive part across players:
//
//  * evaluate(p) -> ProbeEval — choose_probe plus the World probe and
//    local-testability masking. Touches only player p's RNG stream and
//    state that is read-only for the duration of the slice (the protocol's
//    shared per-round tables, the billboard, the immutable World), so
//    evaluations of distinct players may run concurrently *when the
//    protocol's parallel_choose_safe() contract holds*.
//  * apply(p, eval) -> halted? — on_probe_result, accounting, post
//    staging, halt handling. Always runs on the kernel thread, in player
//    order.
//
// Sequential policies call apply(p, evaluate(p)) inline, which is exactly
// the historical interleaved order. ParallelAllActivePolicy evaluates
// contiguous roster shards on a thread pool and then applies in roster
// order; because each player's stream sees the same draw sequence
// (choose_probe, then on_probe_result) and choose_probe may not depend on
// same-slice on_probe_result mutations, the RunResult is bit-identical to
// the sequential policy at any thread count.
//
// Stepper concept:
//   void initialize(const WorldView&, std::size_t n);
//   Round churn_clock(Round slice);          // clock arrivals/departures run on
//   void on_departure(PlayerId);             // fail-stop notification
//   void begin_slice(Round slice, const Billboard&);
//   std::optional<ObjectId> choose_probe(PlayerId, Round slice,
//                                        const Billboard&, Rng&);
//   StepOutcome on_probe_result(PlayerId, Round slice, ObjectId, double value,
//                               double cost, bool locally_good, Rng&);
//   bool wants_halt_all(Round slice);
//
// SchedulePolicy concept:
//   template <class Evaluate, class Apply>
//   void run_slice(PlayerRoster&, Rng& scheduler_rng,
//                  Evaluate&& evaluate,    // evaluate(p) -> ProbeEval
//                  Apply&& apply);         // apply(p, eval) -> halted?
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <span>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/concurrency/thread_pool.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/profiler.hpp"
#include "acp/engine/accounting.hpp"
#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/roster.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/engine/scheduler.hpp"
#include "acp/engine/streams.hpp"
#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

/// Engine-independent per-run parameters plus the engine's observability
/// names (a timer for the slice scope and the two emitted counters).
struct KernelSpec {
  Round max_slices = 0;
  std::uint64_t seed = 1;
  std::span<const Round> arrivals;
  std::span<const Round> departures;
  RunObserver* observer = nullptr;
  const char* slice_timer = nullptr;
  const char* slices_counter = nullptr;
  const char* probes_counter = nullptr;
  /// Engine threads actually driving this run (after the 0 -> hardware
  /// resolution and the parallel_choose_safe fallback): 1 for every
  /// sequential policy. Surfaced to observers via RunContext so traces
  /// and reports record what really ran — NOT part of RunResult, which
  /// stays bit-identical across thread counts.
  std::size_t engine_threads = 1;
};

/// The read-only half of one player step: the chosen probe (if any) and
/// the World's answer, produced by a policy's evaluate phase and consumed
/// by its sequential apply phase.
struct ProbeEval {
  std::optional<ObjectId> object;  ///< nullopt: the player idles this slice
  double value = 0.0;
  double cost = 0.0;
  bool good = false;          ///< ground truth (for accounting)
  bool locally_good = false;  ///< masked by the goodness model (§2.2)
};

namespace kernel_detail {

[[nodiscard]] inline std::uint64_t ns_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace kernel_detail

/// Steps every active player once per slice — the synchronous round.
class AllActivePolicy {
 public:
  template <class Evaluate, class Apply>
  void run_slice(PlayerRoster& roster, Rng& /*scheduler_rng*/,
                 Evaluate&& evaluate, Apply&& apply) {
    still_active_.clear();
    still_active_.reserve(roster.active().size());
    if (obs::PhaseProfiler::enabled()) {
      run_slice_profiled(roster, evaluate, apply);
      return;
    }
    for (PlayerId p : roster.active()) {
      if (!apply(p, evaluate(p))) {
        still_active_.push_back(p);  // survivors keep order
      }
    }
    roster.swap_active(still_active_);
  }

 private:
  /// Profiled variant: identical step order, with the evaluate and apply
  /// halves of every step clocked separately so the sequential baseline
  /// shows up in the same phase breakdown as the parallel kernel.
  template <class Evaluate, class Apply>
  void run_slice_profiled(PlayerRoster& roster, Evaluate&& evaluate,
                          Apply&& apply) {
    using Clock = std::chrono::steady_clock;
    std::uint64_t evaluate_ns = 0;
    std::uint64_t apply_ns = 0;
    for (PlayerId p : roster.active()) {
      const auto before = Clock::now();
      const ProbeEval eval = evaluate(p);
      const auto evaluated = Clock::now();
      const bool halted = apply(p, eval);
      apply_ns += kernel_detail::ns_between(evaluated, Clock::now());
      evaluate_ns += kernel_detail::ns_between(before, evaluated);
      if (!halted) {
        still_active_.push_back(p);  // survivors keep order
      }
    }
    roster.swap_active(still_active_);
    obs::PhaseProfiler::global().record_sequential_round(evaluate_ns,
                                                         apply_ns);
  }

  std::vector<PlayerId> still_active_;
};

/// The synchronous round with the evaluate phase sharded over a thread
/// pool: the active roster splits into contiguous chunks (by count only —
/// the same determinism recipe as the sharded trial driver), each chunk's
/// players are evaluated on a pool worker into a slot indexed by roster
/// position, and the apply phase then runs on the calling thread in
/// roster order. Requires the stepper's evaluate half to be concurrency
/// safe across players (Protocol::parallel_choose_safe); engines fall
/// back to AllActivePolicy when it is not.
class ParallelAllActivePolicy {
 public:
  explicit ParallelAllActivePolicy(ThreadPool& pool) : pool_(&pool) {}

  template <class Evaluate, class Apply>
  void run_slice(PlayerRoster& roster, Rng& /*scheduler_rng*/,
                 Evaluate&& evaluate, Apply&& apply) {
    using Clock = std::chrono::steady_clock;
    const std::span<const PlayerId> active = roster.active();
    const std::size_t count = active.size();
    evals_.resize(count);

    const bool profiled = obs::PhaseProfiler::enabled();
    // The kernel thread's attribution sink, handed into the workers so
    // reads metered inside evaluate() land in this run's per-player
    // slots. Null when bandwidth metering is off.
    obs::BandwidthMeter::Sink* const io_sink =
        obs::BandwidthMeter::current_sink();

    const std::size_t shards = std::min(pool_->num_threads(), count);
    std::uint64_t barrier_ns = 0;
    if (shards > 0) {
      errors_.assign(shards, nullptr);
      shard_spans_.assign(shards, obs::ShardSpan{});
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t begin = s * count / shards;
        const std::size_t end = (s + 1) * count / shards;
        const auto submitted = profiled ? Clock::now() : Clock::time_point{};
        pool_->submit([&, s, begin, end, submitted, io_sink] {
          const obs::BandwidthMeter::SinkScope io_scope(io_sink);
          try {
            if (profiled) {
              // shard_spans_[s] has a single writer (this task) and is
              // read on the kernel thread only after wait_idle().
              const auto started = Clock::now();
              for (std::size_t i = begin; i < end; ++i) {
                evals_[i] = evaluate(active[i]);
              }
              shard_spans_[s].evaluate_ns =
                  kernel_detail::ns_between(started, Clock::now());
              shard_spans_[s].wake_ns =
                  kernel_detail::ns_between(submitted, started);
            } else {
              for (std::size_t i = begin; i < end; ++i) {
                evals_[i] = evaluate(active[i]);
              }
            }
          } catch (...) {
            errors_[s] = std::current_exception();  // pool tasks must not throw
          }
        });
      }
      const auto barrier_entered = profiled ? Clock::now() : Clock::time_point{};
      pool_->wait_idle();
      if (profiled) {
        barrier_ns = kernel_detail::ns_between(barrier_entered, Clock::now());
      }
      for (const std::exception_ptr& error : errors_) {
        if (error) std::rethrow_exception(error);
      }
    }

    const auto apply_started = profiled ? Clock::now() : Clock::time_point{};
    still_active_.clear();
    still_active_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (!apply(active[i], evals_[i])) {
        still_active_.push_back(active[i]);  // survivors keep order
      }
    }
    roster.swap_active(still_active_);
    if (profiled && shards > 0) {
      obs::PhaseProfiler::global().record_parallel_round(
          shard_spans_, barrier_ns,
          kernel_detail::ns_between(apply_started, Clock::now()));
    }
  }

 private:
  ThreadPool* pool_;
  std::vector<ProbeEval> evals_;
  std::vector<std::exception_ptr> errors_;
  std::vector<obs::ShardSpan> shard_spans_;
  std::vector<PlayerId> still_active_;
};

/// One scheduler-picked player per slice — the asynchronous basic step.
class OneScheduledPolicy {
 public:
  explicit OneScheduledPolicy(Scheduler& scheduler) : scheduler_(&scheduler) {}

  template <class Evaluate, class Apply>
  void run_slice(PlayerRoster& roster, Rng& scheduler_rng,
                 Evaluate&& evaluate, Apply&& apply) {
    // All current players may have halted while arrivals are still
    // pending: time passes (the adversary already posted) but nobody
    // moves.
    if (roster.active().empty()) return;
    const PlayerId p = scheduler_->next(roster.active(), scheduler_rng);
    ACP_ASSERT(roster.is_active(p));
    if (apply(p, evaluate(p))) roster.remove(p);
  }

 private:
  Scheduler* scheduler_;
};

namespace kernel_detail {

/// Billboard guarantees on fabricated posts: the adversary speaks only
/// for dishonest players and cannot backdate.
inline void validate_adversary_posts(const Population& population,
                                     const std::vector<Post>& posts,
                                     Round slice) {
  for (const Post& post : posts) {
    ACP_EXPECTS(!population.is_honest(post.author));
    ACP_EXPECTS(post.round == slice);
  }
}

}  // namespace kernel_detail

template <class Stepper, class SchedulePolicy>
RunResult run_kernel(const World& world, const Population& population,
                     Adversary& adversary, Stepper&& stepper,
                     SchedulePolicy&& policy, const KernelSpec& spec) {
  ACP_EXPECTS(spec.max_slices > 0);

  const std::size_t n = population.num_players();
  Billboard billboard(n, world.num_objects());
  const WorldView world_view(world);

  stepper.initialize(world_view, n);
  adversary.initialize(world, population);

  EngineStreams streams(spec.seed, n);
  PlayerRoster roster(population, spec.arrivals, spec.departures);
  RunAccounting accounting(population, world.num_objects(), spec.seed,
                           spec.observer, spec.slices_counter,
                           spec.probes_counter, spec.engine_threads);

  // Per-run, per-player bandwidth attribution (no-op when metering is
  // disabled). Folded into the global meter when the run finishes.
  const obs::BandwidthMeter::RunScope io_run(n);

  obs::TimerStat& slice_timer =
      obs::MetricsRegistry::global().timer(spec.slice_timer);

  std::vector<Post> slice_posts;

  Round slice = 0;
  for (; slice < spec.max_slices && !roster.done(); ++slice) {
    const obs::ScopedTimer timed(slice_timer);

    // Churn runs on the stepper's clock (round == slice for sync, step
    // stamp for async, virtual round under lockstep). Iterate to a
    // fixpoint: under lockstep, a departure can close the virtual round
    // and advance the clock, making further churn due within this slice.
    Round now = stepper.churn_clock(slice);
    for (;;) {
      roster.admit_arrivals(now);
      for (PlayerId p : roster.apply_departures(now)) stepper.on_departure(p);
      const Round after = stepper.churn_clock(slice);
      if (after == now) break;
      now = after;
    }

    stepper.begin_slice(slice, billboard);

    slice_posts.clear();
    adversary.plan_round(
        AdversaryContext{world, population, slice, billboard}, slice_posts,
        streams.adversary);
    kernel_detail::validate_adversary_posts(population, slice_posts, slice);

    std::size_t probes_this_slice = 0;

    // The read-only half of the step: may run concurrently across players
    // under ParallelAllActivePolicy (distinct RNG streams, immutable
    // World, slice-frozen billboard and protocol tables).
    const auto evaluate = [&](PlayerId p) -> ProbeEval {
      ProbeEval eval;
      // Billboard/ledger reads inside choose_probe are this player's
      // traffic (one relaxed load when metering is off).
      const obs::BandwidthMeter::PlayerScope io_player(p);
      const auto choice =
          stepper.choose_probe(p, slice, billboard, streams.player(p));
      if (!choice.has_value()) {
        return eval;  // idle step: no probe, no cost
      }
      const ObjectId object = *choice;
      const ProbeOutcome outcome = world.probe(object);
      eval.object = object;
      eval.value = outcome.value;
      eval.cost = outcome.cost;
      eval.good = world.is_good(object);
      // Local testability is a property of the object model (§2.2): under
      // TopBeta a prober cannot tell good from bad, so the flag is masked.
      eval.locally_good = world.model() == GoodnessModel::kLocalTesting
                              ? outcome.locally_good
                              : false;
      return eval;
    };

    // The mutating half: always sequential, in player order.
    const auto apply = [&](PlayerId p, const ProbeEval& eval) -> bool {
      if (!eval.object.has_value()) return false;
      ++probes_this_slice;
      accounting.record_probe(p, eval.cost, eval.good);
      const obs::BandwidthMeter::PlayerScope io_player(p);
      const StepOutcome step =
          stepper.on_probe_result(p, slice, *eval.object, eval.value,
                                  eval.cost, eval.locally_good,
                                  streams.player(p));
      if (step.post.has_value()) {
        slice_posts.push_back(Post{p, slice, step.post->object,
                                   step.post->reported_value,
                                   step.post->positive});
      }
      if (step.halt) accounting.record_satisfied(p, slice);
      return step.halt;
    };

    policy.run_slice(roster, streams.scheduler, evaluate, apply);

    billboard.commit_round(slice, std::move(slice_posts));
    slice_posts = {};

    if (stepper.wants_halt_all(slice)) {
      for (PlayerId p : roster.active()) accounting.record_satisfied(p, slice);
      roster.halt_all();
    }

    accounting.end_slice(slice, billboard, roster.active().size(),
                         probes_this_slice);
  }

  return accounting.finish(slice, roster.done(), billboard);
}

}  // namespace acp
