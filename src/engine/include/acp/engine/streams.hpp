// EngineStreams — the per-run RNG stream layout shared by every engine.
//
// One trial seed expands into independent derived streams: one per player
// (stream index == player id), one for the adversary, one for the
// scheduler, one for the gossip substrate. Streams are derived, not
// sequentially drawn, so the adversary cannot influence honest randomness
// (and vice versa), and so every engine maps the same seed onto the same
// per-player randomness — the property the lockstep-equivalence tests
// rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "acp/rng/rng.hpp"
#include "acp/util/types.hpp"

namespace acp {

class EngineStreams {
 public:
  /// Fixed stream-index layout relative to the player count n. Player p
  /// uses stream p; the remaining actors use offsets past the players.
  /// (Index n is reserved/unused, kept for seed compatibility with the
  /// original engines.)
  static constexpr std::uint64_t kAdversaryOffset = 1;
  static constexpr std::uint64_t kSchedulerOffset = 2;
  static constexpr std::uint64_t kGossipOffset = 3;

  EngineStreams(std::uint64_t seed, std::size_t num_players)
      : adversary(derive_stream(seed, num_players + kAdversaryOffset)),
        scheduler(derive_stream(seed, num_players + kSchedulerOffset)) {
    players_.reserve(num_players);
    for (std::size_t p = 0; p < num_players; ++p) {
      players_.push_back(derive_stream(seed, p));
    }
    seed_ = seed;
    n_ = num_players;
  }

  [[nodiscard]] Rng& player(PlayerId p) { return players_[p.value()]; }

  /// An extra named stream past the standard layout (e.g. gossip).
  [[nodiscard]] Rng extra(std::uint64_t offset) const {
    return derive_stream(seed_, n_ + offset);
  }

  Rng adversary;
  Rng scheduler;

 private:
  std::vector<Rng> players_;
  std::uint64_t seed_ = 0;
  std::size_t n_ = 0;
};

}  // namespace acp
