// AsyncEngine — the asynchronous execution model of the prior work
// ([AwerbuchPattShamirPelegTuttle EC'04], summarized in §1.1/§1.2).
//
// An execution is a sequence of basic steps; in a step, one player reads
// the billboard, probes one object, and posts. The *schedule* — which
// player moves next — is under adversarial control, which is exactly why
// individual cost is meaningless here (a schedule that runs one player
// alone forces it to search solo) and why the paper moves to the
// synchronous model. We keep the async engine to reproduce the prior
// work's total-cost behavior and to demonstrate the schedule attack.
#pragma once

#include <cstdint>
#include <optional>

#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

/// Honest-player algorithm in the asynchronous model: one decision per
/// scheduled step, full billboard visible (all previously committed steps).
class AsyncProtocol {
 public:
  virtual ~AsyncProtocol() = default;

  AsyncProtocol() = default;
  AsyncProtocol(const AsyncProtocol&) = delete;
  AsyncProtocol& operator=(const AsyncProtocol&) = delete;

  virtual void initialize(const WorldView& world, std::size_t num_players) = 0;

  [[nodiscard]] virtual std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) = 0;

  virtual StepOutcome on_probe_result(PlayerId player, ObjectId object,
                                      double value, double cost,
                                      bool locally_good, Rng& rng) = 0;
};

/// Adversarial schedule: picks which active honest player takes the next
/// step. (Dishonest posts are interleaved by the Adversary each step.)
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// `active` is non-empty and sorted by player id.
  [[nodiscard]] virtual PlayerId next(const std::vector<PlayerId>& active,
                                      Rng& rng) = 0;
};

/// Cycles through the active players — the "fair" schedule under which the
/// paper evaluates the prior algorithm's individual cost.
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;

 private:
  std::size_t cursor_ = 0;
};

/// Uniformly random active player each step.
class RandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;
};

/// Always schedules the lowest-id active player — the schedule attack from
/// §1.2 that forces one player to find a good object essentially alone.
class StarveScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;
};

struct AsyncRunConfig {
  /// Hard stop on the number of honest steps.
  Count max_steps = 10000000;
  std::uint64_t seed = 1;
  /// Optional measurement hook; not owned. In the asynchronous model a
  /// "round" is one basic step: on_round_end fires per step with the step
  /// stamp, so the same observers work on every engine.
  RunObserver* observer = nullptr;
};

class AsyncEngine {
 public:
  static RunResult run(const World& world, const Population& population,
                       AsyncProtocol& protocol, Adversary& adversary,
                       Scheduler& scheduler, const AsyncRunConfig& config);
};

}  // namespace acp
