// AsyncEngine — the asynchronous execution model of the prior work
// ([AwerbuchPattShamirPelegTuttle EC'04], summarized in §1.1/§1.2).
//
// An execution is a sequence of basic steps; in a step, one player reads
// the billboard, probes one object, and posts. The *schedule* — which
// player moves next — is under adversarial control, which is exactly why
// individual cost is meaningless here (a schedule that runs one player
// alone forces it to search solo) and why the paper moves to the
// synchronous model. We keep the async engine to reproduce the prior
// work's total-cost behavior and to demonstrate the schedule attack.
//
// The engine is a thin configuration of the shared run kernel
// (acp/engine/kernel.hpp): one scheduler-picked player per slice, slice
// stamp == step index. That brings the full kernel feature set to the
// asynchronous model — staggered arrivals, fail-stop departures,
// wants_halt_all horizons, and engine.async.* metrics — with the same
// semantics as the synchronous engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/engine/scheduler.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

class BillboardService;

/// Honest-player algorithm in the asynchronous model: one decision per
/// scheduled step, full billboard visible (all previously committed steps).
class AsyncProtocol {
 public:
  virtual ~AsyncProtocol() = default;

  AsyncProtocol() = default;
  AsyncProtocol(const AsyncProtocol&) = delete;
  AsyncProtocol& operator=(const AsyncProtocol&) = delete;

  virtual void initialize(const WorldView& world, std::size_t num_players) = 0;

  [[nodiscard]] virtual std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) = 0;

  virtual StepOutcome on_probe_result(PlayerId player, ObjectId object,
                                      double value, double cost,
                                      bool locally_good, Rng& rng) = 0;

  /// Asynchronous counterpart of Protocol::wants_halt_all: once true, the
  /// engine halts every remaining active player after this step's commit.
  [[nodiscard]] virtual bool wants_halt_all(Round /*stamp*/) const {
    return false;
  }

  /// The clock that arrival/departure times in AsyncRunConfig are measured
  /// on. Plain async protocols live in step time (churn times are step
  /// stamps); the LockstepAdapter overrides this with its virtual round so
  /// churn under lockstep means the same thing as under SyncEngine.
  [[nodiscard]] virtual Round churn_clock(Round stamp) const { return stamp; }

  /// Fail-stop notification: `player` crash-stopped and will never be
  /// scheduled again. Default: no-op. The LockstepAdapter uses this to
  /// keep virtual rounds closable.
  virtual void on_departure(PlayerId /*player*/) {}
};

struct AsyncRunConfig {
  /// Hard stop on the number of honest steps.
  Count max_steps = 10000000;
  std::uint64_t seed = 1;
  /// Optional per-player arrival times (indexed by PlayerId), measured on
  /// the protocol's churn_clock — step stamps for plain async protocols.
  /// Empty means everyone starts at step 0. Only honest entries are used.
  std::vector<Round> arrivals = {};
  /// Optional per-player fail-stop departure times (same clock as
  /// arrivals): a player still active at its departure time crash-stops —
  /// it leaves unsatisfied, its posts remain. -1 = never. Empty means
  /// nobody departs.
  std::vector<Round> departures = {};
  /// Optional measurement hook; not owned. In the asynchronous model a
  /// "round" is one basic step: on_round_end fires per step with the step
  /// stamp, so the same observers work on every engine.
  RunObserver* observer = nullptr;
  /// Billboard backend for the run; not owned. Null (the default) means
  /// the kernel owns a fresh in-process billboard. A non-null service must
  /// be freshly opened with dimensions matching the run; in-process and
  /// remote backends produce bit-identical results (see kernel.hpp).
  BillboardService* billboard = nullptr;
};

class AsyncEngine {
 public:
  static RunResult run(const World& world, const Population& population,
                       AsyncProtocol& protocol, Adversary& adversary,
                       Scheduler& scheduler, const AsyncRunConfig& config);
};

}  // namespace acp
