// SyncEngine — the synchronous execution model of the paper (§1.2, §2.1).
//
// Computation proceeds in rounds. In each round every *active* honest
// player reads the billboard (posts of strictly earlier rounds), optionally
// probes one object, and posts; simultaneously the adversary fabricates up
// to one post per dishonest player. All of the round's posts are committed
// atomically with the round's timestamp, becoming visible next round. A
// player is active until it halts (is satisfied).
//
// Extensions beyond the paper's base model, both off by default:
//  * staggered arrivals — players may join at later rounds (the paper's
//    prior work studies "changing interests"; DISTILL handles late joiners
//    naturally because its phase schedule is a deterministic function of
//    the shared billboard);
//  * fail-stop departures — honest players may crash-stop mid-search,
//    leaving their posts behind (their votes keep helping; their absence
//    lowers the effective alpha);
//  * a RunObserver for per-round instrumentation.
#pragma once

#include <cstdint>
#include <vector>

#include "acp/engine/adversary.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

class BillboardService;

struct SyncRunConfig {
  /// Hard stop: the run fails (all_honest_satisfied == false) if honest
  /// players remain active after this many rounds.
  Round max_rounds = 100000;
  /// Trial seed; player and adversary streams are derived from it.
  std::uint64_t seed = 1;
  /// Optional per-player arrival rounds (indexed by PlayerId). Empty means
  /// everyone starts at round 0. Only honest players' entries are used.
  std::vector<Round> arrivals = {};
  /// Optional per-player departure rounds (fail-stop churn, beyond the
  /// paper's model): an honest player still active at its departure round
  /// crash-stops — it leaves unsatisfied, its posts remain. -1 = never.
  /// Empty means nobody departs.
  std::vector<Round> departures = {};
  /// Optional measurement hook; not owned.
  RunObserver* observer = nullptr;
  /// Round-kernel worker threads (0 = hardware concurrency). With more
  /// than one thread *and* a protocol whose parallel_choose_safe() holds,
  /// each round's choose/probe/evaluate phase shards the active roster
  /// over a thread pool; results are bit-identical at any thread count
  /// (see kernel.hpp). Falls back to the sequential policy otherwise.
  /// Composes multiplicatively with the trial driver's `threads` knob —
  /// total workers ~= trial threads x engine threads.
  std::size_t engine_threads = 1;
  /// Billboard backend for the run; not owned. Null (the default) means
  /// the kernel owns a fresh in-process billboard. A non-null service must
  /// be freshly opened with dimensions matching the run; in-process and
  /// remote backends produce bit-identical results (see kernel.hpp).
  BillboardService* billboard = nullptr;
};

class SyncEngine {
 public:
  /// Execute one run. `protocol` and `adversary` must be freshly
  /// constructed (or otherwise reset) for each run.
  static RunResult run(const World& world, const Population& population,
                       Protocol& protocol, Adversary& adversary,
                       const SyncRunConfig& config);
};

}  // namespace acp
