// Protocol — the honest players' algorithm.
//
// One Protocol instance drives all honest players of a run. Honest players
// of the paper's algorithms are symmetric and synchronized, so the natural
// implementation keeps the shared per-round computation (candidate sets,
// phase schedule) in the protocol object and only the random choices and
// personal observations per player. The engine calls:
//
//   initialize(world_view, n)           once per run
//   on_round_begin(round, billboard)    once per round; billboard shows
//                                       exactly the posts of rounds < round
//   choose_probe(p, round, rng)         once per active honest player
//   on_probe_result(p, round, ...)      after the probe executes
//
// choose_probe may return nullopt: the player idles this round (e.g. the
// advice target has no vote yet — "if exists" in PROBE&SEEKADVICE).
#pragma once

#include <optional>
#include <span>

#include "acp/billboard/billboard.hpp"
#include "acp/rng/rng.hpp"
#include "acp/util/types.hpp"
#include "acp/world/world_view.hpp"

namespace acp {

/// What a player publishes after a step (by convention, its probe result).
struct ProbeReport {
  ObjectId object;
  double reported_value = 0.0;
  bool positive = false;
};

/// Result of one player step.
struct StepOutcome {
  /// Post to publish this round, if any. Honest players normally report
  /// every probe truthfully (§2.1 convention).
  std::optional<ProbeReport> post;
  /// True when the player halts (it is now *satisfied*: it found a good
  /// object and stops probing; its vote stays on the billboard).
  bool halt = false;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual void initialize(const WorldView& world, std::size_t num_players) = 0;

  virtual void on_round_begin(Round round, const Billboard& billboard) = 0;

  /// Synchronous-roster reveal: the all-active schedule policies call this
  /// once per round, after on_round_begin and before any choose_probe,
  /// with the round's active players (admission order) and the engine's
  /// scheduler stream (unused by those policies otherwise, so consuming it
  /// here is deterministic at any thread count). Protocols that would
  /// otherwise coordinate through shared state inside choose_probe — the
  /// full-coop oracle's shared urn cursor — can pre-partition here so the
  /// per-player hooks satisfy parallel_choose_safe(). Never called by the
  /// asynchronous/lockstep substrate (one player per slice). Default:
  /// ignore.
  virtual void on_active_roster(Round /*round*/,
                                std::span<const PlayerId> /*active*/,
                                Rng& /*rng*/) {}

  [[nodiscard]] virtual std::optional<ObjectId> choose_probe(PlayerId player,
                                                             Round round,
                                                             Rng& rng) = 0;

  virtual StepOutcome on_probe_result(PlayerId player, Round round,
                                      ObjectId object, double value,
                                      double cost, bool locally_good,
                                      Rng& rng) = 0;

  /// Protocols with a prescribed horizon (search without local testing,
  /// §5.3) return true once every player must stop; the engine then halts
  /// all remaining active players after this round's commit.
  [[nodiscard]] virtual bool wants_halt_all(Round /*round*/) const {
    return false;
  }

  /// Opt-in concurrency contract for the parallel round kernel: return
  /// true iff *both* per-player hooks, choose_probe and on_probe_result,
  /// (i) mutate nothing but the passed Rng and state indexed by the
  /// stepped player (its trust row, its vote tally — never a shared
  /// cursor or a shared discovery flag read by same-round hooks), and
  /// (ii) read only state that is constant between on_round_begin /
  /// on_active_roster calls — i.e. never state mutated by the same
  /// round's hooks of *another* player. When true, the engine may run the
  /// whole evaluate + staged-apply step for distinct players concurrently
  /// (each on its own RNG stream, accounting in per-player slots, posts
  /// staged per shard and merged in roster order); results are
  /// bit-identical to the sequential order either way. The conservative
  /// default keeps protocols with cross-player step coupling on the
  /// sequential path.
  [[nodiscard]] virtual bool parallel_choose_safe() const { return false; }
};

}  // namespace acp
