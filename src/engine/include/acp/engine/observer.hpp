// RunObserver — optional per-round instrumentation of a synchronous run.
//
// Observers see the run from the outside (ground truth included): they are
// measurement equipment, not protocol participants. The engine invokes
// them after each round's commit. Used by the trace recorder, the engine
// invariant checks in the test suite, and ad-hoc bench instrumentation.
#pragma once

#include <cstddef>

#include "acp/billboard/billboard.hpp"
#include "acp/util/types.hpp"

namespace acp {

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  RunObserver() = default;
  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  /// After round `round` committed. `billboard` includes this round's
  /// posts; `active_honest` / `satisfied_honest` count honest players
  /// still searching / already halted; `probes_this_round` counts honest
  /// probes executed this round.
  virtual void on_round_end(Round round, const Billboard& billboard,
                            std::size_t active_honest,
                            std::size_t satisfied_honest,
                            std::size_t probes_this_round) = 0;
};

}  // namespace acp
