// RunObserver — optional per-round instrumentation of a synchronous run.
//
// Observers see the run from the outside (ground truth included): they are
// measurement equipment, not protocol participants. The engine invokes
// them after each round's commit. Used by the trace recorder, the engine
// invariant checks in the test suite, and ad-hoc bench instrumentation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "acp/billboard/billboard.hpp"
#include "acp/engine/run_result.hpp"
#include "acp/util/types.hpp"

namespace acp {

/// Static facts about the run an observer is attached to, delivered once
/// before the first round (or step) executes.
struct RunContext {
  std::size_t num_players = 0;
  std::size_t num_honest = 0;
  std::size_t num_objects = 0;
  std::uint64_t seed = 0;
  /// Engine threads actually driving the run, after engine_threads=0 ->
  /// hardware resolution and the parallel_choose_safe fallback. Always 1
  /// for sequential policies. Observability only — never part of
  /// RunResult, which is bit-identical across thread counts.
  std::size_t engine_threads = 1;
};

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  RunObserver() = default;
  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  /// Before the first round executes. Default: no-op.
  virtual void on_run_begin(const RunContext& /*context*/) {}

  /// After round `round` committed. `billboard` includes this round's
  /// posts; `active_honest` / `satisfied_honest` count honest players
  /// still searching / already halted; `probes_this_round` counts honest
  /// probes executed this round.
  ///
  /// Every engine delivers this with the same semantics: the synchronous
  /// engine per round, the asynchronous engine per basic step (round ==
  /// step stamp), and the lockstep engine per *virtual* round with the
  /// virtual billboard.
  virtual void on_round_end(Round round, const Billboard& billboard,
                            std::size_t active_honest,
                            std::size_t satisfied_honest,
                            std::size_t probes_this_round) = 0;

  /// After the run finished, with the final accounting. Default: no-op.
  virtual void on_run_end(const RunResult& /*result*/) {}
};

}  // namespace acp
