// LockstepAdapter — simulating the synchronous model inside the
// asynchronous one using timestamps (paper §1.2: "we can often simulate
// synchronous behavior in asynchronous environments with the use of
// timestamps (an integral part of any posting on any real billboard)").
//
// The adapter wraps a synchronous Protocol and presents it as an
// AsyncProtocol. It maintains a *virtual* billboard whose timestamps are
// virtual round numbers:
//
//  * Each participating player's local round is the number of synchronous
//    steps it has completed. A player scheduled while it is ahead of the
//    global virtual round simply waits (returns no probe, at no cost).
//  * The global virtual round closes when every known, still-active
//    participant has completed it; its posts then commit to the virtual
//    billboard and become visible — exactly the synchronous visibility
//    rule.
//  * Posts on the real billboard by non-participants (dishonest players —
//    the async scheduler only ever runs honest players) are re-stamped
//    into the current virtual round, at most one per author per round, as
//    the billboard contract requires.
//
// Membership comes in two flavors. By default the adapter is told only how
// many players participate (the honest player count — in a deployment, the
// number of identities that registered for the protocol) and discovers
// them as the scheduler first runs each one. set_participants switches to
// *informed* membership — the exact participant set plus per-player
// arrival times in virtual rounds — which is what churn needs: rounds can
// close while a late arrival is still pending, and empty virtual rounds
// auto-close so the virtual clock reaches the arrival. LockstepEngine
// always uses informed membership.
//
// Under any schedule that keeps scheduling every active player (round
// robin, uniform random, arbitrary fair bias), the adapter reproduces the
// synchronous execution *exactly*. Under an unfair schedule that starves a
// participant forever, the virtual round cannot close and the scheduled
// players wait — the classic synchronizer liveness condition: simulation
// of synchrony needs every nonfaulty process scheduled infinitely often.
// (That is precisely why the paper's lower-bound discussion dismisses
// unrestricted asynchronous schedules, §1.2.)
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "acp/engine/async_engine.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"
#include "acp/obs/metrics.hpp"
#include "acp/world/population.hpp"

namespace acp {

class LockstepAdapter final : public AsyncProtocol {
 public:
  /// `inner` must outlive the adapter and be freshly constructed per run.
  /// `expected_participants` is the number of players that will run the
  /// protocol (the honest count); each virtual round closes only after
  /// every live participant has taken its step.
  LockstepAdapter(Protocol& inner, std::size_t expected_participants);

  /// Optional measurement hook; not owned. Receives on_round_end once per
  /// *virtual* round (at close), with the virtual billboard — i.e. the
  /// same view a SyncEngine observer of the simulated run would get.
  void set_observer(RunObserver* observer) noexcept { observer_ = observer; }

  /// Informed membership: the participants are exactly the honest players
  /// of `population`, and player p joins at virtual round `arrivals[p]`
  /// (empty span: everyone joins at round 0). Must be called before the
  /// run; required whenever the run has arrivals or departures. The
  /// honest count must equal the constructor's expected_participants.
  void set_participants(const Population& population,
                        std::span<const Round> arrivals);

  void initialize(const WorldView& world, std::size_t num_players) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, ObjectId object, double value,
                              double cost, bool locally_good,
                              Rng& rng) override;

  /// Churn times under lockstep are measured in virtual rounds, so the
  /// engine's arrival/departure clock is the virtual round.
  [[nodiscard]] Round churn_clock(Round /*stamp*/) const override {
    return vround_;
  }
  /// Set once the inner protocol's wants_halt_all horizon fires at a
  /// virtual round close; the engine then halts everyone, as the
  /// synchronous engine would.
  [[nodiscard]] bool wants_halt_all(Round /*stamp*/) const override {
    return halt_all_;
  }
  void on_departure(PlayerId player) override;

  /// The current virtual (synchronous) round.
  [[nodiscard]] Round virtual_round() const noexcept { return vround_; }
  /// The virtual billboard built so far (for tests).
  [[nodiscard]] const Billboard& virtual_billboard() const;

 private:
  /// Classify and stage new real-billboard posts from non-participants.
  void ingest_real(const Billboard& real);
  /// Mark p's current-round step complete; close the round when everyone
  /// still active has finished it.
  void complete_step(PlayerId player);
  void close_round_if_done();
  /// p has joined by round r and neither halted nor departed.
  [[nodiscard]] bool live_at(std::size_t p, Round r) const;
  [[nodiscard]] std::size_t live_count() const;

  Protocol* inner_;
  std::size_t n_ = 0;

  std::optional<Billboard> virtual_bb_;
  std::vector<Post> staged_;
  Round vround_ = 0;
  bool round_open_ = false;

  std::size_t expected_participants_ = 0;
  std::size_t seen_participants_ = 0;
  std::vector<bool> participant_;
  std::vector<bool> halted_;
  std::vector<bool> departed_;
  std::vector<Round> local_round_;
  std::vector<bool> foreign_posted_;  // dishonest dedupe per virtual round

  // Informed membership (set_participants): exact participant set and
  // virtual-round arrivals, declared before the run, applied at initialize.
  bool informed_ = false;
  std::vector<bool> declared_participant_;
  std::vector<Round> declared_arrival_;
  std::vector<Round> arrival_;

  bool halt_all_ = false;

  std::size_t real_cursor_ = 0;

  RunObserver* observer_ = nullptr;
  obs::Counter* rounds_counter_ = nullptr;  // resolved lazily when enabled
  std::size_t halted_count_ = 0;
  std::size_t probes_in_round_ = 0;
};

/// Convenience façade running a synchronous Protocol over the asynchronous
/// engine through a LockstepAdapter — the third engine configuration, with
/// the same observer slot as SyncRunConfig/AsyncRunConfig. The observer
/// sees *virtual* rounds, so any observer (TraceRecorder, JSONL writer)
/// works identically across all three engines.
struct LockstepRunConfig {
  /// Hard stop on the number of honest *steps* (not virtual rounds).
  Count max_steps = 10000000;
  std::uint64_t seed = 1;
  /// Optional per-player arrival times in *virtual rounds* (indexed by
  /// PlayerId) — the same semantics as SyncRunConfig::arrivals, so a
  /// churned scenario means the same thing natively and under the
  /// synchronizer. Empty means everyone starts at round 0.
  std::vector<Round> arrivals = {};
  /// Optional per-player fail-stop departure times in *virtual rounds*
  /// (same semantics as SyncRunConfig::departures): a player still active
  /// at its departure round crash-stops — it leaves unsatisfied, its posts
  /// remain. -1 = never. Empty means nobody departs.
  std::vector<Round> departures = {};
  /// Optional measurement hook; not owned.
  RunObserver* observer = nullptr;
  /// Accepted for knob parity with SyncRunConfig (a scenario can switch
  /// engines without editing its threads setting), but inherently a no-op
  /// here: the asynchronous substrate steps exactly one player per slice,
  /// so there is nothing to shard. Results are identical at any value.
  std::size_t engine_threads = 1;
  /// Billboard backend for the run; not owned. Null (the default) means
  /// the kernel owns a fresh in-process billboard (forwarded to the
  /// underlying AsyncRunConfig). The *real* billboard lives behind the
  /// service; the adapter's virtual billboard stays local either way.
  BillboardService* billboard = nullptr;
};

class LockstepEngine {
 public:
  /// Execute one run. `protocol` and `adversary` must be freshly
  /// constructed (or otherwise reset) for each run.
  static RunResult run(const World& world, const Population& population,
                       Protocol& protocol, Adversary& adversary,
                       Scheduler& scheduler, const LockstepRunConfig& config);
};

}  // namespace acp
