// LockstepAdapter — simulating the synchronous model inside the
// asynchronous one using timestamps (paper §1.2: "we can often simulate
// synchronous behavior in asynchronous environments with the use of
// timestamps (an integral part of any posting on any real billboard)").
//
// The adapter wraps a synchronous Protocol and presents it as an
// AsyncProtocol. It maintains a *virtual* billboard whose timestamps are
// virtual round numbers:
//
//  * Each participating player's local round is the number of synchronous
//    steps it has completed. A player scheduled while it is ahead of the
//    global virtual round simply waits (returns no probe, at no cost).
//  * The global virtual round closes when every known, still-active
//    participant has completed it; its posts then commit to the virtual
//    billboard and become visible — exactly the synchronous visibility
//    rule.
//  * Posts on the real billboard by non-participants (dishonest players —
//    the async scheduler only ever runs honest players) are re-stamped
//    into the current virtual round, at most one per author per round, as
//    the billboard contract requires.
//
// The adapter is told how many players participate (the honest player
// count — in a deployment, the number of identities that registered for
// the protocol). Under any schedule that keeps scheduling every active
// player (round robin, uniform random, arbitrary fair bias), it reproduces
// the synchronous execution *exactly*. Under an unfair schedule that
// starves a participant forever, the virtual round cannot close and the
// scheduled players wait — the classic synchronizer liveness condition:
// simulation of synchrony needs every nonfaulty process scheduled
// infinitely often. (That is precisely why the paper's lower-bound
// discussion dismisses unrestricted asynchronous schedules, §1.2.)
#pragma once

#include <optional>
#include <vector>

#include "acp/engine/async_engine.hpp"
#include "acp/engine/observer.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

class LockstepAdapter final : public AsyncProtocol {
 public:
  /// `inner` must outlive the adapter and be freshly constructed per run.
  /// `expected_participants` is the number of players that will run the
  /// protocol (the honest count); each virtual round closes only after
  /// every live participant has taken its step.
  LockstepAdapter(Protocol& inner, std::size_t expected_participants);

  /// Optional measurement hook; not owned. Receives on_round_end once per
  /// *virtual* round (at close), with the virtual billboard — i.e. the
  /// same view a SyncEngine observer of the simulated run would get.
  void set_observer(RunObserver* observer) noexcept { observer_ = observer; }

  void initialize(const WorldView& world, std::size_t num_players) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(
      PlayerId player, const Billboard& billboard, Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, ObjectId object, double value,
                              double cost, bool locally_good,
                              Rng& rng) override;

  /// The current virtual (synchronous) round.
  [[nodiscard]] Round virtual_round() const noexcept { return vround_; }
  /// The virtual billboard built so far (for tests).
  [[nodiscard]] const Billboard& virtual_billboard() const;

 private:
  /// Classify and stage new real-billboard posts from non-participants.
  void ingest_real(const Billboard& real);
  /// Mark p's current-round step complete; close the round when everyone
  /// still active has finished it.
  void complete_step(PlayerId player);
  void close_round_if_done();

  Protocol* inner_;
  std::size_t n_ = 0;

  std::optional<Billboard> virtual_bb_;
  std::vector<Post> staged_;
  Round vround_ = 0;
  bool round_open_ = false;

  std::size_t expected_participants_ = 0;
  std::size_t seen_participants_ = 0;
  std::vector<bool> participant_;
  std::vector<bool> halted_;
  std::vector<Round> local_round_;
  std::vector<bool> foreign_posted_;  // dishonest dedupe per virtual round

  std::size_t real_cursor_ = 0;

  RunObserver* observer_ = nullptr;
  std::size_t halted_count_ = 0;
  std::size_t probes_in_round_ = 0;
};

/// Convenience façade running a synchronous Protocol over the asynchronous
/// engine through a LockstepAdapter — the third engine configuration, with
/// the same observer slot as SyncRunConfig/AsyncRunConfig. The observer
/// sees *virtual* rounds, so any observer (TraceRecorder, JSONL writer)
/// works identically across all three engines.
struct LockstepRunConfig {
  /// Hard stop on the number of honest *steps* (not virtual rounds).
  Count max_steps = 10000000;
  std::uint64_t seed = 1;
  /// Optional measurement hook; not owned.
  RunObserver* observer = nullptr;
};

class LockstepEngine {
 public:
  /// Execute one run. `protocol` and `adversary` must be freshly
  /// constructed (or otherwise reset) for each run.
  static RunResult run(const World& world, const Population& population,
                       Protocol& protocol, Adversary& adversary,
                       Scheduler& scheduler, const LockstepRunConfig& config);
};

}  // namespace acp
