// TraceRecorder — a RunObserver that keeps one row per round: how many
// honest players are still searching, how many are satisfied, how many
// probes the round consumed, and the billboard growth. Dumpable as CSV for
// plotting convergence curves (e.g. the satisfied-count doubling the
// Lemma 6 argument predicts).
#pragma once

#include <iosfwd>
#include <vector>

#include "acp/engine/observer.hpp"

namespace acp {

struct TraceRow {
  Round round = 0;
  std::size_t active_honest = 0;
  std::size_t satisfied_honest = 0;
  std::size_t probes = 0;
  std::size_t billboard_posts = 0;

  friend bool operator==(const TraceRow&, const TraceRow&) = default;
};

class TraceRecorder final : public RunObserver {
 public:
  void on_round_end(Round round, const Billboard& billboard,
                    std::size_t active_honest, std::size_t satisfied_honest,
                    std::size_t probes_this_round) override;

  [[nodiscard]] const std::vector<TraceRow>& rows() const noexcept {
    return rows_;
  }

  /// First round in which at least `count` honest players were satisfied,
  /// or -1 if that never happened.
  [[nodiscard]] Round round_reaching_satisfied(std::size_t count) const;

  /// Total honest probes across the run (sum of per-round probes).
  [[nodiscard]] std::size_t total_probes() const;

  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceRow> rows_;
};

}  // namespace acp
