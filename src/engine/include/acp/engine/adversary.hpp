// Adversary — controller of the Byzantine players (paper §2.3).
//
// The adaptive Byzantine model: before each round the adversary sees the
// complete ground truth (world values and goodness, player honesty flags)
// and everything that happened in previous rounds (the billboard records
// every honest probe because honest players post each result — so past coin
// flips are fully observable). It then fabricates at most one post per
// dishonest player for this round. It cannot forge identities or
// timestamps, and cannot erase anything — those are billboard guarantees.
#pragma once

#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/post.hpp"
#include "acp/rng/rng.hpp"
#include "acp/util/types.hpp"
#include "acp/world/population.hpp"
#include "acp/world/world.hpp"

namespace acp {

struct AdversaryContext {
  const World& world;
  const Population& population;
  Round round;
  /// Posts of rounds < round (same view the honest players get; adaptivity
  /// comes from this containing all past honest actions).
  const Billboard& billboard;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  Adversary() = default;
  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  /// Called once per run before the first round.
  virtual void initialize(const World& /*world*/,
                          const Population& /*population*/) {}

  /// Append this round's dishonest posts to `out`. The engine validates
  /// that every author is dishonest and posts at most once.
  virtual void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                          Rng& rng) = 0;
};

/// An adversary whose dishonest players never post anything.
class SilentAdversary final : public Adversary {
 public:
  void plan_round(const AdversaryContext&, std::vector<Post>&,
                  Rng&) override {}
};

}  // namespace acp
