// Per-run accounting produced by the engines.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/util/types.hpp"

namespace acp {

struct PlayerStats {
  bool honest = false;
  /// Probes executed (== unit cost in the unit-cost model).
  Count probes = 0;
  /// Sum of costs of probed objects (general cost model).
  double cost_paid = 0.0;
  /// Round in which the player halted satisfied, or -1 if it never halted.
  Round satisfied_round = -1;
  /// Whether the player ever probed a ground-truth good object.
  bool probed_good = false;

  [[nodiscard]] bool satisfied() const noexcept {
    return satisfied_round >= 0;
  }
};

struct RunResult {
  std::vector<PlayerStats> players;  // indexed by PlayerId.value()
  Round rounds_executed = 0;
  bool all_honest_satisfied = false;
  /// Total posts committed (billboard size at the end).
  std::size_t total_posts = 0;

  // -- Aggregations over honest players ------------------------------------
  [[nodiscard]] double mean_honest_probes() const;
  [[nodiscard]] Count max_honest_probes() const;
  [[nodiscard]] double mean_honest_cost() const;
  [[nodiscard]] double max_honest_cost() const;
  [[nodiscard]] Count total_honest_probes() const;
  /// Mean satisfaction round among honest players; unsatisfied players are
  /// counted at `rounds_executed` (a lower bound on their true time).
  [[nodiscard]] double mean_honest_satisfied_round() const;
  [[nodiscard]] Round max_honest_satisfied_round() const;
  /// Fraction of honest players that probed a good object.
  [[nodiscard]] double honest_success_fraction() const;
};

}  // namespace acp
