// Schedulers — who takes the next basic step in the asynchronous model.
//
// The schedule is under adversarial control in the model (§1.2), which is
// exactly why individual cost is meaningless there; the fair schedules
// below are the benchmarks' reference points and StarveScheduler is the
// §1.2 schedule attack.
#pragma once

#include <deque>
#include <vector>

#include "acp/rng/rng.hpp"
#include "acp/util/types.hpp"

namespace acp {

/// Adversarial schedule: picks which active honest player takes the next
/// step. (Dishonest posts are interleaved by the Adversary each step.)
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// `active` is non-empty, in roster order (honest-id order, then
  /// arrivals in arrival order); it may shrink (halts, departures) or
  /// grow (arrivals) between calls.
  [[nodiscard]] virtual PlayerId next(const std::vector<PlayerId>& active,
                                      Rng& rng) = 0;
};

/// Cycles through the active players — the "fair" schedule under which the
/// paper evaluates the prior algorithm's individual cost.
///
/// Fairness contract: every player active at the start of a cycle is
/// served exactly once before the next cycle begins, even when players
/// halt or depart mid-cycle (they are skipped, nobody else loses a turn).
/// Players arriving mid-cycle wait for the next cycle. (The previous
/// index-cursor implementation violated this: erasing the just-served
/// player shifted indices under a stale cursor and skipped the next
/// player's turn.)
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;

 private:
  std::deque<PlayerId> cycle_;  // players still owed a turn this cycle
};

/// Uniformly random active player each step.
class RandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;
};

/// Always schedules the lowest-id active player — the schedule attack from
/// §1.2 that forces one player to find a good object essentially alone.
class StarveScheduler final : public Scheduler {
 public:
  [[nodiscard]] PlayerId next(const std::vector<PlayerId>& active,
                              Rng& rng) override;
};

}  // namespace acp
