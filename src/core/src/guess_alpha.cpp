#include "acp/core/guess_alpha.hpp"

#include <cmath>

#include "acp/core/theory.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/math.hpp"

namespace acp {

GuessAlphaProtocol::GuessAlphaProtocol(GuessAlphaParams params)
    : params_(params) {
  ACP_EXPECTS(params_.k3 > 0.0);
  ACP_EXPECTS(params_.c1 > 0.0 && params_.c2 > 0.0);
}

void GuessAlphaProtocol::initialize(const WorldView& world,
                                    std::size_t num_players) {
  world_.emplace(world);
  n_ = num_players;
  ACP_EXPECTS(n_ >= 2);
  // Epochs 0 .. log n; the last guess alpha = 2^-max_epoch <= 1/n covers
  // even a single honest player.
  max_epoch_ = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(n_))));
  started_ = false;
  epoch_ = 0;
  inner_.reset();
}

double GuessAlphaProtocol::current_alpha_guess() const {
  return std::ldexp(1.0, -static_cast<int>(epoch_));
}

const DistillProtocol& GuessAlphaProtocol::inner() const {
  ACP_EXPECTS(inner_ != nullptr);
  return *inner_;
}

void GuessAlphaProtocol::start_epoch(std::size_t epoch, Round round) {
  epoch_ = epoch;
  DistillParams inner_params =
      make_hp_params(current_alpha_guess(), n_, params_.c1, params_.c2);
  inner_ = std::make_unique<DistillProtocol>(inner_params);
  inner_->initialize(*world_, n_);
  epoch_end_ =
      round + theory::guess_alpha_epoch_rounds(epoch, world_->beta(), n_,
                                               params_.k3);
}

void GuessAlphaProtocol::on_round_begin(Round round,
                                        const Billboard& billboard) {
  ACP_EXPECTS(world_.has_value());
  if (!started_) {
    started_ = true;
    start_epoch(0, round);
  } else if (round >= epoch_end_ && epoch_ < max_epoch_) {
    // Move to the next (halved) guess. The fresh inner instance re-ingests
    // the whole billboard; after-effects from earlier epochs (existing
    // votes, satisfied players) are benign per §5.1.
    start_epoch(epoch_ + 1, round);
  }
  inner_->on_round_begin(round, billboard);
}

std::optional<ObjectId> GuessAlphaProtocol::choose_probe(PlayerId player,
                                                         Round round,
                                                         Rng& rng) {
  return inner_->choose_probe(player, round, rng);
}

StepOutcome GuessAlphaProtocol::on_probe_result(PlayerId player, Round round,
                                                ObjectId object, double value,
                                                double cost,
                                                bool locally_good, Rng& rng) {
  return inner_->on_probe_result(player, round, object, value, cost,
                                 locally_good, rng);
}

}  // namespace acp
