// Scenario-registry factories for the paper's protocols (§4–§5).
//
// Lives in acp_core (next to the classes it builds) and is pulled into any
// binary that uses the scenario layer via the strong reference from
// acp::scenario::registries() — see acp/scenario/modules.hpp.

#include "acp/core/cost_classes.hpp"
#include "acp/core/distill.hpp"
#include "acp/core/guess_alpha.hpp"
#include "acp/scenario/modules.hpp"
#include "acp/scenario/registry.hpp"

namespace acp::scenario {

namespace {

/// The §4.1 extension knobs shared by every DISTILL flavor.
void apply_common_distill_knobs(DistillParams& params, const ParamMap& p) {
  params.votes_per_player = p.get_size("f", params.votes_per_player);
  params.error_vote_prob = p.get("err", params.error_vote_prob);
  params.veto_fraction = p.get("veto", params.veto_fraction);
  params.negative_votes_per_player =
      p.get_size("f_neg", params.negative_votes_per_player);
  params.use_advice = p.get_bool("use_advice", params.use_advice);
  params.trust_weighted_advice =
      p.get_bool("trust", params.trust_weighted_advice);
}

std::unique_ptr<Protocol> make_distill(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'distill'",
                  {"alpha", "k1", "k2", "f", "err", "veto", "f_neg",
                   "survival_divisor", "c0_vote_fraction", "use_advice",
                   "trust"});
  DistillParams params;
  params.alpha = p.get("alpha", ctx.spec.alpha);
  params.k1 = p.get("k1", params.k1);
  params.k2 = p.get("k2", params.k2);
  params.survival_divisor =
      p.get("survival_divisor", params.survival_divisor);
  params.c0_vote_fraction =
      p.get("c0_vote_fraction", params.c0_vote_fraction);
  apply_common_distill_knobs(params, p);
  return std::make_unique<DistillProtocol>(params);
}

std::unique_ptr<Protocol> make_distill_hp(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'distill-hp'",
                  {"alpha", "c1", "c2", "f", "err", "veto", "f_neg",
                   "use_advice", "trust"});
  const double alpha = p.get("alpha", ctx.spec.alpha);
  DistillParams params = make_hp_params(alpha, ctx.spec.n, p.get("c1", 2.0),
                                        p.get("c2", 8.0));
  apply_common_distill_knobs(params, p);
  return std::make_unique<DistillProtocol>(params);
}

std::unique_ptr<Protocol> make_guess_alpha(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'guess-alpha'", {"k3", "c1", "c2"});
  GuessAlphaParams params;
  params.k3 = p.get("k3", params.k3);
  params.c1 = p.get("c1", params.c1);
  params.c2 = p.get("c2", params.c2);
  return std::make_unique<GuessAlphaProtocol>(params);
}

std::unique_ptr<Protocol> make_cost_classes(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'cost-classes'", {"alpha", "k_h", "c1", "c2"});
  CostClassParams params;
  params.alpha = p.get("alpha", ctx.spec.alpha);
  params.k_h = p.get("k_h", params.k_h);
  params.c1 = p.get("c1", params.c1);
  params.c2 = p.get("c2", params.c2);
  return std::make_unique<CostClassProtocol>(params);
}

std::unique_ptr<Protocol> make_no_lt(const ProtocolBuildContext& ctx) {
  const ParamMap& p = ctx.spec.protocol_params;
  p.require_known("protocol 'no-lt'", {"alpha", "k_h"});
  const DistillParams params = make_no_local_testing_params(
      p.get("alpha", ctx.spec.alpha), ctx.world.beta(), ctx.spec.n,
      p.get("k_h", 8.0));
  return std::make_unique<DistillProtocol>(params);
}

}  // namespace

void register_builtin_core_protocols(ProtocolRegistry& registry) {
  registry.add("distill", make_distill);
  registry.add("distill-hp", make_distill_hp);
  registry.add("guess-alpha", make_guess_alpha);
  registry.add("cost-classes", make_cost_classes);
  registry.add("no-lt", make_no_lt);
}

}  // namespace acp::scenario
