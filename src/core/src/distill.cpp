#include "acp/core/distill.hpp"

#include <algorithm>
#include <cmath>

#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/math.hpp"

namespace acp {

DistillProtocol::DistillProtocol(DistillParams params)
    : params_(std::move(params)) {
  ACP_EXPECTS(params_.alpha > 0.0 && params_.alpha <= 1.0);
  ACP_EXPECTS(params_.k1 > 0.0);
  ACP_EXPECTS(params_.k2 > 0.0);
  ACP_EXPECTS(params_.votes_per_player >= 1);
  ACP_EXPECTS(params_.error_vote_prob >= 0.0 && params_.error_vote_prob < 1.0);
  ACP_EXPECTS(params_.survival_divisor > 0.0);
  ACP_EXPECTS(params_.c0_vote_fraction > 0.0);
  ACP_EXPECTS(params_.veto_fraction >= 0.0 && params_.veto_fraction <= 1.0);
  ACP_EXPECTS(params_.negative_votes_per_player >= 1);
  // The veto variant reuses the first-positive machinery; no-local-testing
  // mode has no negative reports to read.
  ACP_EXPECTS(params_.veto_fraction == 0.0 || params_.local_testing);
  ACP_EXPECTS(!params_.beta_override.has_value() ||
              (*params_.beta_override > 0.0 && *params_.beta_override <= 1.0));
  // The §5.3 variant needs a prescribed stop time and a single mutable vote.
  ACP_EXPECTS(params_.local_testing || params_.horizon.has_value());
  ACP_EXPECTS(params_.local_testing || params_.votes_per_player == 1);
  if (params_.horizon.has_value()) ACP_EXPECTS(*params_.horizon > 0);
}

void DistillProtocol::initialize(const WorldView& world,
                                 std::size_t num_players) {
  n_ = num_players;
  m_ = world.num_objects();
  beta_ = params_.beta_override.value_or(world.beta());
  ACP_EXPECTS(n_ >= 1);
  ACP_EXPECTS(beta_ > 0.0 && beta_ <= 1.0);

  const VotePolicy policy = params_.local_testing
                                ? VotePolicy::kFirstPositive
                                : VotePolicy::kHighestReported;
  ledger_.emplace(policy, n_, m_, params_.votes_per_player);
  negative_ledger_.reset();
  if (params_.veto_fraction > 0.0) {
    negative_ledger_.emplace(VotePolicy::kFirstNegative, n_, m_,
                             params_.negative_votes_per_player);
  }
  votes_cast_.assign(n_, 0);
  trust_.clear();
  if (params_.trust_weighted_advice) {
    if (imported_trust_.size() == n_) {
      trust_ = std::move(imported_trust_);  // carried over from a prior run
    } else {
      trust_.assign(n_, std::vector<int>(n_, 0));
    }
    imported_trust_.clear();
  }

  universe_mask_.clear();
  if (params_.universe.has_value()) {
    ACP_EXPECTS(!params_.universe->empty());
    universe_mask_.assign(m_, false);
    for (ObjectId obj : *params_.universe) {
      ACP_EXPECTS(obj.value() < m_);
      universe_mask_[obj.value()] = true;
    }
  }

  started_ = false;
  candidates_.clear();
  iteration_ = 0;
  attempts_started_ = 0;
}

Round DistillProtocol::rounds_per_invocation() const noexcept {
  return params_.use_advice ? 2 : 1;
}

Round DistillProtocol::step11_rounds() const {
  const double alpha_beta_n = params_.alpha * beta_ * static_cast<double>(n_);
  return rounds_per_invocation() * ceil_rounds(params_.k1 / alpha_beta_n);
}

Round DistillProtocol::step13_rounds() const {
  return rounds_per_invocation() *
         ceil_rounds(params_.k2 / params_.alpha);
}

Round DistillProtocol::step2_iteration_rounds() const {
  return rounds_per_invocation() * ceil_rounds(1.0 / params_.alpha);
}

const VoteLedger& DistillProtocol::ledger() const {
  ACP_EXPECTS(ledger_.has_value());
  return *ledger_;
}

bool DistillProtocol::in_universe(ObjectId object) const {
  return universe_mask_.empty() || universe_mask_[object.value()];
}

std::vector<ObjectId> DistillProtocol::filter_universe(
    std::vector<ObjectId> objects) const {
  if (universe_mask_.empty()) return objects;
  std::erase_if(objects,
                [this](ObjectId obj) { return !in_universe(obj); });
  return objects;
}

void DistillProtocol::enter_step11(Round round) {
  ++attempts_started_;
  phase_ = Phase::kStep11;
  phase_start_ = round;
  phase_end_ = round + step11_rounds();
  probe_whole_universe_ = true;
  candidates_.clear();
  iteration_ = 0;
}

void DistillProtocol::apply_veto(std::vector<ObjectId>& objects, Round begin,
                                 Round end) {
  if (!negative_ledger_.has_value()) return;
  const double threshold =
      params_.veto_fraction * static_cast<double>(n_);
  negative_ledger_->votes_in_window_batch(objects, begin, end, batch_counts_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (static_cast<double>(batch_counts_[i]) <= threshold) {
      objects[kept++] = objects[i];
    }
  }
  objects.resize(kept);
}

void DistillProtocol::on_round_begin(Round round, const Billboard& billboard) {
  ACP_OBS_TIMED_SCOPE("distill.rule_eval");
  ACP_EXPECTS(ledger_.has_value());
  ledger_->ingest(billboard);
  if (negative_ledger_.has_value()) negative_ledger_->ingest(billboard);

  if (!started_) {
    started_ = true;
    enter_step11(round);
    return;
  }
  if (round < phase_end_) return;
  ACP_ASSERT(round == phase_end_);

  switch (phase_) {
    case Phase::kStep11: {
      // Step 1.2: S = objects with at least one vote (whole history — the
      // one-vote rule already caps |S| at f*n).
      candidates_ = filter_universe(ledger_->objects_with_any_vote());
      phase_ = Phase::kStep13;
      phase_start_ = round;
      phase_end_ = round + step13_rounds();
      probe_whole_universe_ = false;
      break;
    }
    case Phase::kStep13: {
      // Step 1.4: C0 = objects with at least k2/4 votes cast during 1.3.
      const auto min_votes = static_cast<Count>(std::max(
          1.0, std::ceil(params_.c0_vote_fraction * params_.k2)));
      candidates_ = filter_universe(ledger_->objects_with_votes_in_window(
          phase_start_, round, min_votes));
      apply_veto(candidates_, phase_start_, round);
      iteration_ = 0;
      if (candidates_.empty()) {
        enter_step11(round);  // c_0 = 0: this ATTEMPT failed, start over
      } else {
        phase_ = Phase::kStep2;
        phase_start_ = round;
        phase_end_ = round + step2_iteration_rounds();
      }
      break;
    }
    case Phase::kStep2: {
      // Step 2.2: survivors need l_t(i) > n/(4 c_t) votes from this
      // iteration's window alone.
      const double ct = static_cast<double>(candidates_.size());
      const double threshold =
          static_cast<double>(n_) / (params_.survival_divisor * ct);
      ledger_->votes_in_window_batch(candidates_, phase_start_, round,
                                     batch_counts_);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < candidates_.size(); ++i) {
        if (static_cast<double>(batch_counts_[i]) > threshold) {
          candidates_[kept++] = candidates_[i];
        }
      }
      candidates_.resize(kept);
      apply_veto(candidates_, phase_start_, round);
      ++iteration_;
      if (candidates_.empty()) {
        enter_step11(round);  // while loop exit: invoke ATTEMPT again
      } else {
        phase_start_ = round;
        phase_end_ = round + step2_iteration_rounds();
      }
      break;
    }
  }
}

std::optional<ObjectId> DistillProtocol::choose_probe(PlayerId player,
                                                      Round round, Rng& rng) {
  ACP_EXPECTS(started_);
  const Round offset = round - phase_start_;
  ACP_ASSERT(offset >= 0 && round < phase_end_);

  const bool advice_round =
      params_.use_advice && (offset % 2 == 1);
  if (advice_round) {
    // Seek advice: probe the object a random player votes for, if it
    // exists (and lies in the allowed universe). Figure 1 picks the player
    // uniformly; the trust-weighted variant (§6 exploration) weights the
    // pick by this player's local experience with past advice.
    PlayerId j{rng.index(n_)};
    if (params_.trust_weighted_advice) {
      // Weight w_q: distrusted advisors (negative trust — under local
      // testing a vote that led to a bad object is proof of dishonesty or
      // of an erroneous vote) get weight 0; unknown advisors weight 1;
      // proven-good advisors trust+1. Linear-scan sampling; the total is
      // positive because unexplored players always carry weight 1.
      const auto& trust_row = trust_[player.value()];
      const auto weight_of = [](int t) {
        return t < 0 ? std::uint64_t{0} : static_cast<std::uint64_t>(t) + 1;
      };
      std::uint64_t total = 0;
      for (int t : trust_row) total += weight_of(t);
      if (total > 0) {
        std::uint64_t pick = rng.uniform_below(total);
        for (std::size_t q = 0; q < n_; ++q) {
          const std::uint64_t w = weight_of(trust_row[q]);
          if (pick < w) {
            j = PlayerId{q};
            break;
          }
          pick -= w;
        }
      }
    }
    // Count-then-select over the advisor's (tiny, <= f) vote list: the
    // same draw sequence as materializing the admissible subset — one
    // rng.index(count) iff nonempty, picking the k-th admissible vote —
    // but allocation-free and without mutable scratch, which choose_probe
    // must not touch (it runs concurrently across players under the
    // parallel round kernel).
    const auto votes = ledger_->votes_of(j);
    std::size_t admissible = 0;
    for (ObjectId obj : votes) {
      if (in_universe(obj)) ++admissible;
    }
    if (admissible == 0) return std::nullopt;
    std::size_t pick = rng.index(admissible);
    for (ObjectId obj : votes) {
      if (!in_universe(obj)) continue;
      if (pick == 0) return obj;
      --pick;
    }
    ACP_ASSERT(false);  // the count above covers every admissible vote
    return std::nullopt;
  }

  // Candidate probe: a uniformly random object of the current set.
  if (probe_whole_universe_) {
    if (params_.universe.has_value()) {
      return (*params_.universe)[rng.index(params_.universe->size())];
    }
    return ObjectId{rng.index(m_)};
  }
  if (candidates_.empty()) return std::nullopt;
  return candidates_[rng.index(candidates_.size())];
}

StepOutcome DistillProtocol::on_probe_result(PlayerId player, Round /*round*/,
                                             ObjectId object, double value,
                                             double /*cost*/,
                                             bool locally_good, Rng& rng) {
  if (params_.trust_weighted_advice && params_.local_testing) {
    // Settle trust against every public voter of the probed object: the
    // probe verified the object, and the billboard attributes the votes.
    // One personally-verified bad object burns all its endorsers.
    auto& trust_row = trust_[player.value()];
    for (PlayerId voter : ledger_->voters_of(object)) {
      if (locally_good) {
        ++trust_row[voter.value()];
      } else {
        trust_row[voter.value()] =
            std::min(trust_row[voter.value()], -1);
      }
    }
  }
  StepOutcome out;
  if (!params_.local_testing) {
    // §5.3: report every probe truthfully; the highest-reported ledger
    // derives the (mutable) vote; nobody halts before the horizon.
    out.post = ProbeReport{object, value, /*positive=*/false};
    return out;
  }

  bool positive = locally_good;
  if (!locally_good && params_.error_vote_prob > 0.0 &&
      votes_cast_[player.value()] < params_.votes_per_player &&
      rng.bernoulli(params_.error_vote_prob)) {
    positive = true;  // §4.1: an honest mistake burns a vote slot
  }
  if (positive) ++votes_cast_[player.value()];
  out.post = ProbeReport{object, value, positive};
  out.halt = locally_good;  // Figure 1's Termination rule
  return out;
}

bool DistillProtocol::wants_halt_all(Round round) const {
  return !params_.local_testing && round + 1 >= *params_.horizon;
}

}  // namespace acp
