#include "acp/core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "acp/core/distill_params.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

DistillParams make_hp_params(double alpha, std::size_t n, double c1,
                             double c2) {
  ACP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  ACP_EXPECTS(n >= 2);
  ACP_EXPECTS(c1 > 0.0 && c2 > 0.0);
  DistillParams params;
  params.alpha = alpha;
  const double lg = std::log2(static_cast<double>(n));
  params.k1 = std::max(1.0, c1 * lg);
  params.k2 = std::max(4.0, c2 * lg);
  return params;
}

DistillParams make_no_local_testing_params(double alpha, double beta,
                                           std::size_t n, double k_h) {
  DistillParams params = make_hp_params(alpha, n);
  params.local_testing = false;
  params.horizon = theory::hp_horizon(alpha, beta, n, k_h);
  return params;
}

namespace theory {

double delta(double alpha, std::size_t n) { return distill_delta(alpha, n); }

double distill_expected_rounds(double alpha, double beta, std::size_t n) {
  return theorem4_bound(alpha, beta, n);
}

double baseline_expected_rounds(double alpha, double beta, std::size_t n) {
  return baseline_bound(alpha, beta, n);
}

double theorem1_floor(double alpha, double beta, std::size_t n,
                      std::size_t m) {
  ACP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  ACP_EXPECTS(n >= 1 && m >= 1);
  const double mm = static_cast<double>(m);
  const double urn = (mm + 1.0) / (beta * mm + 1.0);
  return urn / (alpha * static_cast<double>(n));
}

double theorem2_floor(double alpha, double beta) {
  ACP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  return 0.5 * std::min(1.0 / alpha, 1.0 / beta);
}

double corollary5_bound(double eps) {
  ACP_EXPECTS(eps > 0.0);
  return 1.0 / eps;
}

Round hp_horizon(double alpha, double beta, std::size_t n, double k_h) {
  ACP_EXPECTS(k_h > 0.0);
  return ceil_rounds(k_h * baseline_bound(alpha, beta, n));
}

double theorem12_cost_bound(double q0, double alpha, std::size_t n,
                            std::size_t m) {
  ACP_EXPECTS(q0 >= 1.0);
  ACP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  ACP_EXPECTS(n >= 2 && m >= 1);
  return q0 * static_cast<double>(m) * std::log2(static_cast<double>(n)) /
         (alpha * static_cast<double>(n));
}

Round guess_alpha_epoch_rounds(std::size_t epoch, double beta, std::size_t n,
                               double k3) {
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  ACP_EXPECTS(n >= 2);
  ACP_EXPECTS(k3 > 0.0);
  const double nn = static_cast<double>(n);
  const double base =
      k3 * std::log2(nn) * (1.0 / (beta * nn) + 1.0);
  return ceil_rounds(std::ldexp(base, static_cast<int>(epoch)));
}

double trivial_expected_rounds(double beta) {
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  return 1.0 / beta;
}

double lemma9_f(const std::vector<long long>& sigma) {
  ACP_EXPECTS(sigma.size() >= 1);
  double f = 0.0;
  for (std::size_t t = 1; t < sigma.size(); ++t) {
    ACP_EXPECTS(sigma[t] > 0 && sigma[t - 1] > 0);
    f += static_cast<double>(sigma[t]) / static_cast<double>(sigma[t - 1]);
  }
  return f;
}

double lemma9_g(const std::vector<long long>& sigma, double a) {
  ACP_EXPECTS(a > 0.0 && a < 1.0);
  double g = 0.0;
  for (long long c : sigma) {
    ACP_EXPECTS(c > 0);
    g += std::pow(a, 1.0 / static_cast<double>(c));
  }
  return g;
}

double lemma9_bound(const std::vector<long long>& sigma, double a) {
  ACP_EXPECTS(!sigma.empty());
  return (std::ceil(lemma9_f(sigma)) + 1.0) *
         std::pow(a, 1.0 / static_cast<double>(sigma.front()));
}

double lemma9_bound_corrected(const std::vector<long long>& sigma,
                              double a) {
  ACP_EXPECTS(!sigma.empty());
  return (std::ceil(lemma9_f(sigma)) + 2.0) *
         std::pow(a, 1.0 / static_cast<double>(sigma.front()));
}

double lemma9_g_prefix(const std::vector<long long>& sigma, double a) {
  ACP_EXPECTS(!sigma.empty());
  std::vector<long long> prefix(sigma.begin(), sigma.end() - 1);
  if (prefix.empty()) return 0.0;
  return lemma9_g(prefix, a);
}

}  // namespace theory
}  // namespace acp
