#include "acp/core/cost_classes.hpp"

#include <cmath>

#include "acp/core/theory.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/math.hpp"

namespace acp {

CostClassProtocol::CostClassProtocol(CostClassParams params)
    : params_(params) {
  ACP_EXPECTS(params_.alpha > 0.0 && params_.alpha <= 1.0);
  ACP_EXPECTS(params_.k_h > 0.0);
  ACP_EXPECTS(params_.c1 > 0.0 && params_.c2 > 0.0);
}

void CostClassProtocol::initialize(const WorldView& world,
                                   std::size_t num_players) {
  world_.emplace(world);
  n_ = num_players;
  ACP_EXPECTS(n_ >= 2);

  // Partition by cost class; costs are public so this is honest knowledge.
  class_objects_.clear();
  for (std::size_t i = 0; i < world.num_objects(); ++i) {
    const ObjectId obj{i};
    const double cost = world.cost(obj);
    ACP_EXPECTS(cost >= 1.0);  // w.l.o.g. in §5.2: minimal cost is 1
    const auto cls = static_cast<std::size_t>(std::floor(std::log2(cost)));
    if (cls >= class_objects_.size()) class_objects_.resize(cls + 1);
    class_objects_[cls].push_back(obj);
  }
  ACP_EXPECTS(!class_objects_.empty());

  started_ = false;
  class_ = 0;
  inner_.reset();
}

const std::vector<ObjectId>& CostClassProtocol::class_objects(
    std::size_t cls) const {
  ACP_EXPECTS(cls < class_objects_.size());
  return class_objects_[cls];
}

void CostClassProtocol::start_class(std::size_t cls, Round round) {
  class_ = cls;
  const auto& objects = class_objects_[cls];
  if (objects.empty()) {
    // Empty class: skip instantly by giving it a zero-length horizon.
    inner_.reset();
    class_end_ = round;
    return;
  }
  const double beta_i = 1.0 / static_cast<double>(objects.size());
  DistillParams inner_params =
      make_hp_params(params_.alpha, n_, params_.c1, params_.c2);
  inner_params.universe = objects;
  inner_params.beta_override = beta_i;
  inner_ = std::make_unique<DistillProtocol>(inner_params);
  inner_->initialize(*world_, n_);
  class_end_ = round + theory::hp_horizon(params_.alpha, beta_i, n_,
                                          params_.k_h);
}

void CostClassProtocol::on_round_begin(Round round,
                                       const Billboard& billboard) {
  ACP_EXPECTS(world_.has_value());
  if (!started_) {
    started_ = true;
    start_class(0, round);
  }
  // Advance past finished (or empty) classes; cycle back to class 0 if the
  // whole schedule ran dry — the w.h.p. analysis makes a wrap rare.
  while (round >= class_end_) {
    start_class((class_ + 1) % class_objects_.size(), round);
  }
  if (inner_) inner_->on_round_begin(round, billboard);
}

std::optional<ObjectId> CostClassProtocol::choose_probe(PlayerId player,
                                                        Round round,
                                                        Rng& rng) {
  if (!inner_) return std::nullopt;
  return inner_->choose_probe(player, round, rng);
}

StepOutcome CostClassProtocol::on_probe_result(PlayerId player, Round round,
                                               ObjectId object, double value,
                                               double cost, bool locally_good,
                                               Rng& rng) {
  ACP_EXPECTS(inner_ != nullptr);
  return inner_->on_probe_result(player, round, object, value, cost,
                                 locally_good, rng);
}

}  // namespace acp
