// Parameters of Algorithm DISTILL (Figure 1) and its paper variants.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "acp/util/types.hpp"

namespace acp {

struct DistillParams {
  /// Assumed fraction of honest players. The paper assumes alpha is known
  /// (§2.3); §5.1's halving wrapper removes the assumption.
  double alpha = 0.5;

  /// Figure 1's constants. The proof of Theorem 4 needs k1 >= 1 and
  /// k2 >= 192 for its explicit Chernoff constants; empirically far smaller
  /// values already give the claimed behavior, and the benches use these
  /// practical defaults. DISTILL^HP (Theorem 11) sets both to Θ(log n).
  double k1 = 4.0;
  double k2 = 16.0;

  /// f of §4.1: positive votes allowed per player. 1 reproduces Figure 1.
  std::size_t votes_per_player = 1;

  /// §4.1 erroneous votes: probability that an honest player mistakenly
  /// posts a positive report after probing a bad object. The player keeps
  /// probing (it can still locally test), but the wasted vote consumes one
  /// of its f vote slots on the read side.
  double error_vote_prob = 0.0;

  /// Ablation knob: Step 2.2's survival threshold is n / (survival_divisor
  /// * c_t); the paper uses 4 (half the expected vote count).
  double survival_divisor = 4.0;

  /// Step 1.4's threshold is c0_vote_fraction * k2 votes; the paper uses
  /// 1/4 (half the expected k2/2 votes).
  double c0_vote_fraction = 0.25;

  /// Ablation knob: disable the advice half of PROBE&SEEKADVICE (the
  /// Lemma 6 termination wrinkle). Invocations then take 1 round, not 2.
  bool use_advice = true;

  /// Override the world's beta in the Step 1.1 length k1/(alpha beta n) —
  /// used by the cost-class schedule (§5.2), which assumes beta_i = 1/m_i.
  std::optional<double> beta_override;

  /// Restrict the search to a subset of objects (cost-class schedule).
  /// Candidate sets, random probes, and followed advice are all filtered
  /// to this universe.
  std::optional<std::vector<ObjectId>> universe;

  /// §6 exploration ("Is slander useless?"): when > 0, negative reports
  /// veto candidates — an object is dropped from C0/C_{t+1} if it drew
  /// more than veto_fraction * n negative votes inside the counting
  /// window. 0 (the default) reproduces Figure 1, which ignores negative
  /// reports entirely. The abl3 bench shows why the paper's choice is the
  /// safe one: a slander adversary can spend its negative-vote budget to
  /// veto the good object.
  double veto_fraction = 0.0;

  /// Read-side budget of negative votes per player (first f_neg distinct
  /// negative reports count), used only when veto_fraction > 0. Honest
  /// players report every bad probe negatively, so this is typically
  /// larger than the positive budget.
  std::size_t negative_votes_per_player = 4;

  /// §6 exploration ("can a notion of trust be useful?"): when true, the
  /// SeekAdvice step samples the advised player weighted by local trust.
  /// Trust is settled against the PUBLIC VOTERS of every personally
  /// probed object: a verified-good probe gives each of its endorsers +1;
  /// a verified-bad probe marks each endorser distrusted (under local
  /// testing, endorsing a bad object is proof of dishonesty or error).
  /// Weights: distrusted = 0, unknown = 1, trusted = trust + 1. Purely
  /// local state — nothing is posted, so the adversary gains no channel.
  /// Requires local testing. Figure 1 uses the uniform choice (false).
  bool trust_weighted_advice = false;

  /// true: the Figure 1 algorithm (halt on probing a good object).
  /// false: the §5.3 variant without local testing — votes are
  /// highest-value-so-far, nobody halts early, and everyone stops at
  /// `horizon` rounds.
  bool local_testing = true;

  /// Required when local_testing == false: the prescribed stop time.
  std::optional<Round> horizon;
};

/// DISTILL^HP (Theorem 11): k1, k2 = Θ(log n).
[[nodiscard]] DistillParams make_hp_params(double alpha, std::size_t n,
                                           double c1 = 2.0, double c2 = 8.0);

/// §5.3 variant: DISTILL^HP without local testing, horizon of
/// k_h * (log n/(alpha beta n) + log n/alpha) rounds.
[[nodiscard]] DistillParams make_no_local_testing_params(double alpha,
                                                         double beta,
                                                         std::size_t n,
                                                         double k_h = 8.0);

}  // namespace acp
