// Closed-form theoretical quantities from the paper, used by benches and
// tests to draw the predicted curves next to the measured ones.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/util/math.hpp"
#include "acp/util/types.hpp"

namespace acp::theory {

/// Notation 3: Delta = log(1/(1-alpha) + log n).
[[nodiscard]] double delta(double alpha, std::size_t n);

/// Theorem 4 upper bound shape: 1/(alpha beta n) + (1/alpha) log n / Delta.
[[nodiscard]] double distill_expected_rounds(double alpha, double beta,
                                             std::size_t n);

/// Prior work under round robin (§1.2): log n/(alpha beta n) + log n/alpha.
[[nodiscard]] double baseline_expected_rounds(double alpha, double beta,
                                              std::size_t n);

/// Theorem 1 lower bound: per-player expected probes >= ~1/(alpha beta n);
/// this returns the exact urn value (m+1)/(beta m+1) spread over alpha*n
/// players per round.
[[nodiscard]] double theorem1_floor(double alpha, double beta, std::size_t n,
                                    std::size_t m);

/// Theorem 2 lower bound: B/2 where B = min{1/alpha, 1/beta}.
[[nodiscard]] double theorem2_floor(double alpha, double beta);

/// Corollary 5: with m = n and alpha = 1 - n^-eps, expected time O(1/eps).
[[nodiscard]] double corollary5_bound(double eps);

/// Theorem 11 horizon: k_h * (log n/(alpha beta n) + log n/alpha) rounds.
[[nodiscard]] Round hp_horizon(double alpha, double beta, std::size_t n,
                               double k_h = 8.0);

/// Theorem 12 cost bound shape: q0 * m log n / (alpha n).
[[nodiscard]] double theorem12_cost_bound(double q0, double alpha,
                                          std::size_t n, std::size_t m);

/// §5.1 epoch length for guess i: 2^i * k3 * log n * (1/(beta n) + 1).
[[nodiscard]] Round guess_alpha_epoch_rounds(std::size_t epoch, double beta,
                                             std::size_t n, double k3 = 4.0);

/// Trivial no-billboard algorithm: expected 1/beta rounds.
[[nodiscard]] double trivial_expected_rounds(double beta);

// -- Lemma 9's quantities (the technical lemma behind Lemma 10) -----------

/// f(sigma) = sum_{t=1}^{T} c_t / c_{t-1} for a sequence of positive
/// integers sigma = {c_0, ..., c_T}.
[[nodiscard]] double lemma9_f(const std::vector<long long>& sigma);

/// g_a(sigma) = sum_{t=0}^{T} a^{1/c_t}, 0 < a < 1.
[[nodiscard]] double lemma9_g(const std::vector<long long>& sigma, double a);

/// Lemma 9's upper bound as literally stated in the paper:
/// (ceil(f(sigma)) + 1) * a^{1/c_0}.
///
/// Reproduction errata (found by the property tests; full discussion in
/// tests/lemmas_test.cpp): the statement quantifies over ALL 0 < a < 1
/// and sums g over t = 0..T, and in that generality it is false —
///  (i) sequences ending in a tiny element ({1000, 999, 998, 1}, a=0.01)
///      break the t = 0..T form: the last ratio adds ~0 to f but a full
///      a^{1/1} term to g;
///  (ii) for a close to 1, even the t = 0..T-1 (prefix) form breaks:
///      halving sequences buy ~1 prefix term per 1/2 unit of f while
///      every term is ~1.
/// What Lemma 10 actually needs — the prefix sum, in the regime
/// a^{1/c_0} <= 1/2 (there a = e^{-n/16}, c_0 <= 4n/k2, so a^{1/c_0} =
/// e^{-k2/64} <= 1/2 whenever k2 >= 45; the paper takes k2 >= 192) —
/// does hold, and the constant is even generous: successive halvings
/// square the term. The property tests verify exactly that.
[[nodiscard]] double lemma9_bound(const std::vector<long long>& sigma,
                                  double a);

/// The full-sum (t = 0..T) repair under the same side condition
/// a^{1/c_0} <= 1/2: (ceil(f(sigma)) + 2) * a^{1/c_0}. The extra +1
/// absorbs the final element's term (c_T <= c_0 implies a^{1/c_T} <=
/// a^{1/c_0}).
[[nodiscard]] double lemma9_bound_corrected(
    const std::vector<long long>& sigma, double a);

/// g over the prefix {c_0..c_{T-1}} — the form Lemma 10 actually sums.
[[nodiscard]] double lemma9_g_prefix(const std::vector<long long>& sigma,
                                     double a);

}  // namespace acp::theory
