// §5.2 — Multiple costs (Theorem 12).
//
// Objects are aggregated into cost classes; class i holds the objects with
// cost in [2^i, 2^(i+1)). The schedule runs DISTILL^HP instance after
// instance: first only on class 0, then class 1, and so on, each instance
// under the minimal assumption beta_i = 1/m_i (one good object in the
// class) and for its high-probability horizon. A player halts as soon as
// it probes a good object, so the total cost to an honest player is within
// O(log n / alpha) of the cheapest good object's cost q0 (for m = Θ(n)).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "acp/core/distill.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

struct CostClassParams {
  /// Known fraction of honest players.
  double alpha = 0.5;
  /// Horizon constant: each class instance runs for
  /// k_h * (log n/(alpha beta_i n) + log n/alpha) rounds.
  double k_h = 8.0;
  /// DISTILL^HP constants for the inner instances.
  double c1 = 2.0;
  double c2 = 8.0;
};

class CostClassProtocol final : public Protocol {
 public:
  explicit CostClassProtocol(CostClassParams params);

  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;

  /// Cost class currently being searched.
  [[nodiscard]] std::size_t current_class() const noexcept { return class_; }
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return class_objects_.size();
  }
  [[nodiscard]] const std::vector<ObjectId>& class_objects(
      std::size_t cls) const;

  /// Pure delegation to the inner DISTILL (class transitions happen only
  /// in on_round_begin), so the inner protocol's safety carries over.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  void start_class(std::size_t cls, Round round);

  CostClassParams params_;
  std::optional<WorldView> world_;
  std::size_t n_ = 0;

  /// Objects per cost class (class index = floor(log2 cost), costs >= 1).
  std::vector<std::vector<ObjectId>> class_objects_;

  std::unique_ptr<DistillProtocol> inner_;
  std::size_t class_ = 0;
  Round class_end_ = 0;
  bool started_ = false;
};

}  // namespace acp
