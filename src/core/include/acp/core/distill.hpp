// Algorithm DISTILL (Figure 1) — the paper's main contribution.
//
// The algorithm repeatedly invokes subroutine ATTEMPT:
//
//   Prepare initial candidate set
//   1.1  for k1/(alpha beta n) times: PROBE&SEEKADVICE({1..m})
//   1.2  S = objects with at least one vote
//   1.3  for k2/alpha times:          PROBE&SEEKADVICE(S)
//   1.4  C0 = objects with >= k2/4 votes at Step 1.3
//   Distill candidate set
//   2    while c_t > 0:
//   2.1    for 1/alpha times:         PROBE&SEEKADVICE(C_t)
//   2.2    C_{t+1} = { i in C_t | l_t(i) > n/(4 c_t) }
//
// PROBE&SEEKADVICE(S): probe a random object of S, then probe the object a
// random player votes for (if it has a vote) — two rounds, one probe each.
// Whenever a good object is probed the player posts the result (its *vote*)
// and halts.
//
// All honest players are symmetric and compute the phase schedule from the
// shared billboard, so one DistillProtocol instance drives them all: the
// candidate sets S and C_t, the vote counts l_t(i), and the phase
// boundaries are identical across players; only the random probes differ.
#pragma once

#include <optional>
#include <vector>

#include "acp/billboard/vote_ledger.hpp"
#include "acp/core/distill_params.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

class DistillProtocol final : public Protocol {
 public:
  enum class Phase { kStep11, kStep13, kStep2 };

  explicit DistillProtocol(DistillParams params);

  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;
  [[nodiscard]] bool wants_halt_all(Round round) const override;
  /// choose_probe reads only the round-frozen shared tables (candidate
  /// set, ledger, phase window) and per-player state that no other
  /// player's on_probe_result touches (its own trust row), so players may
  /// evaluate concurrently.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

  // -- Introspection (tests, benches, and the wrapper protocols) ----------
  [[nodiscard]] const DistillParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  /// Current candidate set (S during Step 1.3, C_t during Step 2). During
  /// Step 1.1 the candidate set is the whole universe and not materialized.
  [[nodiscard]] const std::vector<ObjectId>& candidates() const noexcept {
    return candidates_;
  }
  /// Completed ATTEMPT invocations (failed attempts that restarted).
  [[nodiscard]] std::size_t attempts_started() const noexcept {
    return attempts_started_;
  }
  /// Iteration index t within the current Step 2.
  [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
  [[nodiscard]] const VoteLedger& ledger() const;
  /// First round of the current phase window (counting scope of l_t).
  [[nodiscard]] Round phase_window_start() const noexcept {
    return phase_start_;
  }
  /// First round after the current phase window.
  [[nodiscard]] Round phase_window_end() const noexcept { return phase_end_; }

  /// Trust-weighted advice state (§6 exploration): the per-player trust
  /// tables, exportable so repeated searches can carry learned trust
  /// across runs (Byzantine identities persist between searches).
  [[nodiscard]] const std::vector<std::vector<int>>& trust_table() const {
    return trust_;
  }
  /// Seed the trust tables of the NEXT initialize() call (no-op unless
  /// trust_weighted_advice is on and the dimensions match).
  void import_trust_table(std::vector<std::vector<int>> table) {
    imported_trust_ = std::move(table);
  }

  // Phase lengths in rounds (after initialize()).
  [[nodiscard]] Round rounds_per_invocation() const noexcept;
  [[nodiscard]] Round step11_rounds() const;
  [[nodiscard]] Round step13_rounds() const;
  [[nodiscard]] Round step2_iteration_rounds() const;

 private:
  void enter_step11(Round round);
  /// Veto rule of the §6 variant: drop candidates whose negative votes in
  /// [begin, end) exceed veto_fraction * n. No-op when veto is disabled.
  void apply_veto(std::vector<ObjectId>& objects, Round begin, Round end);
  /// Keep only universe members (no-op without a universe restriction).
  [[nodiscard]] std::vector<ObjectId> filter_universe(
      std::vector<ObjectId> objects) const;
  [[nodiscard]] bool in_universe(ObjectId object) const;

  DistillParams params_;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  double beta_ = 0.0;

  std::optional<VoteLedger> ledger_;
  /// Slander ledger — only when params_.veto_fraction > 0 (§6 variant).
  std::optional<VoteLedger> negative_ledger_;

  bool started_ = false;
  Phase phase_ = Phase::kStep11;
  Round phase_start_ = 0;
  Round phase_end_ = 0;
  std::vector<ObjectId> candidates_;
  bool probe_whole_universe_ = false;
  std::size_t iteration_ = 0;
  std::size_t attempts_started_ = 0;

  /// Universe membership mask (only when params_.universe is set).
  std::vector<bool> universe_mask_;

  /// Per-player count of positive posts already made (vote budget f).
  std::vector<std::size_t> votes_cast_;

  /// Trust-weighted advice (§6 exploration): per player, local trust in
  /// every other player, settled against the public voters of every
  /// personally probed object. Allocated only when
  /// params_.trust_weighted_advice is set.
  std::vector<std::vector<int>> trust_;
  std::vector<std::vector<int>> imported_trust_;

  /// Scratch for the batched window queries of the phase transitions
  /// (Step 2.2 survivor filter, veto rule). Only touched from
  /// on_round_begin — never from the concurrency-safe choose_probe.
  std::vector<Count> batch_counts_;
};

}  // namespace acp
