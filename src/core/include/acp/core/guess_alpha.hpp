// §5.1 — Guessing alpha by halving.
//
// DISTILL hardwires alpha. The wrapper removes the assumption: for epochs
// i = 0, 1, 2, ..., run DISTILL^HP with alpha := 2^-i for exactly
// 2^i * k3 * log n * (1/(beta n) + 1) rounds. Once 2^-i drops to or below
// the true alpha_0, that epoch succeeds w.h.p.; earlier epochs leave only
// benign after-effects (some players already satisfied, some dishonest
// votes cast). Total time is at most twice the last epoch's.
#pragma once

#include <memory>
#include <optional>

#include "acp/core/distill.hpp"
#include "acp/engine/protocol.hpp"

namespace acp {

struct GuessAlphaParams {
  /// Epoch-length constant k3 of §5.1.
  double k3 = 4.0;
  /// DISTILL^HP constants for the inner instances.
  double c1 = 2.0;
  double c2 = 8.0;
};

class GuessAlphaProtocol final : public Protocol {
 public:
  explicit GuessAlphaProtocol(GuessAlphaParams params = {});

  void initialize(const WorldView& world, std::size_t num_players) override;
  void on_round_begin(Round round, const Billboard& billboard) override;
  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player,
                                                     Round round,
                                                     Rng& rng) override;
  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId object,
                              double value, double cost, bool locally_good,
                              Rng& rng) override;

  /// Current epoch index i (alpha guess is 2^-i).
  [[nodiscard]] std::size_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] double current_alpha_guess() const;
  [[nodiscard]] const DistillProtocol& inner() const;

  /// Pure delegation to the inner DISTILL (epoch swaps happen only in
  /// on_round_begin), so the inner protocol's safety carries over.
  [[nodiscard]] bool parallel_choose_safe() const override { return true; }

 private:
  void start_epoch(std::size_t epoch, Round round);

  GuessAlphaParams params_;
  std::optional<WorldView> world_;
  std::size_t n_ = 0;
  std::size_t max_epoch_ = 0;

  std::unique_ptr<DistillProtocol> inner_;
  std::size_t epoch_ = 0;
  Round epoch_end_ = 0;
  bool started_ = false;
};

}  // namespace acp
