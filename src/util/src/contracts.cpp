#include "acp/util/contracts.hpp"

#include <sstream>

namespace acp {

namespace {
std::string format_message(const char* kind, const char* condition,
                           std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": " << kind
     << " violated: " << condition << " (in " << loc.function_name() << ')';
  return os.str();
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* condition,
                                     std::source_location loc)
    : std::logic_error(format_message(kind, condition, loc)),
      kind_(kind),
      condition_(condition) {}

namespace detail {
void contract_fail(const char* kind, const char* condition,
                   std::source_location loc) {
  throw ContractViolation(kind, condition, loc);
}
}  // namespace detail

}  // namespace acp
