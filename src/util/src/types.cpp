#include "acp/util/types.hpp"

#include <ostream>

namespace acp {

std::ostream& operator<<(std::ostream& os, PlayerId id) {
  return os << "player#" << id.value();
}

std::ostream& operator<<(std::ostream& os, ObjectId id) {
  return os << "object#" << id.value();
}

}  // namespace acp
