// Strong identifier types shared across the acp libraries.
//
// PlayerId and ObjectId are distinct wrapper types (Core Guidelines I.4:
// precisely and strongly typed interfaces) so a player index can never be
// passed where an object index is expected. Round is a plain signed count
// because it participates in arithmetic everywhere.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace acp {

/// Round counter of the synchronous engine. Round 0 is the first round.
using Round = std::int64_t;

/// Number of probes / posts; signed to keep arithmetic warnings quiet.
using Count = std::int64_t;

namespace detail {

/// CRTP-free strong index: a size_t with a phantom tag.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(std::size_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::size_t value() const noexcept { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  std::size_t value_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace detail

struct PlayerTag {};
struct ObjectTag {};

/// Index of a player, dense in [0, n).
using PlayerId = detail::StrongId<PlayerTag>;
/// Index of an object, dense in [0, m).
using ObjectId = detail::StrongId<ObjectTag>;

std::ostream& operator<<(std::ostream& os, PlayerId id);
std::ostream& operator<<(std::ostream& os, ObjectId id);

}  // namespace acp

template <>
struct std::hash<acp::PlayerId> {
  std::size_t operator()(acp::PlayerId id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};

template <>
struct std::hash<acp::ObjectId> {
  std::size_t operator()(acp::ObjectId id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};
