// Contract checking for the acp libraries.
//
// Follows the C++ Core Guidelines I.5/I.7 style: preconditions and
// postconditions are stated at the interface and checked at run time.
// Violations throw acp::ContractViolation so tests can observe them and so
// simulation drivers can fail a single trial without aborting the process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace acp {

/// Thrown when an ACP_EXPECTS / ACP_ENSURES / ACP_ASSERT condition fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* condition,
                    std::source_location loc);

  [[nodiscard]] const char* kind() const noexcept { return kind_; }
  [[nodiscard]] const char* condition() const noexcept { return condition_; }

 private:
  const char* kind_;
  const char* condition_;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                std::source_location loc);
}  // namespace detail

}  // namespace acp

/// Precondition check. Use at function entry.
#define ACP_EXPECTS(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::acp::detail::contract_fail("precondition", #cond,             \
                                   std::source_location::current()); \
    }                                                                 \
  } while (false)

/// Postcondition check. Use before returning.
#define ACP_ENSURES(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::acp::detail::contract_fail("postcondition", #cond,            \
                                   std::source_location::current()); \
    }                                                                 \
  } while (false)

/// Internal invariant check.
#define ACP_ASSERT(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::acp::detail::contract_fail("invariant", #cond,                \
                                   std::source_location::current()); \
    }                                                                 \
  } while (false)
