// Small integer/real math helpers used throughout the simulation.
#pragma once

#include <cmath>
#include <cstdint>

#include "acp/util/contracts.hpp"

namespace acp {

/// ceil(a / b) for positive integers.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) {
  ACP_EXPECTS(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

/// ceil(x) as a positive round count, at least `floor_value`.
[[nodiscard]] inline std::int64_t ceil_rounds(double x,
                                              std::int64_t floor_value = 1) {
  ACP_EXPECTS(std::isfinite(x));
  const auto c = static_cast<std::int64_t>(std::ceil(x));
  return c < floor_value ? floor_value : c;
}

/// log2 of a positive value.
[[nodiscard]] inline double log2_of(double x) {
  ACP_EXPECTS(x > 0.0);
  return std::log2(x);
}

/// Natural log of a positive value.
[[nodiscard]] inline double ln_of(double x) {
  ACP_EXPECTS(x > 0.0);
  return std::log(x);
}

/// The paper's Notation 3: Delta = log(1/(1-alpha) + log n), base 2.
/// For alpha == 1 the first term is unbounded; callers should clamp alpha.
[[nodiscard]] inline double distill_delta(double alpha, std::size_t n) {
  ACP_EXPECTS(alpha > 0.0 && alpha < 1.0);
  ACP_EXPECTS(n >= 2);
  const double inner = 1.0 / (1.0 - alpha) + std::log2(static_cast<double>(n));
  return std::log2(inner);
}

/// Theorem 4 upper-bound shape: 1/(alpha beta n) + (1/alpha) log n / Delta.
[[nodiscard]] inline double theorem4_bound(double alpha, double beta,
                                           std::size_t n) {
  ACP_EXPECTS(alpha > 0.0 && alpha < 1.0);
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  ACP_EXPECTS(n >= 2);
  const double nn = static_cast<double>(n);
  return 1.0 / (alpha * beta * nn) +
         (1.0 / alpha) * std::log2(nn) / distill_delta(alpha, n);
}

/// Prior-work (EC'04 under round robin) shape: log n/(alpha beta n) + log n/alpha.
[[nodiscard]] inline double baseline_bound(double alpha, double beta,
                                           std::size_t n) {
  ACP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  ACP_EXPECTS(beta > 0.0 && beta <= 1.0);
  ACP_EXPECTS(n >= 2);
  const double nn = static_cast<double>(n);
  const double lg = std::log2(nn);
  return lg / (alpha * beta * nn) + lg / alpha;
}

}  // namespace acp
