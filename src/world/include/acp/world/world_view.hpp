// WorldView — the public knowledge a protocol is allowed to see.
//
// Paper §2: object costs are known, values are unknown until probed. The
// model parameters m, beta, and the local-testing threshold are assumed to
// be common knowledge (DISTILL's code uses beta; the threshold defines
// local testing). Honest protocol code receives a WorldView, never a World,
// so it cannot cheat by reading ground-truth values or goodness.
#pragma once

#include "acp/world/world.hpp"

namespace acp {

class WorldView {
 public:
  explicit WorldView(const World& world) : world_(&world) {}

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return world_->num_objects();
  }
  [[nodiscard]] double beta() const noexcept { return world_->beta(); }
  [[nodiscard]] GoodnessModel model() const noexcept {
    return world_->model();
  }
  [[nodiscard]] double threshold() const noexcept {
    return world_->threshold();
  }
  /// Cost is public (paper §2).
  [[nodiscard]] double cost(ObjectId i) const { return world_->cost(i); }

 private:
  const World* world_;
};

}  // namespace acp
