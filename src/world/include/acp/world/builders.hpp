// World builders for the experiment workloads.
#pragma once

#include <cstddef>

#include "acp/rng/rng.hpp"
#include "acp/world/world.hpp"

namespace acp {

/// Parameters for the standard unit-cost world.
struct UnitCostWorldOptions {
  std::size_t num_objects = 0;
  std::size_t num_good = 0;
  GoodnessModel model = GoodnessModel::kLocalTesting;
  /// Values of bad objects are uniform in [bad_lo, bad_hi); good objects in
  /// [good_lo, good_hi). threshold must separate the ranges for local testing.
  double bad_lo = 0.0;
  double bad_hi = 0.4;
  double good_lo = 0.6;
  double good_hi = 1.0;
  double threshold = 0.5;
};

/// Unit-cost world with `num_good` good objects at random positions.
[[nodiscard]] World make_unit_cost_world(const UnitCostWorldOptions& opts,
                                         Rng& rng);

/// Convenience: m objects, g good, unit costs, local testing.
[[nodiscard]] World make_simple_world(std::size_t m, std::size_t g, Rng& rng);

/// Parameters for the general-cost world of §5.2 (Theorem 12).
struct CostClassWorldOptions {
  /// Number of cost classes; class i holds objects with cost in [2^i, 2^(i+1)).
  std::size_t num_classes = 4;
  /// Objects per class.
  std::size_t objects_per_class = 64;
  /// Index of the class containing the cheapest good object (q0 ~ 2^i0).
  std::size_t cheapest_good_class = 0;
  /// Good objects per class, for classes >= cheapest_good_class.
  std::size_t good_per_class = 1;
  double threshold = 0.5;
};

/// World where costs come in geometric classes and good objects exist only
/// in classes >= cheapest_good_class. Always local testing (as in §5.2).
[[nodiscard]] World make_cost_class_world(const CostClassWorldOptions& opts,
                                          Rng& rng);

/// World for search without local testing (§5.3): all values are distinct
/// uniform draws, the top beta*m count as good, and there is no usable
/// threshold.
[[nodiscard]] World make_top_beta_world(std::size_t m, std::size_t num_good,
                                        Rng& rng);

}  // namespace acp
