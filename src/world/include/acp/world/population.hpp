// The player population of the model (paper §2.3).
//
// n players; an alpha fraction are honest (follow the protocol), the rest
// are Byzantine and controlled by an adversary. The population records only
// the ground-truth honesty flags; who gets to see them is the engine's
// business (honest protocol code never does).
#pragma once

#include <cstddef>
#include <vector>

#include "acp/rng/rng.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/types.hpp"

namespace acp {

class Population {
 public:
  /// `honest[p]` is the ground-truth flag for player p.
  explicit Population(std::vector<bool> honest);

  [[nodiscard]] std::size_t num_players() const noexcept {
    return honest_.size();
  }
  [[nodiscard]] std::size_t num_honest() const noexcept {
    return honest_ids_.size();
  }
  [[nodiscard]] std::size_t num_dishonest() const noexcept {
    return dishonest_ids_.size();
  }

  /// alpha — the fraction of honest players (paper's notation).
  [[nodiscard]] double alpha() const noexcept {
    return static_cast<double>(num_honest()) /
           static_cast<double>(num_players());
  }

  [[nodiscard]] bool is_honest(PlayerId p) const {
    ACP_EXPECTS(p.value() < honest_.size());
    return honest_[p.value()];
  }

  [[nodiscard]] const std::vector<PlayerId>& honest_players() const noexcept {
    return honest_ids_;
  }
  [[nodiscard]] const std::vector<PlayerId>& dishonest_players()
      const noexcept {
    return dishonest_ids_;
  }

  /// First `num_honest` players honest, the rest dishonest. Convenient for
  /// deterministic tests; protocols are symmetric so placement is irrelevant.
  static Population with_prefix_honest(std::size_t n, std::size_t num_honest);

  /// `num_honest` honest players at uniformly random positions.
  static Population with_random_honest(std::size_t n, std::size_t num_honest,
                                       Rng& rng);

 private:
  std::vector<bool> honest_;
  std::vector<PlayerId> honest_ids_;
  std::vector<PlayerId> dishonest_ids_;
};

}  // namespace acp
