// The object universe of the model (paper §2).
//
// m objects, each with an intrinsic unknown value and a known cost. Objects
// are partitioned into good (high value) and bad (low value). Probing an
// object reveals its value and charges its cost.
//
// Two goodness models (paper §2.2):
//  * LocalTesting — goodness is decidable from a single probe (value >=
//    a publicly known threshold).
//  * TopBeta — goodness means "among the beta*m top-valued objects"; a
//    prober learns the value but cannot test goodness locally.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/util/contracts.hpp"
#include "acp/util/types.hpp"

namespace acp {

enum class GoodnessModel {
  kLocalTesting,
  kTopBeta,
};

/// What a player learns from probing an object.
struct ProbeOutcome {
  double value = 0.0;
  double cost = 0.0;
  /// Meaningful only under local testing; the engine still fills it in under
  /// TopBeta so tests can use it as ground truth, but honest protocol code
  /// for the no-local-testing variant must not read it (and does not).
  bool locally_good = false;
};

/// Immutable description of the object universe for one simulation instance.
class World {
 public:
  /// `good` flags the ground-truth good objects. Under kLocalTesting, every
  /// good object's value must be >= threshold and every bad one's < threshold.
  World(std::vector<double> values, std::vector<double> costs,
        std::vector<bool> good, GoodnessModel model, double threshold);

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return values_.size();
  }
  [[nodiscard]] std::size_t num_good() const noexcept { return num_good_; }

  /// beta — the fraction of good objects (paper's notation).
  [[nodiscard]] double beta() const noexcept {
    return static_cast<double>(num_good_) /
           static_cast<double>(values_.size());
  }

  [[nodiscard]] GoodnessModel model() const noexcept { return model_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  [[nodiscard]] double value(ObjectId i) const {
    ACP_EXPECTS(i.value() < values_.size());
    return values_[i.value()];
  }

  /// Cost is public knowledge (paper §2): protocols may read it freely.
  [[nodiscard]] double cost(ObjectId i) const {
    ACP_EXPECTS(i.value() < costs_.size());
    return costs_[i.value()];
  }

  /// Ground truth — for the engine, adversaries, and tests. Honest protocol
  /// code only sees goodness through ProbeOutcome under local testing.
  [[nodiscard]] bool is_good(ObjectId i) const {
    ACP_EXPECTS(i.value() < good_.size());
    return good_[i.value()];
  }

  [[nodiscard]] ProbeOutcome probe(ObjectId i) const {
    ACP_EXPECTS(i.value() < values_.size());
    return ProbeOutcome{values_[i.value()], costs_[i.value()],
                        good_[i.value()]};
  }

  /// All good object ids, ascending.
  [[nodiscard]] const std::vector<ObjectId>& good_objects() const noexcept {
    return good_ids_;
  }

  /// All bad object ids, ascending.
  [[nodiscard]] const std::vector<ObjectId>& bad_objects() const noexcept {
    return bad_ids_;
  }

 private:
  std::vector<double> values_;
  std::vector<double> costs_;
  std::vector<bool> good_;
  std::vector<ObjectId> good_ids_;
  std::vector<ObjectId> bad_ids_;
  std::size_t num_good_ = 0;
  GoodnessModel model_;
  double threshold_;
};

}  // namespace acp
