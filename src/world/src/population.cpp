#include "acp/world/population.hpp"

#include <utility>

namespace acp {

Population::Population(std::vector<bool> honest) : honest_(std::move(honest)) {
  ACP_EXPECTS(!honest_.empty());
  for (std::size_t p = 0; p < honest_.size(); ++p) {
    if (honest_[p]) {
      honest_ids_.push_back(PlayerId{p});
    } else {
      dishonest_ids_.push_back(PlayerId{p});
    }
  }
  ACP_EXPECTS(!honest_ids_.empty());
}

Population Population::with_prefix_honest(std::size_t n,
                                          std::size_t num_honest) {
  ACP_EXPECTS(n >= 1);
  ACP_EXPECTS(num_honest >= 1 && num_honest <= n);
  std::vector<bool> honest(n, false);
  for (std::size_t p = 0; p < num_honest; ++p) honest[p] = true;
  return Population(std::move(honest));
}

Population Population::with_random_honest(std::size_t n,
                                          std::size_t num_honest, Rng& rng) {
  ACP_EXPECTS(n >= 1);
  ACP_EXPECTS(num_honest >= 1 && num_honest <= n);
  std::vector<bool> honest(n, false);
  for (std::size_t idx : rng.sample_indices(n, num_honest)) honest[idx] = true;
  return Population(std::move(honest));
}

}  // namespace acp
