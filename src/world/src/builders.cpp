#include "acp/world/builders.hpp"

#include <algorithm>
#include <vector>

#include "acp/util/contracts.hpp"

namespace acp {

World make_unit_cost_world(const UnitCostWorldOptions& opts, Rng& rng) {
  ACP_EXPECTS(opts.num_objects >= 1);
  ACP_EXPECTS(opts.num_good >= 1 && opts.num_good <= opts.num_objects);
  ACP_EXPECTS(opts.bad_lo <= opts.bad_hi && opts.bad_hi <= opts.threshold);
  ACP_EXPECTS(opts.threshold <= opts.good_lo && opts.good_lo <= opts.good_hi);

  const std::size_t m = opts.num_objects;
  std::vector<double> values(m);
  std::vector<double> costs(m, 1.0);
  std::vector<bool> good(m, false);

  for (std::size_t idx : rng.sample_indices(m, opts.num_good)) {
    good[idx] = true;
  }
  for (std::size_t i = 0; i < m; ++i) {
    values[i] = good[i] ? rng.uniform_real(opts.good_lo, opts.good_hi)
                        : rng.uniform_real(opts.bad_lo, opts.bad_hi);
  }
  return World(std::move(values), std::move(costs), std::move(good),
               opts.model, opts.threshold);
}

World make_simple_world(std::size_t m, std::size_t g, Rng& rng) {
  UnitCostWorldOptions opts;
  opts.num_objects = m;
  opts.num_good = g;
  return make_unit_cost_world(opts, rng);
}

World make_cost_class_world(const CostClassWorldOptions& opts, Rng& rng) {
  ACP_EXPECTS(opts.num_classes >= 1);
  ACP_EXPECTS(opts.objects_per_class >= 1);
  ACP_EXPECTS(opts.cheapest_good_class < opts.num_classes);
  ACP_EXPECTS(opts.good_per_class >= 1 &&
              opts.good_per_class <= opts.objects_per_class);

  const std::size_t m = opts.num_classes * opts.objects_per_class;
  std::vector<double> values(m);
  std::vector<double> costs(m);
  std::vector<bool> good(m, false);

  // Lay out class-by-class, then shuffle positions so protocols cannot
  // exploit index structure. Keep a permutation to scatter objects.
  std::vector<std::size_t> pos(m);
  for (std::size_t i = 0; i < m; ++i) pos[i] = i;
  rng.shuffle(pos);

  std::size_t slot = 0;
  for (std::size_t cls = 0; cls < opts.num_classes; ++cls) {
    const double lo = static_cast<double>(std::size_t{1} << cls);
    const double hi = 2.0 * lo;
    for (std::size_t j = 0; j < opts.objects_per_class; ++j, ++slot) {
      const std::size_t at = pos[slot];
      costs[at] = rng.uniform_real(lo, hi);
      const bool make_good =
          cls >= opts.cheapest_good_class && j < opts.good_per_class;
      good[at] = make_good;
      values[at] = make_good ? rng.uniform_real(0.6, 1.0)
                             : rng.uniform_real(0.0, 0.4);
    }
  }
  return World(std::move(values), std::move(costs), std::move(good),
               GoodnessModel::kLocalTesting, opts.threshold);
}

World make_top_beta_world(std::size_t m, std::size_t num_good, Rng& rng) {
  ACP_EXPECTS(m >= 1);
  ACP_EXPECTS(num_good >= 1 && num_good <= m);

  std::vector<double> values(m);
  for (auto& v : values) v = rng.uniform01();
  // Ensure distinctness for a well-defined top-beta set: perturb ties by
  // re-drawing (uniform doubles collide with negligible probability, but be
  // exact rather than probabilistic here).
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  while (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    for (auto& v : values) v = rng.uniform01();
    sorted = values;
    std::sort(sorted.begin(), sorted.end());
  }

  const double cutoff = sorted[m - num_good];  // smallest good value
  std::vector<bool> good(m, false);
  for (std::size_t i = 0; i < m; ++i) good[i] = values[i] >= cutoff;

  std::vector<double> costs(m, 1.0);
  // No usable threshold under TopBeta; store the cutoff for tests only.
  return World(std::move(values), std::move(costs), std::move(good),
               GoodnessModel::kTopBeta, cutoff);
}

}  // namespace acp
