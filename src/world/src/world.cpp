#include "acp/world/world.hpp"

#include <utility>

namespace acp {

World::World(std::vector<double> values, std::vector<double> costs,
             std::vector<bool> good, GoodnessModel model, double threshold)
    : values_(std::move(values)),
      costs_(std::move(costs)),
      good_(std::move(good)),
      model_(model),
      threshold_(threshold) {
  ACP_EXPECTS(!values_.empty());
  ACP_EXPECTS(values_.size() == costs_.size());
  ACP_EXPECTS(values_.size() == good_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    ACP_EXPECTS(values_[i] >= 0.0);
    ACP_EXPECTS(costs_[i] >= 0.0);
    if (good_[i]) {
      ++num_good_;
      good_ids_.push_back(ObjectId{i});
    } else {
      bad_ids_.push_back(ObjectId{i});
    }
    if (model_ == GoodnessModel::kLocalTesting) {
      // Local testing is only coherent when the threshold separates the
      // classes exactly (paper §2.2: "value exceeds a known threshold").
      ACP_EXPECTS(good_[i] == (values_[i] >= threshold_));
    }
  }
  ACP_EXPECTS(num_good_ >= 1);
}

}  // namespace acp
