// Byzantine strategy library (paper §2.3).
//
// The theorems quantify over *all* adaptive Byzantine adversaries; the
// benches approximate the worst case by taking the maximum measured cost
// over this library. Every strategy respects the billboard substrate rules
// (true identity tags, true timestamps, at most one post per player per
// round) — everything else is fair game.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/engine/adversary.hpp"

namespace acp {

/// Every dishonest player votes as early as possible, each for a distinct
/// bad object — floods Step 1.2's S with (1-alpha)n bad candidates.
class EagerVoteAdversary final : public Adversary {
 public:
  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

 private:
  std::vector<ObjectId> targets_;  // per dishonest player, assigned at init
  std::size_t next_voter_ = 0;
};

/// The colluding clique: all dishonest votes concentrate on a few decoy bad
/// objects, cast early, so the decoys sail past the k2/4 threshold into C0
/// and (for one iteration) past the Step 2 threshold.
class CollusionAdversary final : public Adversary {
 public:
  explicit CollusionAdversary(std::size_t num_decoys = 4);

  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

 private:
  std::size_t num_decoys_;
  std::vector<ObjectId> decoys_;
  std::size_t next_voter_ = 0;
};

/// Pure slander: every round, every dishonest player posts a negative
/// report about a (random) good object and never votes positively.
/// Harmless against DISTILL — Figure 1 ignores negative reports — and the
/// control arm for the "is slander useless?" question of §6.
class SlandererAdversary final : public Adversary {
 public:
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;
};

/// Unbounded spam: every round, every dishonest player posts a positive
/// report for one of a few decoy bad objects. Against DISTILL this is no
/// stronger than CollusionAdversary (the read-side one-vote rule caps it
/// at one counted vote per identity); against popularity-style rules with
/// no vote cap (PopularityProtocol) it owns the score distribution — the
/// §1.3 amplification argument.
class SpamAdversary final : public Adversary {
 public:
  explicit SpamAdversary(std::size_t num_decoys = 4);

  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

 private:
  std::size_t num_decoys_;
  std::vector<ObjectId> decoys_;
};

/// Attack on the no-local-testing variant (§5.3): each dishonest player
/// once posts an absurdly high claimed value for a bad object, making that
/// its permanent highest-reported vote.
class ValueLiarAdversary final : public Adversary {
 public:
  explicit ValueLiarAdversary(double claimed_value = 1e9);

  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

 private:
  double claimed_value_;
  std::vector<ObjectId> targets_;
  std::size_t next_voter_ = 0;
};

}  // namespace acp
