// SplitVoteAdversary — the adaptive strategy that is extremal for Lemma 7.
//
// Lemma 7 bounds DISTILL's Step 2 iterations by charging each surviving bad
// candidate's threshold votes (n/(4 c_t) per object per iteration) against
// the adversary's total vote budget (1-alpha)n. The worst case spends that
// budget so the candidate set shrinks as slowly as possible: keep a `decay`
// fraction of the bad candidates alive in every iteration, paying exactly
// the threshold for each, until the budget runs dry.
//
// The adversary is *adaptive*: it watches the (public, deterministic-given-
// the-billboard) phase schedule of the observed DistillProtocol instance,
// knows ground truth goodness, and times every vote to land inside the
// exact counting window where it does damage. This is as strong as the
// model allows short of breaking the billboard.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/core/distill.hpp"
#include "acp/engine/adversary.hpp"

namespace acp {

struct SplitVoteParams {
  /// Fraction of current bad candidates to keep alive each Step-2 iteration.
  double decay = 0.5;
  /// Share of the vote budget spent flooding distinct bad objects at the
  /// very start (Step 1.1): this poisons the advice channel — honest
  /// advice probes follow a random player's vote, and idle advice rounds
  /// are free while poisoned ones cost a probe.
  double flood_budget_fraction = 0.34;
  /// Share of the vote budget reserved for seeding bad objects into C0
  /// during Step 1.3 (each costs ~k2/4 votes). The remainder sustains
  /// Step 2 survivors at the n/(4 c_t) threshold.
  double seed_budget_fraction = 0.33;
};

class SplitVoteAdversary final : public Adversary {
 public:
  /// `observed` must be the DistillProtocol instance driving the honest
  /// players of the same run (the adversary knows the protocol, §2.3).
  SplitVoteAdversary(const DistillProtocol& observed,
                     SplitVoteParams params = {});

  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

  /// Dishonest players whose single vote is still unspent.
  [[nodiscard]] std::size_t votes_remaining() const noexcept {
    return unused_.size();
  }

 private:
  void emit_votes(const std::vector<ObjectId>& targets, Round round,
                  std::vector<Post>& out);

  const DistillProtocol* observed_;
  SplitVoteParams params_;

  std::vector<PlayerId> unused_;
  std::size_t flood_budget_ = 0;
  std::size_t seed_budget_ = 0;
  bool flooded_ = false;

  /// Last seen (phase, phase-window start) to detect window entry.
  DistillProtocol::Phase last_phase_ = DistillProtocol::Phase::kStep11;
  Round last_window_start_ = -1;
  bool primed_ = false;
};

}  // namespace acp
