// TargetedSlanderAdversary — the attack that answers §6's "Is slander
// useless?" in the affirmative for naive designs.
//
// Against Figure 1's DISTILL, negative reports are ignored and this
// adversary is exactly as harmless as SlandererAdversary. Against the
// veto variant (DistillParams::veto_fraction > 0), it times its negative
// votes to land inside each counting window and aims them all at the good
// objects: veto_fraction * n + 1 negatives veto the good object out of
// the candidate set, failing the whole ATTEMPT — at a per-window price
// the adversary can pay roughly f_neg * (1-alpha) * 4/veto-fraction times.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/core/distill.hpp"
#include "acp/engine/adversary.hpp"

namespace acp {

class TargetedSlanderAdversary final : public Adversary {
 public:
  /// `observed` is the honest protocol instance of the run (the adversary
  /// knows the protocol and its phase schedule, §2.3).
  explicit TargetedSlanderAdversary(const DistillProtocol& observed);

  void initialize(const World& world, const Population& population) override;
  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override;

 private:
  const DistillProtocol* observed_;

  /// Remaining negative votes per dishonest player (read-side budget).
  std::vector<std::size_t> budget_;
  /// Objects each dishonest player has already slandered (repeats are not
  /// counted by the first-negative ledger).
  std::vector<std::vector<ObjectId>> used_objects_;

  DistillProtocol::Phase last_phase_ = DistillProtocol::Phase::kStep11;
  Round last_window_start_ = -1;
  bool primed_ = false;
};

}  // namespace acp
