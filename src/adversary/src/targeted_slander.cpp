#include "acp/adversary/targeted_slander.hpp"

#include <algorithm>
#include <cmath>

#include "acp/util/contracts.hpp"

namespace acp {

TargetedSlanderAdversary::TargetedSlanderAdversary(
    const DistillProtocol& observed)
    : observed_(&observed) {}

void TargetedSlanderAdversary::initialize(const World& /*world*/,
                                          const Population& population) {
  const std::size_t f_neg =
      observed_->params().negative_votes_per_player;
  budget_.assign(population.num_players(), 0);
  used_objects_.assign(population.num_players(), {});
  for (PlayerId p : population.dishonest_players()) {
    budget_[p.value()] = f_neg;
  }
  primed_ = false;
}

void TargetedSlanderAdversary::plan_round(const AdversaryContext& ctx,
                                          std::vector<Post>& out,
                                          Rng& /*rng*/) {
  // Fire once per counting window (the engine runs the honest protocol's
  // transition before us, so the window boundaries are current).
  const auto phase = observed_->phase();
  const Round window_start = observed_->phase_window_start();
  const bool entered =
      !primed_ || phase != last_phase_ || window_start != last_window_start_;
  primed_ = true;
  last_phase_ = phase;
  last_window_start_ = window_start;
  if (!entered) return;

  const double veto_fraction = observed_->params().veto_fraction;
  const std::size_t n = ctx.population.num_players();
  // Against plain DISTILL the veto is off; emulate plain slander's
  // behavior of one negative wave so runs stay comparable.
  const auto votes_needed =
      veto_fraction > 0.0
          ? static_cast<std::size_t>(
                std::floor(veto_fraction * static_cast<double>(n))) +
                1
          : std::size_t{1};

  // Slander every good object past the veto threshold, budget permitting.
  for (ObjectId target : ctx.world.good_objects()) {
    std::size_t cast = 0;
    for (PlayerId p : ctx.population.dishonest_players()) {
      if (cast >= votes_needed) break;
      auto& used = used_objects_[p.value()];
      if (budget_[p.value()] == 0) continue;
      if (std::find(used.begin(), used.end(), target) != used.end()) {
        continue;  // this player's slander of `target` already counted
      }
      // One post per player per round: a player already posting this round
      // for an earlier good object must be skipped.
      const bool already_posting =
          std::any_of(out.begin(), out.end(), [&](const Post& post) {
            return post.author == p && post.round == ctx.round;
          });
      if (already_posting) continue;
      out.push_back(Post{p, ctx.round, target, /*reported_value=*/0.0,
                         /*positive=*/false});
      used.push_back(target);
      --budget_[p.value()];
      ++cast;
    }
  }
}

}  // namespace acp
