#include "acp/adversary/strategies.hpp"

#include <algorithm>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {
/// Assign one bad object per dishonest player, cycling if there are more
/// dishonest players than bad objects.
std::vector<ObjectId> assign_bad_targets(const World& world,
                                         const Population& population) {
  const auto& bad = world.bad_objects();
  std::vector<ObjectId> targets;
  targets.reserve(population.num_dishonest());
  for (std::size_t i = 0; i < population.num_dishonest(); ++i) {
    if (bad.empty()) break;
    targets.push_back(bad[i % bad.size()]);
  }
  return targets;
}
}  // namespace

void EagerVoteAdversary::initialize(const World& world,
                                    const Population& population) {
  targets_ = assign_bad_targets(world, population);
  next_voter_ = 0;
}

void EagerVoteAdversary::plan_round(const AdversaryContext& ctx,
                                    std::vector<Post>& out, Rng& /*rng*/) {
  // One post per player per round, so the flood takes one round total: all
  // yet-unvoted dishonest players fire simultaneously.
  const auto& dishonest = ctx.population.dishonest_players();
  for (; next_voter_ < targets_.size(); ++next_voter_) {
    out.push_back(Post{dishonest[next_voter_], ctx.round,
                       targets_[next_voter_], /*reported_value=*/1.0,
                       /*positive=*/true});
  }
}

CollusionAdversary::CollusionAdversary(std::size_t num_decoys)
    : num_decoys_(num_decoys) {
  ACP_EXPECTS(num_decoys_ >= 1);
}

void CollusionAdversary::initialize(const World& world,
                                    const Population& population) {
  decoys_.clear();
  const auto& bad = world.bad_objects();
  for (std::size_t i = 0; i < std::min(num_decoys_, bad.size()); ++i) {
    decoys_.push_back(bad[i]);
  }
  next_voter_ = 0;
  (void)population;
}

void CollusionAdversary::plan_round(const AdversaryContext& ctx,
                                    std::vector<Post>& out, Rng& /*rng*/) {
  if (decoys_.empty()) return;
  const auto& dishonest = ctx.population.dishonest_players();
  for (; next_voter_ < dishonest.size(); ++next_voter_) {
    const ObjectId decoy = decoys_[next_voter_ % decoys_.size()];
    out.push_back(Post{dishonest[next_voter_], ctx.round, decoy,
                       /*reported_value=*/1.0, /*positive=*/true});
  }
}

void SlandererAdversary::plan_round(const AdversaryContext& ctx,
                                    std::vector<Post>& out, Rng& rng) {
  const auto& good = ctx.world.good_objects();
  if (good.empty()) return;
  for (PlayerId p : ctx.population.dishonest_players()) {
    const ObjectId target = good[rng.index(good.size())];
    out.push_back(Post{p, ctx.round, target, /*reported_value=*/0.0,
                       /*positive=*/false});
  }
}

SpamAdversary::SpamAdversary(std::size_t num_decoys)
    : num_decoys_(num_decoys) {
  ACP_EXPECTS(num_decoys_ >= 1);
}

void SpamAdversary::initialize(const World& world,
                               const Population& /*population*/) {
  decoys_.clear();
  const auto& bad = world.bad_objects();
  for (std::size_t i = 0; i < std::min(num_decoys_, bad.size()); ++i) {
    decoys_.push_back(bad[i]);
  }
}

void SpamAdversary::plan_round(const AdversaryContext& ctx,
                               std::vector<Post>& out, Rng& rng) {
  if (decoys_.empty()) return;
  for (PlayerId p : ctx.population.dishonest_players()) {
    out.push_back(Post{p, ctx.round, decoys_[rng.index(decoys_.size())],
                       /*reported_value=*/1.0, /*positive=*/true});
  }
}

ValueLiarAdversary::ValueLiarAdversary(double claimed_value)
    : claimed_value_(claimed_value) {
  ACP_EXPECTS(claimed_value_ > 0.0);
}

void ValueLiarAdversary::initialize(const World& world,
                                    const Population& population) {
  targets_ = assign_bad_targets(world, population);
  next_voter_ = 0;
}

void ValueLiarAdversary::plan_round(const AdversaryContext& ctx,
                                    std::vector<Post>& out, Rng& /*rng*/) {
  const auto& dishonest = ctx.population.dishonest_players();
  for (; next_voter_ < targets_.size(); ++next_voter_) {
    out.push_back(Post{dishonest[next_voter_], ctx.round,
                       targets_[next_voter_], claimed_value_,
                       /*positive=*/true});
  }
}

}  // namespace acp
