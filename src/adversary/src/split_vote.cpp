#include "acp/adversary/split_vote.hpp"

#include <algorithm>
#include <cmath>

#include "acp/util/contracts.hpp"

namespace acp {

SplitVoteAdversary::SplitVoteAdversary(const DistillProtocol& observed,
                                       SplitVoteParams params)
    : observed_(&observed), params_(params) {
  ACP_EXPECTS(params_.decay > 0.0 && params_.decay <= 1.0);
  ACP_EXPECTS(params_.flood_budget_fraction >= 0.0 &&
              params_.flood_budget_fraction <= 1.0);
  ACP_EXPECTS(params_.seed_budget_fraction >= 0.0 &&
              params_.seed_budget_fraction <= 1.0);
  ACP_EXPECTS(params_.flood_budget_fraction + params_.seed_budget_fraction <=
              1.0);
}

void SplitVoteAdversary::initialize(const World& /*world*/,
                                    const Population& population) {
  unused_ = population.dishonest_players();
  flood_budget_ = static_cast<std::size_t>(
      params_.flood_budget_fraction * static_cast<double>(unused_.size()));
  seed_budget_ = static_cast<std::size_t>(
      params_.seed_budget_fraction * static_cast<double>(unused_.size()));
  flooded_ = false;
  primed_ = false;
}

void SplitVoteAdversary::emit_votes(const std::vector<ObjectId>& targets,
                                    Round round, std::vector<Post>& out) {
  // Every queued vote comes from a distinct still-unused dishonest player,
  // so the whole batch lands in a single round (one post per player).
  std::size_t used = 0;
  for (ObjectId target : targets) {
    if (used >= unused_.size()) break;
    out.push_back(Post{unused_[unused_.size() - 1 - used], round, target,
                       /*reported_value=*/1.0, /*positive=*/true});
    ++used;
  }
  unused_.resize(unused_.size() - used);
}

void SplitVoteAdversary::plan_round(const AdversaryContext& ctx,
                                    std::vector<Post>& out, Rng& rng) {
  if (unused_.empty()) return;

  // Detect entry into a fresh counting window. The engine runs the honest
  // protocol's on_round_begin before us, so `observed_` already reflects
  // this round's phase.
  const auto phase = observed_->phase();
  const Round window_start = observed_->phase_window_start();
  const bool entered =
      !primed_ || phase != last_phase_ || window_start != last_window_start_;
  primed_ = true;
  last_phase_ = phase;
  last_window_start_ = window_start;
  if (!entered) return;

  const std::size_t n = ctx.population.num_players();

  switch (phase) {
    case DistillProtocol::Phase::kStep11: {
      // Poison the advice channel once: an idle advice round is free for
      // the honest player, a poisoned one costs a full probe. Flood
      // distinct bad objects so the decoys also inflate S.
      if (flooded_) return;
      flooded_ = true;
      const std::size_t budget = std::min(flood_budget_, unused_.size());
      const auto& bad = ctx.world.bad_objects();
      if (budget == 0 || bad.empty()) return;
      std::vector<ObjectId> targets;
      targets.reserve(budget);
      for (std::size_t i = 0; i < budget; ++i) {
        targets.push_back(bad[i % bad.size()]);
      }
      emit_votes(targets, ctx.round, out);
      return;
    }

    case DistillProtocol::Phase::kStep13: {
      // Seed bad objects into C0: each needs ceil(c0_vote_fraction * k2)
      // votes inside this window.
      const auto& params = observed_->params();
      const auto votes_each = static_cast<std::size_t>(std::max(
          1.0, std::ceil(params.c0_vote_fraction * params.k2)));
      const std::size_t budget = std::min(seed_budget_, unused_.size());
      const std::size_t num_objects = budget / votes_each;
      if (num_objects == 0) return;

      // Prefer bad objects that already made S (honest probes will then
      // keep encountering them); fall back to arbitrary bad objects.
      std::vector<ObjectId> pool;
      for (ObjectId obj : observed_->candidates()) {
        if (!ctx.world.is_good(obj)) pool.push_back(obj);
      }
      for (ObjectId obj : ctx.world.bad_objects()) {
        if (pool.size() >= num_objects) break;
        if (std::find(pool.begin(), pool.end(), obj) == pool.end()) {
          pool.push_back(obj);
        }
      }
      std::vector<ObjectId> targets;
      for (std::size_t i = 0; i < std::min(num_objects, pool.size()); ++i) {
        targets.insert(targets.end(), votes_each, pool[i]);
      }
      emit_votes(targets, ctx.round, out);
      return;
    }

    case DistillProtocol::Phase::kStep2: {
      // Keep a decay fraction of the bad candidates alive: each survivor
      // needs strictly more than n/(survival_divisor * c_t) votes in this
      // iteration's window, all of which must come from us.
      const auto& candidates = observed_->candidates();
      if (candidates.empty()) return;
      std::vector<ObjectId> bad;
      for (ObjectId obj : candidates) {
        if (!ctx.world.is_good(obj)) bad.push_back(obj);
      }
      if (bad.empty()) return;

      const double ct = static_cast<double>(candidates.size());
      const double threshold =
          static_cast<double>(n) / (observed_->params().survival_divisor * ct);
      const auto votes_each =
          static_cast<std::size_t>(std::floor(threshold)) + 1;

      auto keep = static_cast<std::size_t>(
          std::ceil(params_.decay * static_cast<double>(bad.size())));
      keep = std::min({keep, bad.size(), unused_.size() / votes_each});
      if (keep == 0) return;

      // Keep a random subset so honest players cannot anticipate survivors.
      rng.shuffle(bad);
      std::vector<ObjectId> targets;
      for (std::size_t i = 0; i < keep; ++i) {
        targets.insert(targets.end(), votes_each, bad[i]);
      }
      emit_votes(targets, ctx.round, out);
      return;
    }
  }
}

}  // namespace acp
