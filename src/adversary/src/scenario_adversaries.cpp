// Scenario-registry factories for the Byzantine strategy library (§2.3).
// See acp/scenario/modules.hpp for how these registrations reach the
// process-wide registry.

#include <stdexcept>

#include "acp/adversary/split_vote.hpp"
#include "acp/adversary/strategies.hpp"
#include "acp/adversary/targeted_slander.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/adversary.hpp"
#include "acp/scenario/modules.hpp"
#include "acp/scenario/registry.hpp"

namespace acp::scenario {

namespace {

/// The protocol-aware strategies observe DISTILL's phase schedule; every
/// other protocol has nothing for them to watch, so the combination is a
/// configuration error, not a silent no-op.
const DistillProtocol& require_distill(const AdversaryBuildContext& ctx,
                                       const char* adversary) {
  const auto* distill = dynamic_cast<const DistillProtocol*>(&ctx.protocol);
  if (distill == nullptr) {
    throw std::invalid_argument(
        std::string("adversary '") + adversary +
        "' requires protocol 'distill' or 'distill-hp' (it observes "
        "DISTILL's phase schedule), got protocol '" + ctx.spec.protocol +
        "'");
  }
  return *distill;
}

std::unique_ptr<Adversary> make_silent(const AdversaryBuildContext& ctx) {
  ctx.spec.adversary_params.require_known("adversary 'silent'", {});
  return std::make_unique<SilentAdversary>();
}

std::unique_ptr<Adversary> make_slander(const AdversaryBuildContext& ctx) {
  ctx.spec.adversary_params.require_known("adversary 'slander'", {});
  return std::make_unique<SlandererAdversary>();
}

std::unique_ptr<Adversary> make_eager(const AdversaryBuildContext& ctx) {
  ctx.spec.adversary_params.require_known("adversary 'eager'", {});
  return std::make_unique<EagerVoteAdversary>();
}

std::unique_ptr<Adversary> make_collude(const AdversaryBuildContext& ctx) {
  const ParamMap& p = ctx.spec.adversary_params;
  p.require_known("adversary 'collude'", {"decoys"});
  return std::make_unique<CollusionAdversary>(p.get_size("decoys", 4));
}

std::unique_ptr<Adversary> make_spam(const AdversaryBuildContext& ctx) {
  const ParamMap& p = ctx.spec.adversary_params;
  p.require_known("adversary 'spam'", {"decoys"});
  return std::make_unique<SpamAdversary>(p.get_size("decoys", 4));
}

std::unique_ptr<Adversary> make_splitvote(const AdversaryBuildContext& ctx) {
  const ParamMap& p = ctx.spec.adversary_params;
  p.require_known("adversary 'splitvote'",
                  {"flood_budget_fraction", "seed_budget_fraction"});
  const DistillProtocol& distill = require_distill(ctx, "splitvote");
  SplitVoteParams params;
  params.flood_budget_fraction =
      p.get("flood_budget_fraction", params.flood_budget_fraction);
  params.seed_budget_fraction =
      p.get("seed_budget_fraction", params.seed_budget_fraction);
  return std::make_unique<SplitVoteAdversary>(distill, params);
}

std::unique_ptr<Adversary> make_liar(const AdversaryBuildContext& ctx) {
  const ParamMap& p = ctx.spec.adversary_params;
  p.require_known("adversary 'liar'", {"claimed_value"});
  return std::make_unique<ValueLiarAdversary>(p.get("claimed_value", 1e9));
}

std::unique_ptr<Adversary> make_targeted_slander(
    const AdversaryBuildContext& ctx) {
  ctx.spec.adversary_params.require_known("adversary 'targeted-slander'", {});
  return std::make_unique<TargetedSlanderAdversary>(
      require_distill(ctx, "targeted-slander"));
}

}  // namespace

void register_builtin_adversaries(AdversaryRegistry& registry) {
  registry.add("silent", make_silent);
  registry.add("slander", make_slander);
  registry.add("eager", make_eager);
  registry.add("collude", make_collude);
  registry.add("spam", make_spam);
  registry.add("splitvote", make_splitvote);
  registry.add("liar", make_liar);
  registry.add("targeted-slander", make_targeted_slander);
}

}  // namespace acp::scenario
