// Fixed-width histogram with ASCII rendering for bench output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace acp {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t num_bins() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Multi-line bar rendering, widest bar `width` characters.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace acp
