// Sample summary: moments, quantiles, and a normal-approximation 95% CI.
#pragma once

#include <vector>

namespace acp {

class Summary {
 public:
  /// Takes ownership of the samples (sorts them). Must be non-empty.
  static Summary from_samples(std::vector<double> samples);

  [[nodiscard]] std::size_t count() const noexcept {
    return sorted_.size();
  }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }
  [[nodiscard]] double sem() const noexcept { return sem_; }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p90() const { return quantile(0.9); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  /// 95% confidence interval for the mean (normal approximation).
  [[nodiscard]] double ci95_low() const noexcept { return mean_ - 1.96 * sem_; }
  [[nodiscard]] double ci95_high() const noexcept {
    return mean_ + 1.96 * sem_;
  }

  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

 private:
  Summary() = default;

  std::vector<double> sorted_;
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double sem_ = 0.0;
};

}  // namespace acp
