// Least-squares line fitting — used by tests and benches to check growth
// rates (e.g. that the baseline's cost grows linearly in log n while
// DISTILL's stays flat).
#pragma once

#include <vector>

namespace acp {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

/// Ordinary least squares of y against x. Requires >= 2 points and
/// non-constant x.
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace acp
