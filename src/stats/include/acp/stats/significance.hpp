// Two-sample significance testing for bench comparisons.
//
// Welch's unequal-variance t-test with the large-sample normal
// approximation for the decision rule — ample for the benches' 15+ trial
// samples, and dependency-free. Report the statistic; decide at
// conventional thresholds.
#pragma once

#include "acp/stats/summary.hpp"

namespace acp {

struct WelchResult {
  /// Welch's t statistic for mean(a) - mean(b).
  double t = 0.0;
  /// Welch–Satterthwaite effective degrees of freedom.
  double degrees_of_freedom = 0.0;
  /// |t| exceeds the two-sided large-sample 5% critical value (1.96).
  bool significant_5pct = false;
  /// |t| exceeds the two-sided large-sample 1% critical value (2.576).
  bool significant_1pct = false;
};

/// Welch's t-test on two summaries. Requires >= 2 samples per side and a
/// non-degenerate variance in at least one side.
[[nodiscard]] WelchResult welch_t_test(const Summary& a, const Summary& b);

}  // namespace acp
