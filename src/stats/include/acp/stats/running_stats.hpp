// Streaming first/second-moment accumulator (Welford's algorithm).
#pragma once

#include <cstddef>

namespace acp {

class RunningStats {
 public:
  void push(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mean of the pushed samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept;

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace acp
