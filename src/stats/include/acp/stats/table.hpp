// Aligned table rendering for bench output (paper-style rows), with an
// optional CSV form for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace acp {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// One cell per header; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string cell(double value, int precision = 2);
  static std::string cell(long long value);
  static std::string cell(std::size_t value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Aligned, boxed-header text rendering.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acp
