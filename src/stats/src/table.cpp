#include "acp/stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "acp/util/contracts.hpp"

namespace acp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ACP_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ACP_EXPECTS(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::cell(long long value) { return std::to_string(value); }

std::string Table::cell(std::size_t value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell_text = cells[c];
      if (cell_text.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell_text) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell_text;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace acp
