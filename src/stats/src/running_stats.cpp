#include "acp/stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

namespace acp {

void RunningStats::push(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::sum() const noexcept {
  return mean_ * static_cast<double>(count_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace acp
