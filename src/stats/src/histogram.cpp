#include "acp/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "acp/util/contracts.hpp"

namespace acp {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ACP_EXPECTS(lo < hi);
  ACP_EXPECTS(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  ACP_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  ACP_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  ACP_EXPECTS(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t width) const {
  ACP_EXPECTS(width >= 1);
  const std::size_t peak =
      std::max<std::size_t>(1, *std::max_element(counts_.begin(),
                                                 counts_.end()));
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(width) *
                                              static_cast<double>(counts_[b]) /
                                              static_cast<double>(peak)));
    os << '[';
    os.width(10);
    os << bin_low(b) << ", ";
    os.width(10);
    os << bin_high(b) << ") ";
    os.width(8);
    os << counts_[b] << ' ' << std::string(bar, '#') << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow:  " << overflow_ << '\n';
  return os.str();
}

}  // namespace acp
