#include "acp/stats/significance.hpp"

#include <cmath>

#include "acp/util/contracts.hpp"

namespace acp {

WelchResult welch_t_test(const Summary& a, const Summary& b) {
  ACP_EXPECTS(a.count() >= 2 && b.count() >= 2);
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double va = a.stddev() * a.stddev() / na;
  const double vb = b.stddev() * b.stddev() / nb;
  ACP_EXPECTS(va + vb > 0.0);

  WelchResult result;
  result.t = (a.mean() - b.mean()) / std::sqrt(va + vb);
  // Welch–Satterthwaite.
  const double numerator = (va + vb) * (va + vb);
  const double denominator =
      va * va / (na - 1.0) + vb * vb / (nb - 1.0);
  result.degrees_of_freedom =
      denominator > 0.0 ? numerator / denominator : na + nb - 2.0;
  const double abs_t = std::fabs(result.t);
  result.significant_5pct = abs_t > 1.96;
  result.significant_1pct = abs_t > 2.576;
  return result;
}

}  // namespace acp
