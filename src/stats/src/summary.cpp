#include "acp/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "acp/stats/running_stats.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

Summary Summary::from_samples(std::vector<double> samples) {
  ACP_EXPECTS(!samples.empty());
  Summary s;
  RunningStats rs;
  for (double x : samples) rs.push(x);
  s.mean_ = rs.mean();
  s.stddev_ = rs.stddev();
  s.sem_ = rs.sem();
  std::sort(samples.begin(), samples.end());
  s.sorted_ = std::move(samples);
  return s;
}

double Summary::quantile(double q) const {
  ACP_EXPECTS(q >= 0.0 && q <= 1.0);
  const auto n = sorted_.size();
  if (n == 1) return sorted_.front();
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

}  // namespace acp
