#include "acp/stats/regression.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  ACP_EXPECTS(x.size() == y.size());
  ACP_EXPECTS(x.size() >= 2);

  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  ACP_EXPECTS(sxx > 0.0);

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // r^2 = 1 - SS_res/SS_tot; constant y means a perfect horizontal fit.
  if (syy == 0.0) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double pred = fit.intercept + fit.slope * x[i];
      const double res = y[i] - pred;
      ss_res += res * res;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

}  // namespace acp
