#include "acp/concurrency/thread_pool.hpp"

#include <chrono>

#include "acp/obs/profiler.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

std::size_t ThreadPool::resolve(std::size_t requested) noexcept {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  ACP_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ACP_EXPECTS(task != nullptr);
  const bool profiled = obs::PhaseProfiler::enabled();
  // The submit stamp travels in the queue entry (default-constructed when
  // profiling is off); the worker reads the clock again at pop time. No
  // re-wrapping, so profiling adds no allocation or indirect call to the
  // task itself.
  Pending pending{std::move(task), profiled
                                       ? std::chrono::steady_clock::now()
                                       : std::chrono::steady_clock::time_point{}};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ACP_EXPECTS(!stopping_);
    queue_.push(std::move(pending));
    if (profiled) {
      obs::PhaseProfiler::global().record_queue_depth(queue_.size());
    }
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left to do
      pending = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    if (pending.submitted != std::chrono::steady_clock::time_point{}) {
      // Stamped at submit with profiling on: report wake/handoff latency.
      obs::PhaseProfiler::global().record_task_wake(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - pending.submitted)
              .count()));
    }
    pending.task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace acp
