#include "acp/concurrency/thread_pool.hpp"

#include <chrono>

#include "acp/obs/profiler.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

std::size_t ThreadPool::resolve(std::size_t requested) noexcept {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  ACP_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  ACP_EXPECTS(task != nullptr);
  const bool profiled = obs::PhaseProfiler::enabled();
  if (profiled) {
    // Stamp the submit time so the worker can report its wake/handoff
    // latency the moment it picks the task up.
    const auto submitted = std::chrono::steady_clock::now();
    task = [submitted, inner = std::move(task)] {
      const auto started = std::chrono::steady_clock::now();
      obs::PhaseProfiler::global().record_task_wake(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(started -
                                                                   submitted)
                  .count()));
      inner();
    };
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ACP_EXPECTS(!stopping_);
    queue_.push(std::move(task));
    if (profiled) {
      obs::PhaseProfiler::global().record_queue_depth(queue_.size());
    }
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left to do
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace acp
