#include "acp/concurrency/round_gang.hpp"

#include "acp/util/contracts.hpp"

namespace acp {

RoundGang::RoundGang(std::size_t num_workers) {
  errors_.assign(num_workers + 1, nullptr);
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

RoundGang::~RoundGang() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  release_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void RoundGang::begin_round(void* ctx, Job job) {
  ACP_EXPECTS(job != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ACP_EXPECTS(remaining_ == 0);  // one round in flight at a time
    ctx_ = ctx;
    job_ = job;
    for (auto& error : errors_) error = nullptr;
    remaining_ = workers_.size();
    ++epoch_;
  }
  release_.notify_all();
}

void RoundGang::finish_round() {
  std::exception_ptr first;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
    for (auto& error : errors_) {
      if (error && !first) first = error;
      error = nullptr;
    }
  }
  if (first) std::rethrow_exception(first);
}

void RoundGang::run(void* ctx, Job job) {
  begin_round(ctx, job);
  std::exception_ptr leader_error;
  try {
    job(ctx, 0);
  } catch (...) {
    leader_error = std::current_exception();
  }
  if (leader_error) {
    // Drain the barrier before the leader's exception unwinds the stack
    // the workers' context lives on; worker errors are superseded.
    try {
      finish_round();
    } catch (...) {
    }
    std::rethrow_exception(leader_error);
  }
  finish_round();
}

void RoundGang::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    void* ctx = nullptr;
    Job job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      release_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
      if (epoch_ == seen) return;  // stopping with no round pending
      seen = epoch_;
      ctx = ctx_;
      job = job_;
    }
    try {
      job(ctx, lane);
    } catch (...) {
      errors_[lane] = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_.notify_all();
    }
  }
}

}  // namespace acp
