// Minimal fixed-size thread pool, shared by the trial driver (acp/sim —
// one task per trial shard) and the parallel round kernel (acp/engine —
// one task per roster shard per round). Both uses follow the same
// determinism recipe: shard by count only, accumulate in canonical order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace acp {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resolve a requested thread count the way every pool user does:
  /// 0 means "use the hardware", and unknown hardware means 1.
  [[nodiscard]] static std::size_t resolve(std::size_t requested) noexcept;

  /// Enqueue a task. Tasks must not throw (they run detached from any
  /// future; trial runners catch and record their own failures).
  /// With PhaseProfiler enabled the submit->start latency and queue
  /// depth are recorded; disabled, the only overhead is a relaxed load.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

 private:
  /// Queue entry: the task plus its submit stamp. The stamp rides the
  /// entry (default time_point when profiling is off) so measuring wake
  /// latency never re-wraps the task in a second std::function — profiled
  /// and unprofiled runs do identical allocations.
  struct Pending {
    std::function<void()> task;
    std::chrono::steady_clock::time_point submitted{};
  };

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::queue<Pending> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace acp
