// RoundGang — persistent workers parked on a round barrier.
//
// The parallel round kernel runs the same fork/join shape thousands of
// times per run: release every worker once per round, wait for all of
// them, repeat. Doing that through ThreadPool::submit costs a
// std::function allocation, a queue push and a condvar wake *per shard
// per round* — the PR 6 profile attributes ~10% of kernel time to that
// handoff. A RoundGang keeps its workers alive across rounds: they park
// on an epoch-numbered barrier and are released together by a single
// notify, each receiving the same raw function pointer + context (no
// per-round allocation of any kind).
//
// Lanes: a gang of W workers serves W+1 *lanes* — the calling thread
// (the leader) is lane 0 and participates in the round instead of idling
// at the barrier. `run()` packages the common case; `begin_round()` /
// `finish_round()` split it so the leader can clock its own share and
// the barrier wait separately (the profiled kernel does).
//
// Exceptions: a job that throws on a worker lane is captured into that
// lane's slot and rethrown from finish_round(), first lane wins. The
// leader's lane-0 call happens on the caller's stack; run() still drains
// the barrier before letting a leader exception escape, so workers never
// outlive the context they were handed.
//
// Reuse/shutdown: rounds may be issued back to back indefinitely; the
// destructor releases parked workers with a stop flag and joins. A round
// in flight at destruction time completes first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace acp {

class RoundGang {
 public:
  /// One round's work: called once per released lane with the context
  /// given to begin_round()/run() and the lane index (workers get lanes
  /// 1..num_workers; the leader calls itself with lane 0).
  using Job = void (*)(void* ctx, std::size_t lane);

  /// Spawns `num_workers` parked threads. 0 is valid: the gang then has
  /// a single lane (the leader) and run() degenerates to job(ctx, 0).
  explicit RoundGang(std::size_t num_workers);
  ~RoundGang();

  RoundGang(const RoundGang&) = delete;
  RoundGang& operator=(const RoundGang&) = delete;

  /// Worker lanes plus the leader lane.
  [[nodiscard]] std::size_t lanes() const noexcept {
    return workers_.size() + 1;
  }

  /// Release every parked worker with (ctx, job). The caller should then
  /// run job(ctx, 0) itself and call finish_round(). At most one round
  /// may be in flight.
  void begin_round(void* ctx, Job job);

  /// Block until every worker lane finished this round, then rethrow the
  /// first captured worker exception (lane order), if any.
  void finish_round();

  /// begin_round + leader lane 0 + finish_round. A leader exception is
  /// rethrown only after the barrier drains (worker exceptions, being
  /// earlier lanes... lane 0 is the leader, so its exception wins).
  void run(void* ctx, Job job);

 private:
  void worker_loop(std::size_t lane);

  std::mutex mutex_;
  std::condition_variable release_;
  std::condition_variable done_;
  std::uint64_t epoch_ = 0;      // bumped once per round; workers park on it
  std::size_t remaining_ = 0;    // workers still running the current round
  void* ctx_ = nullptr;
  Job job_ = nullptr;
  bool stopping_ = false;
  /// errors_[lane] is written only by that lane's worker and read by the
  /// leader after the barrier (the remaining_ handshake under mutex_
  /// orders the accesses).
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> workers_;
};

}  // namespace acp
