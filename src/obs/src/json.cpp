#include "acp/obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "acp/util/contracts.hpp"

namespace acp::obs {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) *os_ << ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  *os_ << '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ACP_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  *os_ << '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ACP_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  ACP_EXPECTS(!needs_comma_.empty());
  ACP_EXPECTS(!after_key_);
  if (needs_comma_.back()) *os_ << ',';
  needs_comma_.back() = true;
  *os_ << '"' << escape(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  pre_value();
  *os_ << '"' << escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  pre_value();
  std::array<char, 64> buf{};
  const auto result =
      std::to_chars(buf.data(), buf.data() + buf.size(), number);
  ACP_ASSERT(result.ec == std::errc{});
  os_->write(buf.data(), result.ptr - buf.data());
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  pre_value();
  *os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  pre_value();
  *os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  pre_value();
  *os_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  *os_ << "null";
  return *this;
}

}  // namespace acp::obs
