#include "acp/obs/bandwidth.hpp"

#include <algorithm>

namespace acp::obs {
namespace {

[[nodiscard]] bool valid_player(PlayerId player) noexcept {
  return player != PlayerId{};
}

}  // namespace

std::atomic<bool> BandwidthMeter::enabled_{false};

const char* io_channel_name(IoChannel channel) noexcept {
  switch (channel) {
    case IoChannel::kBillboardCommit:
      return "billboard.commit";
    case IoChannel::kLedgerIngest:
      return "ledger.ingest";
    case IoChannel::kWindowQuery:
      return "ledger.window_query";
    case IoChannel::kGossipExchange:
      return "gossip.exchange";
    case IoChannel::kGossipDigest:
      return "gossip.digest";
    case IoChannel::kGossipDelta:
      return "gossip.delta";
    case IoChannel::kBillboardRpcPost:
      return "billboard.rpc.post";
    case IoChannel::kBillboardRpcQuery:
      return "billboard.rpc.query";
    case IoChannel::kBillboardRpcSnapshot:
      return "billboard.rpc.snapshot";
    case IoChannel::kCount:
      break;
  }
  return "unknown";
}

BandwidthMeter& BandwidthMeter::global() {
  static BandwidthMeter instance;
  return instance;
}

void BandwidthMeter::do_add(IoChannel channel, std::uint64_t bits,
                            bool is_write) {
  do_add_for(channel, bits, is_write, t_player_);
}

void BandwidthMeter::do_add_for(IoChannel channel, std::uint64_t bits,
                                bool is_write, PlayerId player) {
  ChannelCells& cells = channels_[static_cast<std::size_t>(channel)];
  if (is_write) {
    cells.write_ops.fetch_add(1, std::memory_order_relaxed);
    cells.write_bits.fetch_add(bits, std::memory_order_relaxed);
  } else {
    cells.read_ops.fetch_add(1, std::memory_order_relaxed);
    cells.read_bits.fetch_add(bits, std::memory_order_relaxed);
  }
  if (Sink* sink = t_sink_; sink != nullptr && valid_player(player)) {
    const std::size_t slot = player.value();
    if (slot < sink->read_bits.size()) {
      (is_write ? sink->write_bits : sink->read_bits)[slot] += bits;
    }
  }
}

void BandwidthMeter::fold_sink(const Sink& sink) {
  PlayerIoSample delta;
  for (std::size_t i = 0; i < sink.read_bits.size(); ++i) {
    const std::uint64_t r = sink.read_bits[i];
    const std::uint64_t w = sink.write_bits[i];
    if (r == 0 && w == 0) {
      continue;
    }
    delta.players += 1;
    delta.read_bits_sum += r;
    delta.read_bits_max = std::max(delta.read_bits_max, r);
    delta.write_bits_sum += w;
    delta.write_bits_max = std::max(delta.write_bits_max, w);
  }
  if (delta.players == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(player_mutex_);
  per_player_.players += delta.players;
  per_player_.read_bits_sum += delta.read_bits_sum;
  per_player_.read_bits_max =
      std::max(per_player_.read_bits_max, delta.read_bits_max);
  per_player_.write_bits_sum += delta.write_bits_sum;
  per_player_.write_bits_max =
      std::max(per_player_.write_bits_max, delta.write_bits_max);
}

BandwidthMeter::RunScope::RunScope(std::size_t num_players) {
  if (!enabled()) {
    return;
  }
  sink_ = new Sink(num_players);
  previous_ = t_sink_;
  t_sink_ = sink_;
}

BandwidthMeter::RunScope::~RunScope() {
  if (sink_ == nullptr) {
    return;
  }
  t_sink_ = previous_;
  global().fold_sink(*sink_);
  delete sink_;
}

BandwidthSnapshot BandwidthMeter::snapshot() const {
  BandwidthSnapshot out;
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    IoChannelSample& sample = out.channels[c];
    sample.read_ops = channels_[c].read_ops.load(std::memory_order_relaxed);
    sample.read_bits = channels_[c].read_bits.load(std::memory_order_relaxed);
    sample.write_ops = channels_[c].write_ops.load(std::memory_order_relaxed);
    sample.write_bits = channels_[c].write_bits.load(std::memory_order_relaxed);
    out.bits_read += sample.read_bits;
    out.bits_written += sample.write_bits;
  }
  std::lock_guard<std::mutex> lock(player_mutex_);
  out.per_player = per_player_;
  return out;
}

void BandwidthMeter::reset() {
  for (ChannelCells& cells : channels_) {
    cells.read_ops.store(0, std::memory_order_relaxed);
    cells.read_bits.store(0, std::memory_order_relaxed);
    cells.write_ops.store(0, std::memory_order_relaxed);
    cells.write_bits.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(player_mutex_);
  per_player_ = PlayerIoSample{};
}

}  // namespace acp::obs
