#include "acp/obs/json_value.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace acp::obs {

namespace {

std::string type_error(const char* wanted, JsonValue::Kind actual) {
  return std::string("expected ") + wanted + ", got " +
         JsonValue::kind_name(actual);
}

}  // namespace

JsonParseError::JsonParseError(std::size_t line, std::size_t column,
                               const std::string& message)
    : std::runtime_error("json parse error at " + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

const char* JsonValue::kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error(type_error("bool", kind_));
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error(type_error("number", kind_));
  }
  return number_;
}

std::uint64_t JsonValue::as_u64() const {
  const double d = as_number();
  if (exact_u64_valid_) return u64_;
  if (d < 0.0 || d != std::floor(d) || d > 18446744073709549568.0) {
    throw std::runtime_error("expected a non-negative integer, got " +
                             std::to_string(d));
  }
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error(type_error("string", kind_));
  }
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error(type_error("array", kind_));
  }
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error(type_error("object", kind_));
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonParseError(line, column, message);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    if (at_end() || text_[pos_] != c) {
      fail(std::string("expected ") + what);
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal (expected 'null')");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  JsonValue parse_object() {
    expect('{', "'{'");
    JsonValue::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':', "':' after object key");
      skip_whitespace();
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    expect('[', "'['");
    JsonValue::Array elements;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      skip_whitespace();
      elements.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(elements));
  }

  std::string parse_string() {
    expect('"', "'\"'");
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              --pos_;
              fail("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any acp output; reject them explicitly).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          --pos_;
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const bool negative = !at_end() && text_[pos_] == '-';
    if (negative) ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("invalid number (no digits)");
    const std::size_t integer_end = pos_;
    bool integral = true;
    if (!at_end() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (digits() == 0) fail("invalid number (no digits after '.')");
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("invalid number (no exponent digits)");
    }
    // Plain unsigned integer tokens keep their exact 64-bit value so
    // seeds above 2^53 survive a load/save round-trip.
    if (integral && !negative) {
      std::uint64_t exact = 0;
      const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                             text_.data() + integer_end, exact);
      if (ec == std::errc() && ptr == text_.data() + integer_end) {
        return JsonValue::exact_u64(exact);
      }
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      fail("invalid number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace acp::obs
