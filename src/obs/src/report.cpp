#include "acp/obs/report.hpp"

#include <ostream>

#include "acp/obs/json.hpp"

namespace acp::obs {

void RunReport::set_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), ConfigValue(std::move(value)));
}

void RunReport::set_config(std::string key, double value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::set_config(std::string key, std::uint64_t value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::set_config(std::string key, bool value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::add_metric(std::string name, const Summary& summary) {
  metrics_.emplace_back(std::move(name), summary);
}

void RunReport::set_metrics_snapshot(MetricsSnapshot snapshot) {
  snapshot_ = std::move(snapshot);
}

void RunReport::write_json(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.member("schema", kSchema);

  json.key("config").begin_object();
  for (const auto& [key, value] : config_) {
    json.key(key);
    std::visit([&](const auto& v) { json.value(v); }, value);
  }
  json.end_object();

  json.key("metrics").begin_object();
  for (const auto& [name, summary] : metrics_) {
    json.key(name).begin_object();
    json.member("count", summary.count())
        .member("mean", summary.mean())
        .member("stddev", summary.stddev())
        .member("min", summary.min())
        .member("p50", summary.median())
        .member("p90", summary.p90())
        .member("p99", summary.p99())
        .member("max", summary.max())
        .member("ci95_low", summary.ci95_low())
        .member("ci95_high", summary.ci95_high());
    json.end_object();
  }
  json.end_object();

  json.key("counters").begin_object();
  for (const auto& counter : snapshot_.counters) {
    json.member(counter.name, counter.value);
  }
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& gauge : snapshot_.gauges) {
    json.member(gauge.name, gauge.value);
  }
  json.end_object();

  json.key("timers").begin_object();
  for (const auto& timer : snapshot_.timers) {
    json.key(timer.name).begin_object();
    json.member("count", timer.count).member("total_ns", timer.total_ns);
    json.end_object();
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& histogram : snapshot_.histograms) {
    json.key(histogram.name).begin_object();
    json.member("lo", histogram.lo).member("hi", histogram.hi);
    json.key("buckets").begin_array();
    for (const std::uint64_t count : histogram.bucket_counts) {
      json.value(count);
    }
    json.end_array();
    json.member("underflow", histogram.underflow)
        .member("overflow", histogram.overflow);
    json.end_object();
  }
  json.end_object();

  json.end_object();
  os << '\n';
}

}  // namespace acp::obs
