#include "acp/obs/report.hpp"

#include <ostream>

#include "acp/obs/json.hpp"

namespace acp::obs {

void RunReport::set_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), ConfigValue(std::move(value)));
}

void RunReport::set_config(std::string key, double value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::set_config(std::string key, std::uint64_t value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::set_config(std::string key, bool value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::add_metric(std::string name, const Summary& summary) {
  metrics_.emplace_back(std::move(name), summary);
}

void RunReport::set_metrics_snapshot(MetricsSnapshot snapshot) {
  snapshot_ = std::move(snapshot);
}

void RunReport::set_phase_profile(PhaseProfileSnapshot profile) {
  phases_ = std::move(profile);
}

void RunReport::set_bandwidth(BandwidthSnapshot bandwidth) {
  bandwidth_ = bandwidth;
}

void RunReport::write_json(std::ostream& os) const {
  JsonWriter json(os);
  json.begin_object();
  json.member("schema", kSchema);

  json.key("config").begin_object();
  for (const auto& [key, value] : config_) {
    json.key(key);
    std::visit([&](const auto& v) { json.value(v); }, value);
  }
  json.end_object();

  json.key("metrics").begin_object();
  for (const auto& [name, summary] : metrics_) {
    json.key(name).begin_object();
    json.member("count", summary.count())
        .member("mean", summary.mean())
        .member("stddev", summary.stddev())
        .member("min", summary.min())
        .member("p50", summary.median())
        .member("p90", summary.p90())
        .member("p99", summary.p99())
        .member("max", summary.max())
        .member("ci95_low", summary.ci95_low())
        .member("ci95_high", summary.ci95_high());
    json.end_object();
  }
  json.end_object();

  json.key("counters").begin_object();
  for (const auto& counter : snapshot_.counters) {
    json.member(counter.name, counter.value);
  }
  json.end_object();

  json.key("gauges").begin_object();
  for (const auto& gauge : snapshot_.gauges) {
    json.member(gauge.name, gauge.value);
  }
  json.end_object();

  json.key("timers").begin_object();
  for (const auto& timer : snapshot_.timers) {
    json.key(timer.name).begin_object();
    json.member("count", timer.count).member("total_ns", timer.total_ns);
    json.end_object();
  }
  json.end_object();

  json.key("histograms").begin_object();
  for (const auto& histogram : snapshot_.histograms) {
    json.key(histogram.name).begin_object();
    json.member("lo", histogram.lo).member("hi", histogram.hi);
    json.key("buckets").begin_array();
    for (const std::uint64_t count : histogram.bucket_counts) {
      json.value(count);
    }
    json.end_array();
    json.member("underflow", histogram.underflow)
        .member("overflow", histogram.overflow);
    json.end_object();
  }
  json.end_object();

  json.key("phases").begin_object();
  if (phases_.has_value()) {
    const PhaseProfileSnapshot& p = *phases_;
    json.key("rounds").begin_object();
    json.member("parallel", p.parallel_rounds)
        .member("sequential", p.sequential_rounds);
    json.end_object();

    json.key("engine.kernel.evaluate").begin_object();
    json.member("total_ns", p.evaluate_ns);
    json.key("shards").begin_array();
    for (std::size_t s = 0; s < p.shards.size(); ++s) {
      json.begin_object();
      json.member("shard", s)
          .member("rounds", p.shards[s].rounds)
          .member("evaluate_ns", p.shards[s].evaluate_ns)
          .member("stage_ns", p.shards[s].stage_ns)
          .member("wake_ns", p.shards[s].wake_ns);
      json.end_object();
    }
    json.end_array();
    json.end_object();

    json.key("engine.kernel.stage").begin_object();
    json.member("total_ns", p.stage_ns);
    json.end_object();

    json.key("engine.kernel.apply").begin_object();
    json.member("total_ns", p.apply_ns);
    json.end_object();

    json.key("engine.kernel.merge").begin_object();
    json.member("total_ns", p.merge_ns);
    json.end_object();

    json.key("engine.kernel.barrier").begin_object();
    json.member("total_ns", p.barrier_ns);
    json.end_object();

    json.key("imbalance").begin_object();
    json.member("slowest_shard_ns", p.slowest_shard_ns)
        .member("fastest_shard_ns", p.fastest_shard_ns);
    json.key("ratio_histogram").begin_object();
    json.member("lo", p.imbalance.bin_low(0))
        .member("hi", p.imbalance.bin_high(p.imbalance.num_bins() - 1));
    json.key("buckets").begin_array();
    for (std::size_t b = 0; b < p.imbalance.num_bins(); ++b) {
      json.value(static_cast<std::uint64_t>(p.imbalance.bin_count(b)));
    }
    json.end_array();
    json.member("underflow",
                static_cast<std::uint64_t>(p.imbalance.underflow()))
        .member("overflow", static_cast<std::uint64_t>(p.imbalance.overflow()));
    json.end_object();
    json.end_object();

    json.key("pool").begin_object();
    json.member("tasks", p.pool_tasks)
        .member("wake_ns", p.pool_wake_ns)
        .member("max_queue_depth", p.pool_max_queue_depth);
    json.end_object();
  }
  json.end_object();

  json.key("bandwidth").begin_object();
  if (bandwidth_.has_value()) {
    const BandwidthSnapshot& b = *bandwidth_;
    json.member("engine.io.bits_read", b.bits_read)
        .member("engine.io.bits_written", b.bits_written);
    json.key("channels").begin_object();
    for (std::size_t c = 0; c < b.channels.size(); ++c) {
      const IoChannelSample& channel = b.channels[c];
      json.key(io_channel_name(static_cast<IoChannel>(c))).begin_object();
      json.member("read_ops", channel.read_ops)
          .member("read_bits", channel.read_bits)
          .member("write_ops", channel.write_ops)
          .member("write_bits", channel.write_bits);
      json.end_object();
    }
    json.end_object();
    json.key("per_player").begin_object();
    const double players = b.per_player.players > 0
                               ? static_cast<double>(b.per_player.players)
                               : 1.0;
    json.member("players", b.per_player.players)
        .member("read_bits_mean",
                static_cast<double>(b.per_player.read_bits_sum) / players)
        .member("read_bits_max", b.per_player.read_bits_max)
        .member("write_bits_mean",
                static_cast<double>(b.per_player.write_bits_sum) / players)
        .member("write_bits_max", b.per_player.write_bits_max);
    json.end_object();
  }
  json.end_object();

  json.end_object();
  os << '\n';
}

}  // namespace acp::obs
