#include "acp/obs/metrics.hpp"

namespace acp::obs {

std::atomic<bool> MetricsRegistry::enabled_{false};

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

TimerStat& MetricsRegistry::timer(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<TimerStat>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back(CounterSample{name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back(GaugeSample{name, gauge->value()});
  }
  out.timers.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    out.timers.push_back(
        TimerSample{name, timer->count(), timer->total_ns()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    const Histogram snap = histogram->snapshot();
    HistogramSample sample;
    sample.name = name;
    sample.lo = snap.num_bins() > 0 ? snap.bin_low(0) : 0.0;
    sample.hi =
        snap.num_bins() > 0 ? snap.bin_high(snap.num_bins() - 1) : 0.0;
    sample.bucket_counts.reserve(snap.num_bins());
    for (std::size_t b = 0; b < snap.num_bins(); ++b) {
      sample.bucket_counts.push_back(snap.bin_count(b));
    }
    sample.underflow = snap.underflow();
    sample.overflow = snap.overflow();
    out.histograms.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, timer] : timers_) timer->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace acp::obs
