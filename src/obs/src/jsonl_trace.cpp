#include "acp/obs/jsonl_trace.hpp"

#include <ostream>

#include "acp/obs/json.hpp"

namespace acp::obs {

void JsonlTraceWriter::on_run_begin(const RunContext& context) {
  JsonWriter json(*os_);
  json.begin_object()
      .member("schema", "acp.trace.v1")
      .member("type", "run_begin")
      .member("players", context.num_players)
      .member("honest", context.num_honest)
      .member("objects", context.num_objects)
      .member("seed", context.seed)
      .member("engine_threads", context.engine_threads)
      .end_object();
  *os_ << '\n';
}

void JsonlTraceWriter::on_round_end(Round round, const Billboard& billboard,
                                    std::size_t active_honest,
                                    std::size_t satisfied_honest,
                                    std::size_t probes_this_round) {
  JsonWriter json(*os_);
  json.begin_object()
      .member("type", "round")
      .member("round", static_cast<std::int64_t>(round))
      .member("active", active_honest)
      .member("satisfied", satisfied_honest)
      .member("probes", probes_this_round)
      .member("posts", billboard.size())
      .end_object();
  *os_ << '\n';
}

void JsonlTraceWriter::on_run_end(const RunResult& result) {
  JsonWriter json(*os_);
  json.begin_object()
      .member("type", "run_end")
      .member("rounds", static_cast<std::int64_t>(result.rounds_executed))
      .member("all_satisfied", result.all_honest_satisfied)
      .member("total_posts", result.total_posts)
      .member("total_probes",
              static_cast<std::uint64_t>(result.total_honest_probes()))
      .member("mean_probes", result.mean_honest_probes())
      .member("max_probes",
              static_cast<std::uint64_t>(result.max_honest_probes()))
      .end_object();
  *os_ << '\n';
}

}  // namespace acp::obs
