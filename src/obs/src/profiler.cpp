#include "acp/obs/profiler.hpp"

#include <algorithm>

namespace acp::obs {

std::atomic<bool> PhaseProfiler::enabled_{false};

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler instance;
  return instance;
}

void PhaseProfiler::record_parallel_round(std::span<const ShardSpan> shards,
                                          std::uint64_t barrier_ns,
                                          std::uint64_t merge_ns) {
  if (shards.empty()) {
    return;
  }
  // Imbalance compares each shard's full working span (evaluate + staged
  // apply) — the quantity the barrier actually waits on.
  std::uint64_t slowest = 0;
  std::uint64_t fastest = shards[0].evaluate_ns + shards[0].stage_ns;
  std::uint64_t evaluate_total = 0;
  std::uint64_t stage_total = 0;
  for (const ShardSpan& span : shards) {
    const std::uint64_t working = span.evaluate_ns + span.stage_ns;
    evaluate_total += span.evaluate_ns;
    stage_total += span.stage_ns;
    slowest = std::max(slowest, working);
    fastest = std::min(fastest, working);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  parallel_rounds_ += 1;
  evaluate_ns_ += evaluate_total;
  stage_ns_ += stage_total;
  merge_ns_ += merge_ns;
  barrier_ns_ += barrier_ns;
  slowest_shard_ns_ += slowest;
  fastest_shard_ns_ += fastest;
  if (shards_.size() < shards.size()) {
    shards_.resize(shards.size());
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards_[s].rounds += 1;
    shards_[s].evaluate_ns += shards[s].evaluate_ns;
    shards_[s].stage_ns += shards[s].stage_ns;
    shards_[s].wake_ns += shards[s].wake_ns;
  }
  if (shards.size() >= 2 && fastest > 0) {
    imbalance_.add(static_cast<double>(slowest) / static_cast<double>(fastest));
  }
}

void PhaseProfiler::record_sequential_round(std::uint64_t evaluate_ns,
                                            std::uint64_t apply_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  sequential_rounds_ += 1;
  evaluate_ns_ += evaluate_ns;
  apply_ns_ += apply_ns;
}

PhaseProfileSnapshot PhaseProfiler::snapshot() const {
  PhaseProfileSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.parallel_rounds = parallel_rounds_;
    out.sequential_rounds = sequential_rounds_;
    out.evaluate_ns = evaluate_ns_;
    out.stage_ns = stage_ns_;
    out.apply_ns = apply_ns_;
    out.merge_ns = merge_ns_;
    out.barrier_ns = barrier_ns_;
    out.slowest_shard_ns = slowest_shard_ns_;
    out.fastest_shard_ns = fastest_shard_ns_;
    out.shards = shards_;
    out.imbalance = imbalance_;
  }
  out.pool_tasks = pool_tasks_.load(std::memory_order_relaxed);
  out.pool_wake_ns = pool_wake_ns_.load(std::memory_order_relaxed);
  out.pool_max_queue_depth =
      pool_max_queue_depth_.load(std::memory_order_relaxed);
  return out;
}

void PhaseProfiler::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  parallel_rounds_ = 0;
  sequential_rounds_ = 0;
  evaluate_ns_ = 0;
  stage_ns_ = 0;
  apply_ns_ = 0;
  merge_ns_ = 0;
  barrier_ns_ = 0;
  slowest_shard_ns_ = 0;
  fastest_shard_ns_ = 0;
  shards_.clear();
  imbalance_ = Histogram(1.0, 8.0, 28);
  pool_tasks_.store(0, std::memory_order_relaxed);
  pool_wake_ns_.store(0, std::memory_order_relaxed);
  pool_max_queue_depth_.store(0, std::memory_order_relaxed);
}

}  // namespace acp::obs
