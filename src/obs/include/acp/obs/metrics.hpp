// Metrics registry — named counters, gauges, fixed-bucket histograms and
// wall-clock timer accumulators for instrumenting the simulator's hot
// paths (engine round loops, billboard scans, ledger tallies, DISTILL rule
// evaluation).
//
// Collection is *off by default*: a single process-global atomic flag
// gates every recording site, so an uninstrumented run pays one relaxed
// load per site and nothing else. Enable with MetricsRegistry::set_enabled
// (acpsim does this when --report-json is given) and read everything back
// with snapshot(). Metric objects returned by the registry have stable
// addresses for the registry's lifetime, so call sites cache a reference
// in a function-local static and skip the name lookup thereafter.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "acp/stats/histogram.hpp"

namespace acp::obs {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (thin thread-safe wrapper over acp::Histogram).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins), histogram_(lo, hi, bins) {}

  void observe(double x) {
    const std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(x);
  }
  /// Copy of the current state (for rendering / export).
  [[nodiscard]] Histogram snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }
  void reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    histogram_ = Histogram(lo_, hi_, bins_);
  }

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  mutable std::mutex mutex_;
  Histogram histogram_;
};

/// Accumulated wall-clock time of a named scope (see acp/obs/timer.hpp).
class TimerStat {
 public:
  void record(std::uint64_t elapsed_ns) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    total_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct TimerSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

struct HistogramSample {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
};

/// Point-in-time copy of every registered metric, names sorted.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimerSample> timers;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static MetricsRegistry& global();

  /// Whether recording sites should collect. One relaxed load; safe (and
  /// cheap) to consult on hot paths.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime; histogram() returns the existing metric regardless of
  /// bounds if the name is already registered.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] TimerStat& timer(const std::string& name);
  [[nodiscard]] HistogramMetric& histogram(const std::string& name, double lo,
                                           double hi, std::size_t bins);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric (registrations are kept).
  void reset();

 private:
  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  // node-based maps: values have stable addresses across inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<TimerStat>> timers_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace acp::obs
