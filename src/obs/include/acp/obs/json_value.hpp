// Minimal JSON document model and recursive-descent parser — the read-side
// counterpart of JsonWriter. Powers the declarative scenario layer
// (scenarios/*.json) and any tool that needs to read back the JSON the
// writer produced. No external dependencies.
//
// Design notes:
//  * Objects preserve insertion order (a vector of pairs), matching the
//    writer's deterministic output so load→save round-trips are stable.
//  * Numbers are stored as double, but unsigned integer tokens (no sign,
//    fraction or exponent) additionally keep their exact 64-bit value, so
//    as_u64() round-trips the full seed range — 2^53+1 is not silently
//    rounded. Everything else is accepted via as_u64() with an exactness
//    check.
//  * Errors throw JsonParseError with 1-based line:column and a message
//    that names what was expected — parse errors surface to users running
//    `acpsim --scenario`, so they must be actionable.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acp::obs {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t line, std::size_t column,
                 const std::string& message);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() noexcept : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) noexcept : kind_(Kind::kNumber), number_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  /// Number that remembers its exact unsigned-integer source value (the
  /// parser uses this for plain integer tokens; as_number() still works).
  [[nodiscard]] static JsonValue exact_u64(std::uint64_t value) noexcept {
    JsonValue v(static_cast<double>(value));
    v.exact_u64_valid_ = true;
    v.u64_ = value;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::runtime_error naming the actual kind on
  /// mismatch so callers can wrap with field context.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// Number that must be a non-negative integer representable exactly.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Human-readable kind name ("object", "number", ...).
  [[nodiscard]] static const char* kind_name(Kind kind) noexcept;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  bool exact_u64_valid_ = false;
  std::uint64_t u64_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one JSON document; trailing non-whitespace is an error. Throws
/// JsonParseError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace acp::obs
