// JsonlTraceWriter — a RunObserver that streams one JSON object per line
// (JSONL): a run_begin header, one round record per committed round, and a
// run_end summary. Unlike TraceRecorder it buffers nothing, so it scales
// to arbitrarily long runs.
//
// Schema ("acp.trace.v1"):
//   {"schema":"acp.trace.v1","type":"run_begin","players":N,
//    "honest":H,"objects":M,"seed":S,"engine_threads":T}
//   // engine_threads = threads actually driving the run, after the
//   // engine_threads=0 -> hardware resolution and the sequential
//   // fallback for protocols without parallel_choose_safe.
//   {"type":"round","round":R,"active":A,"satisfied":S,"probes":P,
//    "posts":B}                              // B = cumulative billboard size
//   {"type":"run_end","rounds":R,"all_satisfied":true|false,
//    "total_posts":B,"total_probes":K,"mean_probes":X,"max_probes":Y}
#pragma once

#include <iosfwd>

#include "acp/engine/observer.hpp"

namespace acp::obs {

class JsonlTraceWriter final : public RunObserver {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonlTraceWriter(std::ostream& os) : os_(&os) {}

  void on_run_begin(const RunContext& context) override;
  void on_round_end(Round round, const Billboard& billboard,
                    std::size_t active_honest, std::size_t satisfied_honest,
                    std::size_t probes_this_round) override;
  void on_run_end(const RunResult& result) override;

 private:
  std::ostream* os_;
};

}  // namespace acp::obs
