// RAII wall-clock timers for hot paths.
//
// ACP_OBS_TIMED_SCOPE("engine.sync.round") expands to a function-local
// static registration (one name lookup ever) plus a scoped timer whose
// constructor and destructor reduce to a relaxed atomic load when metrics
// are disabled — cheap enough for per-round engine loops.
#pragma once

#include <chrono>
#include <cstdint>

#include "acp/obs/metrics.hpp"

namespace acp::obs {

/// Accumulates the lifetime of the scope into `stat` when metrics are
/// enabled at construction time; otherwise never touches the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat) noexcept
      : stat_(&stat), armed_(MetricsRegistry::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    stat_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }

 private:
  TimerStat* stat_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace acp::obs

#define ACP_OBS_CONCAT_IMPL(a, b) a##b
#define ACP_OBS_CONCAT(a, b) ACP_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope under `name` in the global registry.
#define ACP_OBS_TIMED_SCOPE(name)                                         \
  static ::acp::obs::TimerStat& ACP_OBS_CONCAT(acp_obs_stat_, __LINE__) = \
      ::acp::obs::MetricsRegistry::global().timer(name);                  \
  const ::acp::obs::ScopedTimer ACP_OBS_CONCAT(acp_obs_timer_, __LINE__)( \
      ACP_OBS_CONCAT(acp_obs_stat_, __LINE__))
