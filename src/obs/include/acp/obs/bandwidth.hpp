// BandwidthMeter — per-player and aggregate bits-read/bits-written
// accounting for the protocol's communication substrate.
//
// The paper's cost model counts probes; King–Saia's follow-up ("Breaking
// the O(n^2) Bit Barrier") makes *bits per processor* the resource that
// matters. This meter makes that measurable: every billboard commit,
// ledger ingest, window query and gossip delivery reports the wire size
// of what moved, attributed to a channel and — when the caller says whose
// traffic it is — to a player.
//
// Wire model (documented in docs/observability.md): a Post serializes to
// 161 bits (32 author + 32 round + 32 object + 64 value + 1 sign); a vote
// event scanned from a window query is 96 bits (32 voter + 32 object +
// 32 round). The absolute constants matter less than their consistency —
// trade-offs between protocols are ratios of the same yardstick.
//
// Attribution is thread-local so concurrent trials and the parallel
// kernel never contend: a RunScope installs a per-run sink (one slot per
// player) on the constructing thread, SinkScope propagates that sink into
// pool workers, and PlayerScope names the player whose traffic the
// current thread is generating. The parallel evaluate phase touches
// disjoint players per shard, so per-player slots are plain uint64s.
// Channel aggregates are commutative relaxed atomics.
//
// Disabled (the default), every metering site pays exactly one relaxed
// atomic load. `acpsim --profile` enables collection.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "acp/util/types.hpp"

namespace acp::obs {

/// Wire size of one billboard Post: 32-bit author + 32-bit round +
/// 32-bit object + 64-bit reported value + sign bit.
inline constexpr std::uint64_t kPostWireBits = 161;

/// Wire size of one vote event delivered by a window query:
/// 32-bit voter + 32-bit object + 32-bit round.
inline constexpr std::uint64_t kVoteEventWireBits = 96;

/// Wire size of the anti-entropy contact summary: 64-bit post count +
/// 64-bit order-independent set checksum. Two replicas with equal
/// summaries skip the digest entirely, so a quiescent contact costs
/// exactly this much.
inline constexpr std::uint64_t kGossipSummaryWireBits = 128;

/// Wire size of one digest (or want-list) entry: 32-bit author +
/// 32-bit per-author sequence high-water mark.
inline constexpr std::uint64_t kDigestEntryWireBits = 64;

/// Wire size of one delta range header: 32-bit author + 32-bit first
/// sequence number (the post count is implied by the payload length).
inline constexpr std::uint64_t kDeltaHeaderWireBits = 64;

/// Where the bits moved. Names are the report keys.
enum class IoChannel : std::size_t {
  kBillboardCommit = 0,  ///< posts written to the authoritative board
  kLedgerIngest = 1,     ///< posts read into a vote ledger
  kWindowQuery = 2,      ///< vote events scanned by window queries
  kGossipExchange = 3,   ///< posts pushed/pulled by the legacy exchange path
  kGossipDigest = 4,     ///< anti-entropy summaries, digests and want-lists
  kGossipDelta = 5,      ///< missing-post ranges transferred by anti-entropy
  kBillboardRpcPost = 6,      ///< bbwire commit frames to a remote billboard
  kBillboardRpcQuery = 7,     ///< bbwire window-query/reply frames
  kBillboardRpcSnapshot = 8,  ///< bbwire open/pull/stat frames
  kCount = 9,
};

[[nodiscard]] const char* io_channel_name(IoChannel channel) noexcept;

/// Lifetime totals for one channel.
struct IoChannelSample {
  std::uint64_t read_ops = 0;
  std::uint64_t read_bits = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t write_bits = 0;
};

/// Cross-player distribution of attributed traffic, folded once per
/// RunScope: `players` counts slots with any attributed IO.
struct PlayerIoSample {
  std::uint64_t players = 0;
  std::uint64_t read_bits_sum = 0;
  std::uint64_t read_bits_max = 0;
  std::uint64_t write_bits_sum = 0;
  std::uint64_t write_bits_max = 0;
};

struct BandwidthSnapshot {
  std::uint64_t bits_read = 0;
  std::uint64_t bits_written = 0;
  std::array<IoChannelSample, static_cast<std::size_t>(IoChannel::kCount)>
      channels{};
  PlayerIoSample per_player;
};

class BandwidthMeter {
 public:
  BandwidthMeter() = default;
  BandwidthMeter(const BandwidthMeter&) = delete;
  BandwidthMeter& operator=(const BandwidthMeter&) = delete;

  [[nodiscard]] static BandwidthMeter& global();

  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Per-run, per-player attribution sink. Installed thread-locally by
  /// RunScope; propagated into pool workers by SinkScope.
  struct Sink {
    explicit Sink(std::size_t num_players)
        : read_bits(num_players, 0), write_bits(num_players, 0) {}
    std::vector<std::uint64_t> read_bits;
    std::vector<std::uint64_t> write_bits;
  };

  /// Meter a read/write of `bits` on `channel`, attributing to the
  /// thread's current player (set by PlayerScope) when one is installed.
  /// One relaxed load and an immediate return when disabled.
  static void add_read(IoChannel channel, std::uint64_t bits) {
    if (!enabled()) {
      return;
    }
    global().do_add(channel, bits, /*is_write=*/false);
  }
  static void add_write(IoChannel channel, std::uint64_t bits) {
    if (!enabled()) {
      return;
    }
    global().do_add(channel, bits, /*is_write=*/true);
  }
  /// As above but attributing to an explicit player (e.g. a post's
  /// author) instead of the thread's current player.
  static void add_read_for(IoChannel channel, std::uint64_t bits,
                           PlayerId player) {
    if (!enabled()) {
      return;
    }
    global().do_add_for(channel, bits, /*is_write=*/false, player);
  }
  static void add_write_for(IoChannel channel, std::uint64_t bits,
                            PlayerId player) {
    if (!enabled()) {
      return;
    }
    global().do_add_for(channel, bits, /*is_write=*/true, player);
  }

  /// Installs a per-run sink on this thread for the scope's lifetime;
  /// the destructor folds per-player totals into the global meter.
  /// No-op (and no allocation) when metering is disabled at entry.
  class RunScope {
   public:
    explicit RunScope(std::size_t num_players);
    ~RunScope();
    RunScope(const RunScope&) = delete;
    RunScope& operator=(const RunScope&) = delete;

    /// The sink to hand to SinkScope in worker tasks (null if disabled).
    [[nodiscard]] Sink* sink() noexcept { return sink_; }

   private:
    Sink* sink_ = nullptr;
    Sink* previous_ = nullptr;
  };

  /// The sink installed on the calling thread, if any. A schedule policy
  /// grabs this before fanning out so worker tasks can attribute reads
  /// to the same run via SinkScope.
  [[nodiscard]] static Sink* current_sink() noexcept { return t_sink_; }

  /// Makes `sink` (usually RunScope::sink() captured by a pool task)
  /// the current thread's attribution sink. Null is fine: no-op.
  /// Fully inline: these scopes sit on the kernel's per-task and
  /// per-player paths, so the disabled/null fast path must not cost an
  /// out-of-line call.
  class SinkScope {
   public:
    explicit SinkScope(Sink* sink) noexcept {
      if (sink != nullptr) {
        previous_ = t_sink_;
        t_sink_ = sink;
        installed_ = true;
      }
    }
    ~SinkScope() {
      if (installed_) {
        t_sink_ = previous_;
      }
    }
    SinkScope(const SinkScope&) = delete;
    SinkScope& operator=(const SinkScope&) = delete;

   private:
    Sink* previous_ = nullptr;
    bool installed_ = false;
  };

  /// Names the player whose traffic this thread is currently generating.
  /// Constructed once per player evaluate/apply in the round kernel:
  /// when disabled the whole scope is one relaxed load and a branch.
  class PlayerScope {
   public:
    explicit PlayerScope(PlayerId player) noexcept {
      if (enabled()) {
        previous_ = t_player_;
        t_player_ = player;
        installed_ = true;
      }
    }
    ~PlayerScope() {
      if (installed_) {
        t_player_ = previous_;
      }
    }
    PlayerScope(const PlayerScope&) = delete;
    PlayerScope& operator=(const PlayerScope&) = delete;

   private:
    PlayerId previous_{};
    bool installed_ = false;
  };

  [[nodiscard]] BandwidthSnapshot snapshot() const;
  void reset();

 private:
  struct ChannelCells {
    std::atomic<std::uint64_t> read_ops{0};
    std::atomic<std::uint64_t> read_bits{0};
    std::atomic<std::uint64_t> write_ops{0};
    std::atomic<std::uint64_t> write_bits{0};
  };

  void do_add(IoChannel channel, std::uint64_t bits, bool is_write);
  void do_add_for(IoChannel channel, std::uint64_t bits, bool is_write,
                  PlayerId player);
  void fold_sink(const Sink& sink);

  static std::atomic<bool> enabled_;

  // Thread-local attribution state. Plain pointers/values: scopes
  // restore the previous value on destruction, so nesting (a gossip run
  // inside a trial, a worker task inside a run) composes. Inline so the
  // scope classes above stay header-only.
  static inline thread_local Sink* t_sink_ = nullptr;
  static inline thread_local PlayerId t_player_{};  // default = invalid

  std::array<ChannelCells, static_cast<std::size_t>(IoChannel::kCount)>
      channels_{};

  // Per-player distribution, folded one RunScope at a time.
  mutable std::mutex player_mutex_;
  PlayerIoSample per_player_;
};

}  // namespace acp::obs
