// Minimal streaming JSON writer — just enough for the observability
// outputs (run reports, JSONL traces, bench dumps). No external
// dependencies; emits compact one-line-friendly JSON with deterministic
// number formatting (shortest round-trip form via std::to_chars), so
// golden-file tests are stable across platforms.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace acp::obs {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer. Nothing is
  /// emitted until the first begin_object()/begin_array()/value().
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  // Note: no std::size_t overload — on LP64 it IS std::uint64_t.
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Shorthand for key(name) followed by value(v).
  template <class T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// JSON string escaping (quotes not included).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  /// Emit the separating comma if this is not the first element at the
  /// current nesting level.
  void pre_value();

  std::ostream* os_;
  std::vector<bool> needs_comma_;  // one flag per open container
  bool after_key_ = false;
};

}  // namespace acp::obs
