// PhaseProfiler — deep wall-clock accounting for the parallel round
// kernel and the thread pool underneath it.
//
// The metrics registry answers "how much, how many" (counters, aggregate
// timers). The profiler answers "where does the time GO when a round is
// sharded over a gang": per-shard evaluate and staged-apply spans,
// wake/handoff latency (round release -> first shard start; also
// ThreadPool submit -> task start for pool users like the trial driver),
// the kernel thread's barrier wait and canonical-order merge, the
// sequential policies' apply span, and a per-round shard-imbalance
// histogram (slowest/fastest shard span ratio).
//
// Collection is off by default behind its own process-global atomic flag
// (independent of MetricsRegistry so either can be enabled alone): a
// disabled site pays one relaxed load and nothing else — no clock reads.
// `acpsim --profile` turns it on.
//
// Determinism: workers write their own timing into per-shard slots owned
// by the schedule policy; the policy merges them into the profiler in
// canonical shard order on the kernel thread, after the barrier
// (record_parallel_round). Pool-level wake/queue records are commutative
// atomic sums. Profiling therefore never perturbs simulation results —
// a profiled run's RunResult is bit-identical to an unprofiled one
// (pinned by tests/profiler_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "acp/stats/histogram.hpp"

namespace acp::obs {

/// One shard's share of a parallel round, recorded by the lane that ran
/// it (single writer — shards are claimed atomically, each by exactly one
/// lane) and read by the kernel thread after the round barrier.
struct ShardSpan {
  std::uint64_t evaluate_ns = 0;  ///< choose_probe + world probe half
  std::uint64_t stage_ns = 0;     ///< staged-apply half (on_probe_result,
                                  ///< post drafts, halt decisions)
  std::uint64_t wake_ns = 0;      ///< round release -> shard start, recorded
                                  ///< on the first shard a lane claims
};

/// Lifetime totals for one shard index, merged in shard order.
struct PhaseShardTotals {
  std::uint64_t rounds = 0;
  std::uint64_t evaluate_ns = 0;
  std::uint64_t stage_ns = 0;
  std::uint64_t wake_ns = 0;
};

/// Point-in-time copy of everything the profiler accumulated.
struct PhaseProfileSnapshot {
  // Round-level (parallel kernel).
  std::uint64_t parallel_rounds = 0;
  std::uint64_t sequential_rounds = 0;
  std::uint64_t evaluate_ns = 0;  ///< sum of shard spans + sequential evals
  std::uint64_t stage_ns = 0;     ///< staged-apply half, summed over shards
  std::uint64_t apply_ns = 0;     ///< sequential policies' apply loop
  std::uint64_t merge_ns = 0;     ///< kernel-thread canonical-order fold
  std::uint64_t barrier_ns = 0;   ///< leader wait for the last worker lane
  /// Imbalance: per parallel round, the slowest and fastest shard spans
  /// (evaluate + stage) are accumulated separately; their per-round ratio
  /// feeds `imbalance`.
  std::uint64_t slowest_shard_ns = 0;
  std::uint64_t fastest_shard_ns = 0;
  std::vector<PhaseShardTotals> shards;  ///< indexed by shard id
  /// Histogram of slowest/fastest shard-span ratio, one sample per
  /// parallel round with >= 2 shards. Bucket range [1, 8).
  Histogram imbalance{1.0, 8.0, 28};

  // Pool-level (any ThreadPool: round kernel or trial driver).
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_wake_ns = 0;
  std::uint64_t pool_max_queue_depth = 0;
};

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// The process-wide profiler used by the built-in instrumentation.
  [[nodiscard]] static PhaseProfiler& global();

  /// Whether profiling sites should collect. One relaxed load; the only
  /// cost a disabled site pays.
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// One parallel kernel round: per-shard spans in canonical shard order
  /// (shard i of this round accumulates into lifetime shard i), plus the
  /// kernel thread's barrier wait and canonical-order merge span. Called
  /// once per round from the kernel thread.
  void record_parallel_round(std::span<const ShardSpan> shards,
                             std::uint64_t barrier_ns, std::uint64_t merge_ns);

  /// One sequential kernel round (AllActivePolicy with profiling on):
  /// a single implicit shard, no wake, no barrier.
  void record_sequential_round(std::uint64_t evaluate_ns,
                               std::uint64_t apply_ns);

  /// ThreadPool hooks — commutative atomic sums, safe from any thread.
  void record_task_wake(std::uint64_t wake_ns) noexcept {
    pool_tasks_.fetch_add(1, std::memory_order_relaxed);
    pool_wake_ns_.fetch_add(wake_ns, std::memory_order_relaxed);
  }
  void record_queue_depth(std::size_t depth) noexcept {
    std::uint64_t seen = pool_max_queue_depth_.load(std::memory_order_relaxed);
    while (seen < depth && !pool_max_queue_depth_.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] PhaseProfileSnapshot snapshot() const;

  /// Zero every accumulator (shard slots are dropped).
  void reset();

 private:
  static std::atomic<bool> enabled_;

  // Round-level accumulators: mutated once per round under the mutex
  // (concurrent trials may profile simultaneously).
  mutable std::mutex mutex_;
  std::uint64_t parallel_rounds_ = 0;
  std::uint64_t sequential_rounds_ = 0;
  std::uint64_t evaluate_ns_ = 0;
  std::uint64_t stage_ns_ = 0;
  std::uint64_t apply_ns_ = 0;
  std::uint64_t merge_ns_ = 0;
  std::uint64_t barrier_ns_ = 0;
  std::uint64_t slowest_shard_ns_ = 0;
  std::uint64_t fastest_shard_ns_ = 0;
  std::vector<PhaseShardTotals> shards_;
  Histogram imbalance_{1.0, 8.0, 28};

  // Pool-level accumulators: commutative atomics, recorded from workers.
  std::atomic<std::uint64_t> pool_tasks_{0};
  std::atomic<std::uint64_t> pool_wake_ns_{0};
  std::atomic<std::uint64_t> pool_max_queue_depth_{0};
};

}  // namespace acp::obs
