// ObserverMux — fans one engine observer slot out to N observers.
//
// The engines carry a single RunObserver*; the mux makes that slot
// composable: register a TraceRecorder, a JsonlTraceWriter, and an
// invariant checker at once, and each receives the identical callback
// sequence in registration order.
#pragma once

#include <vector>

#include "acp/engine/observer.hpp"

namespace acp::obs {

class ObserverMux final : public RunObserver {
 public:
  /// Register an observer (not owned; must outlive the mux). Null is
  /// ignored, so optional observers can be added unconditionally.
  void add(RunObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return observers_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return observers_.empty(); }

  void on_run_begin(const RunContext& context) override {
    for (RunObserver* observer : observers_) observer->on_run_begin(context);
  }

  void on_round_end(Round round, const Billboard& billboard,
                    std::size_t active_honest, std::size_t satisfied_honest,
                    std::size_t probes_this_round) override {
    for (RunObserver* observer : observers_) {
      observer->on_round_end(round, billboard, active_honest,
                             satisfied_honest, probes_this_round);
    }
  }

  void on_run_end(const RunResult& result) override {
    for (RunObserver* observer : observers_) observer->on_run_end(result);
  }

 private:
  std::vector<RunObserver*> observers_;
};

}  // namespace acp::obs
