// RunReport — a machine-readable summary of one experiment invocation:
// the configuration that produced it, one stats Summary per measured
// metric, and the metrics-registry totals (counters, gauges, timers,
// histograms) accumulated during the run.
//
// Serialized as versioned JSON ("acp.report.v1"):
//   {
//     "schema": "acp.report.v1",
//     "config":  {"n": 256, "protocol": "distill", ...},   // echo, insertion order
//     "metrics": {"probes_per_player": {"count":..,"mean":..,"stddev":..,
//                 "min":..,"p50":..,"p90":..,"p99":..,"max":..,
//                 "ci95_low":..,"ci95_high":..}, ...},
//     "counters": {"name": value, ...},
//     "gauges":   {"name": value, ...},
//     "timers":   {"name": {"count":..,"total_ns":..}, ...},
//     "histograms": {"name": {"lo":..,"hi":..,"buckets":[..],
//                    "underflow":..,"overflow":..}, ...}
//   }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "acp/obs/metrics.hpp"
#include "acp/stats/summary.hpp"

namespace acp::obs {

class RunReport {
 public:
  static constexpr std::string_view kSchema = "acp.report.v1";

  /// Config echo; entries serialize in insertion order.
  void set_config(std::string key, std::string value);
  void set_config(std::string key, const char* value) {
    set_config(std::move(key), std::string(value));
  }
  void set_config(std::string key, double value);
  void set_config(std::string key, std::uint64_t value);
  // Note: no std::size_t overload — on LP64 it IS std::uint64_t.
  void set_config(std::string key, bool value);

  /// Named metric summary; serialized in insertion order.
  void add_metric(std::string name, const Summary& summary);

  /// Attach the registry totals (typically MetricsRegistry::global()
  /// .snapshot() taken right after the run).
  void set_metrics_snapshot(MetricsSnapshot snapshot);

  void write_json(std::ostream& os) const;

 private:
  using ConfigValue = std::variant<std::string, double, std::uint64_t, bool>;

  std::vector<std::pair<std::string, ConfigValue>> config_;
  std::vector<std::pair<std::string, Summary>> metrics_;
  MetricsSnapshot snapshot_;
};

}  // namespace acp::obs
