// RunReport — a machine-readable summary of one experiment invocation:
// the configuration that produced it, one stats Summary per measured
// metric, the metrics-registry totals (counters, gauges, timers,
// histograms) accumulated during the run, and — when profiling was on —
// the kernel phase breakdown and bandwidth totals.
//
// Serialized as versioned JSON ("acp.report.v2"):
//   {
//     "schema": "acp.report.v2",
//     "config":  {"n": 256, "protocol": "distill", ...},   // echo, insertion order
//     "metrics": {"probes_per_player": {"count":..,"mean":..,"stddev":..,
//                 "min":..,"p50":..,"p90":..,"p99":..,"max":..,
//                 "ci95_low":..,"ci95_high":..}, ...},
//     "counters": {"name": value, ...},
//     "gauges":   {"name": value, ...},
//     "timers":   {"name": {"count":..,"total_ns":..}, ...},
//     "histograms": {"name": {"lo":..,"hi":..,"buckets":[..],
//                    "underflow":..,"overflow":..}, ...},
//     "phases": {} | {                      // PhaseProfiler snapshot
//       "rounds": {"parallel":..,"sequential":..},
//       "engine.kernel.evaluate": {"total_ns":..,
//         "shards":[{"shard":0,"rounds":..,"evaluate_ns":..,"wake_ns":..},..]},
//       "engine.kernel.apply":   {"total_ns":..},
//       "engine.kernel.barrier": {"total_ns":..},
//       "imbalance": {"slowest_shard_ns":..,"fastest_shard_ns":..,
//         "ratio_histogram":{"lo":..,"hi":..,"buckets":[..],
//                            "underflow":..,"overflow":..}},
//       "pool": {"tasks":..,"wake_ns":..,"max_queue_depth":..}},
//     "bandwidth": {} | {                   // BandwidthMeter snapshot
//       "engine.io.bits_read":..,"engine.io.bits_written":..,
//       "channels": {"billboard.commit": {"read_ops":..,"read_bits":..,
//                    "write_ops":..,"write_bits":..}, ...},
//       "per_player": {"players":..,"read_bits_mean":..,"read_bits_max":..,
//                      "write_bits_mean":..,"write_bits_max":..}}
//   }
// v1 -> v2: the two trailing sections are new; they serialize as {} when
// profiling was off so consumers can rely on the keys existing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "acp/obs/bandwidth.hpp"
#include "acp/obs/metrics.hpp"
#include "acp/obs/profiler.hpp"
#include "acp/stats/summary.hpp"

namespace acp::obs {

class RunReport {
 public:
  static constexpr std::string_view kSchema = "acp.report.v2";

  /// Config echo; entries serialize in insertion order.
  void set_config(std::string key, std::string value);
  void set_config(std::string key, const char* value) {
    set_config(std::move(key), std::string(value));
  }
  void set_config(std::string key, double value);
  void set_config(std::string key, std::uint64_t value);
  // Note: no std::size_t overload — on LP64 it IS std::uint64_t.
  void set_config(std::string key, bool value);

  /// Named metric summary; serialized in insertion order.
  void add_metric(std::string name, const Summary& summary);

  /// Attach the registry totals (typically MetricsRegistry::global()
  /// .snapshot() taken right after the run).
  void set_metrics_snapshot(MetricsSnapshot snapshot);

  /// Attach the kernel phase breakdown (PhaseProfiler snapshot). Unset,
  /// the "phases" section serializes as {}.
  void set_phase_profile(PhaseProfileSnapshot profile);

  /// Attach the bandwidth totals (BandwidthMeter snapshot). Unset, the
  /// "bandwidth" section serializes as {}.
  void set_bandwidth(BandwidthSnapshot bandwidth);

  void write_json(std::ostream& os) const;

 private:
  using ConfigValue = std::variant<std::string, double, std::uint64_t, bool>;

  std::vector<std::pair<std::string, ConfigValue>> config_;
  std::vector<std::pair<std::string, Summary>> metrics_;
  MetricsSnapshot snapshot_;
  std::optional<PhaseProfileSnapshot> phases_;
  std::optional<BandwidthSnapshot> bandwidth_;
};

}  // namespace acp::obs
