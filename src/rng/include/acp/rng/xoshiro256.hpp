// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman & Vigna).
//
// Satisfies std::uniform_random_bit_generator so it composes with <random>
// where needed, but the acp::Rng wrapper provides the distributions actually
// used by the simulation (portable across standard libraries).
#pragma once

#include <array>
#include <cstdint>

#include "acp/rng/splitmix64.hpp"

namespace acp {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256StarStar(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump ahead by 2^128 steps: yields a statistically independent stream
  /// sharing the same cycle. Used to derive per-player streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if ((word & (std::uint64_t{1} << bit)) != 0) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace acp
