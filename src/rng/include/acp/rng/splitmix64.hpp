// splitmix64 — the standard seeding/stream-derivation mixer.
//
// Used to expand a single 64-bit trial seed into independent state words for
// xoshiro256** and to derive per-player substreams. Reference: Sebastiano
// Vigna's public-domain implementation.
#pragma once

#include <cstdint>

namespace acp {

class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot mix of two words; used to derive substream seeds such as
/// (trial_seed, player_index) -> player seed.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
  sm.next();
  return sm.next() ^ b;
}

}  // namespace acp
