// acp::Rng — the simulation's random source.
//
// A thin, deterministic wrapper around xoshiro256** providing exactly the
// primitives the protocols need: bounded uniforms (unbiased, via rejection),
// Bernoulli trials, uniform picks from containers, and Fisher-Yates shuffles.
// All draws are reproducible from the seed, independent of the standard
// library implementation (std::uniform_int_distribution is not portable).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "acp/rng/xoshiro256.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform integer in [0, bound). Unbiased (Lemire-style rejection).
  std::uint64_t uniform_below(std::uint64_t bound) {
    ACP_EXPECTS(bound > 0);
    // Lemire's multiply-shift method with rejection on the low word.
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = gen_();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_below(n));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ACP_EXPECTS(lo <= hi);
    const auto range =
        static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 on full range
    if (range == 0) return static_cast<std::int64_t>(gen_());
    return lo + static_cast<std::int64_t>(uniform_below(range));
  }

  /// Uniform real in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    ACP_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    ACP_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
  }

  /// Uniformly random element of a non-empty span.
  template <class T>
  const T& pick(std::span<const T> items) {
    ACP_EXPECTS(!items.empty());
    return items[index(items.size())];
  }

  template <class T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// In-place Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (partial Fisher-Yates).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent substream: same cycle, jumped 2^128 * (id+1).
  /// Cheap way to hand each player its own generator.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

 private:
  Xoshiro256StarStar gen_;
};

/// Expand (trial_seed, stream index) into an independent Rng. Stateless
/// helper used by the engine to seed player and adversary streams.
[[nodiscard]] Rng derive_stream(std::uint64_t trial_seed,
                                std::uint64_t stream_index) noexcept;

}  // namespace acp
