#include "acp/rng/rng.hpp"

#include <numeric>

#include "acp/rng/splitmix64.hpp"

namespace acp {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  ACP_EXPECTS(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) init, O(k) swaps.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  Rng child = *this;
  // Re-seed from the current raw state via mixing rather than many jumps:
  // mix64 of two successive outputs with the stream id gives independent,
  // O(1)-derivable substreams.
  Rng probe = *this;
  const std::uint64_t a = probe.next_u64();
  const std::uint64_t b = probe.next_u64();
  child = Rng(mix64(a ^ stream_id, b + 0x9e3779b97f4a7c15ULL * stream_id));
  return child;
}

Rng derive_stream(std::uint64_t trial_seed,
                  std::uint64_t stream_index) noexcept {
  return Rng(mix64(trial_seed, stream_index));
}

}  // namespace acp
