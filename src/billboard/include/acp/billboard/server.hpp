// BillboardServer — the event loop around BillboardServerCore.
//
// One thread, readiness-driven (epoll on Linux, poll elsewhere), every
// socket nonblocking: the design point is *many mostly-idle connections*
// (the bbload acceptance bar is 10^4+ concurrent clients), which rules
// out thread-per-connection. All protocol work happens in the core; this
// class only moves bytes, tracks per-connection write backlogs, and owns
// the listener.
//
// serve() runs the loop on the calling thread until stop(); start() runs
// it on an internal thread (how acp_billboardd, the parity tests and the
// bench embed it). stats() is safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "acp/billboard/server_core.hpp"
#include "acp/net/socket.hpp"

namespace acp {

class BillboardServer {
 public:
  /// Binds and listens immediately (throws net::SocketError on failure).
  /// For "tcp:<host>:0" the chosen port is visible via endpoint().
  explicit BillboardServer(const net::Endpoint& endpoint);
  ~BillboardServer();
  BillboardServer(const BillboardServer&) = delete;
  BillboardServer& operator=(const BillboardServer&) = delete;

  [[nodiscard]] const net::Endpoint& endpoint() const noexcept {
    return listener_.endpoint();
  }

  /// Serve on the calling thread until stop() is called from another.
  void serve();

  /// Serve on a background thread; returns once the loop is running.
  void start();

  /// Stop the loop (idempotent) and join the background thread if any.
  void stop();

  [[nodiscard]] BillboardServerCore::Stats stats() const;

 private:
  struct Conn {
    net::FdHandle fd;
    std::uint64_t session = 0;
    std::vector<std::uint8_t> outbuf;  ///< unsent reply bytes
    std::size_t out_off = 0;           ///< sent prefix of outbuf
    bool closing = false;              ///< close once outbuf drains
  };

  void accept_ready();
  /// Drain readable bytes into the core. Returns false when the
  /// connection is finished (EOF, error, or core said close + drained).
  bool conn_readable(Conn& conn);
  /// Flush pending writes. Returns false when the connection is finished.
  bool conn_writable(Conn& conn);
  void close_conn(int fd);
  /// True when the connection should wait for writability.
  [[nodiscard]] static bool wants_write(const Conn& conn) noexcept {
    return conn.out_off < conn.outbuf.size();
  }

  void serve_epoll();
  void serve_poll();
  void update_interest(int fd, bool want_write);

  net::Listener listener_;
  net::FdHandle wake_read_;
  net::FdHandle wake_write_;
  std::unordered_map<int, Conn> conns_;
  std::vector<std::uint8_t> recv_buf_;
  int epoll_fd_ = -1;  ///< valid only inside serve_epoll

  mutable std::mutex core_mutex_;  ///< guards core_ (stats vs loop thread)
  BillboardServerCore core_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace acp
