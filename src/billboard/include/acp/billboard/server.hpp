// BillboardServer — the event loop(s) around BillboardServerCore.
//
// N IO workers (Options::io_threads), each a readiness-driven loop
// (epoll on Linux, poll elsewhere) over its own accepted connections,
// every socket nonblocking: the design point is *many mostly-idle
// connections* (the bbload acceptance bar is 10^4+ concurrent clients),
// which rules out thread-per-connection. All protocol work happens in
// the per-worker core; this class only moves bytes, routes frames to
// board owners, and tracks per-connection write backlogs.
//
// Scaling shape:
//  - Worker 0 owns the listener and hands accepted fds round-robin to
//    all workers (kAccept envelope) — portable where SO_REUSEPORT load
//    balancing is not (Unix sockets, poll fallback).
//  - Named shared boards are owned by worker owner_shard(name, shards)
//    % io_threads. A session that opens a board another worker owns is
//    pinned to that owner: every subsequent frame travels over a
//    mailbox (kRequest) and its reply bytes travel back (kReply), so
//    each Billboard stays single-writer and replies stay FIFO per
//    connection. Private boards never leave their home worker.
//  - Mailboxes are mutex+swap vectors with a wake-pipe kick on the
//    empty→nonempty edge; envelope payloads are copied (frames are
//    small; the copy is the price of zero shared board state).
//  - Writes are coalesced: replies accumulate in a per-connection
//    egress buffer and each loop iteration flushes every connection it
//    touched exactly once — many frames per send() syscall instead of
//    one syscall per frame.
//
// serve() runs worker 0 on the calling thread (spawning workers 1..N-1)
// until stop(); start() runs it on an internal thread (how
// acp_billboardd, the parity tests and the bench embed it). stats() is
// safe from any thread and sums across workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "acp/billboard/server_core.hpp"
#include "acp/net/socket.hpp"

namespace acp {

class BillboardServer {
 public:
  struct Options {
    /// IO workers, each with its own poll loop and core. 1 keeps the
    /// PR 9 single-threaded shape exactly.
    std::size_t io_threads = 1;
    /// Hash buckets for named-board placement (bucket b → worker
    /// b % io_threads). 0 means io_threads. Oversharding (e.g. 4x the
    /// thread count) keeps placement stable as io_threads varies.
    std::size_t shards = 0;
  };

  /// Binds and listens immediately (throws net::SocketError on failure).
  /// For "tcp:<host>:0" the chosen port is visible via endpoint().
  explicit BillboardServer(const net::Endpoint& endpoint);
  BillboardServer(const net::Endpoint& endpoint, Options options);
  ~BillboardServer();
  BillboardServer(const BillboardServer&) = delete;
  BillboardServer& operator=(const BillboardServer&) = delete;

  [[nodiscard]] const net::Endpoint& endpoint() const noexcept {
    return listener_.endpoint();
  }
  [[nodiscard]] std::size_t io_threads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Serve on the calling thread until stop() is called from another.
  void serve();

  /// Serve on a background thread; returns once the loop is running.
  void start();

  /// Stop the loop (idempotent) and join the background thread if any.
  void stop();

  /// Summed across workers.
  [[nodiscard]] BillboardServerCore::Stats stats() const;

 private:
  struct Conn {
    net::FdHandle fd;
    std::uint64_t session = 0;
    std::vector<std::uint8_t> outbuf;  ///< unsent reply bytes
    std::size_t out_off = 0;           ///< sent prefix of outbuf
    bool closing = false;              ///< close once outbuf drains
    bool dirty = false;                ///< queued for this iteration's flush
    bool reg_write = false;            ///< EPOLLOUT currently registered
  };

  /// Cross-worker message. kAccept hands a fresh connection to its
  /// worker; kRequest/kReply carry one forwarded frame and its reply
  /// bytes; kClose tells a board owner the remote session hung up.
  struct Envelope {
    enum class Kind : std::uint8_t { kAccept, kRequest, kReply, kClose };
    Kind kind = Kind::kRequest;
    net::FdHandle fd;          ///< kAccept only
    std::uint64_t token = 0;   ///< (home worker << 48) | home session id
    std::uint8_t type = 0;     ///< kRequest: wire frame type
    std::vector<std::uint8_t> payload;  ///< kRequest: frame payload;
                                        ///< kReply: raw reply bytes
  };

  struct Worker {
    Worker(std::size_t worker_index, std::size_t workers, std::size_t shards)
        : index(worker_index), core(worker_index, workers, shards) {}

    const std::size_t index;
    net::FdHandle wake_read;
    net::FdHandle wake_write;
    std::unordered_map<int, Conn> conns;
    std::unordered_map<std::uint64_t, int> session_fd;  ///< reply routing
    std::vector<std::uint8_t> recv_buf;
    std::vector<int> dirty;       ///< connections to flush this iteration
    std::vector<Envelope> drain;  ///< inbox swap target (reused)
    std::vector<std::uint8_t> reply_buf;  ///< apply_forwarded scratch
    int epoll_fd = -1;            ///< valid only inside the epoll loop

    std::mutex inbox_mutex;
    std::vector<Envelope> inbox;

    mutable std::mutex core_mutex;  ///< guards core (stats vs loop thread)
    BillboardServerCore core;

    std::thread thread;  ///< workers 1..N-1 (0 runs on the serve() thread)
  };

  void post(std::size_t target, Envelope envelope);
  void worker_loop(Worker& worker);
  void worker_epoll(Worker& worker);
  void worker_poll(Worker& worker);
  /// Process every queued envelope (called after a wake-pipe kick).
  void drain_inbox(Worker& worker);
  /// Worker 0 only: accept and deal connections round-robin.
  void accept_ready(Worker& worker);
  /// Take ownership of an accepted connection on this worker.
  void adopt_conn(Worker& worker, net::FdHandle fd);
  /// Drain readable bytes into the core; replies coalesce in outbuf.
  /// Returns false when the connection is finished (EOF or error).
  bool conn_readable(Worker& worker, Conn& conn);
  /// Flush pending writes. Returns false when the connection is finished.
  bool conn_writable(Conn& conn);
  void mark_dirty(Worker& worker, int fd, Conn& conn);
  /// One send() per touched connection, then interest bookkeeping.
  void flush_dirty(Worker& worker);
  void close_conn(Worker& worker, int fd);
  void update_interest(Worker& worker, int fd, Conn& conn);
  /// True when the connection should wait for writability.
  [[nodiscard]] static bool wants_write(const Conn& conn) noexcept {
    return conn.out_off < conn.outbuf.size();
  }

  net::Listener listener_;
  std::size_t shards_ = 1;
  std::size_t next_accept_ = 0;  ///< round-robin cursor (worker 0 only)
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace acp
