// Message codec of the billboard wire protocol "acp.bbwire.v1".
//
// acp::net owns the byte-level framing (header, varints, FrameAssembler);
// this layer gives the frames meaning: the request/reply vocabulary a
// billboard client and server speak, and the Post encoding both share.
// Every message is one frame; the frame `type` byte is a MsgType.
//
//   client -> server                server -> client
//   ----------------                ----------------
//   kOpen    open/join a board      kOpenOk   board dims + current state
//   kCommit  post batch for round   kCommitOk size + last round after
//   kPull    post-log range [a,b)   kPosts    the posts of that range
//   kWindowQuery  one-object count  kWindowCount
//   kWindowBatch  many-object count kWindowCounts
//   kReserve capacity hint          (no reply)
//   kStat    board stats            kStatOk
//                                   kError    failed request (any)
//
// A Post travels as: author varint · round zigzag-varint · object varint ·
// reported_value 8B LE IEEE-754 · flags u8 (bit 0 = positive). At the
// modeled 161 wire bits per post (BandwidthMeter::kPostWireBits) this
// concrete encoding averages ~12-14 bytes — the same order as the model.
//
// Decoders validate everything against the declared board dimensions and
// throw net::WireFormatError with actionable messages; the server answers
// kError instead of crashing, clients surface the error to the caller.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/post.hpp"
#include "acp/net/frame.hpp"
#include "acp/util/types.hpp"

namespace acp::bbwire {

inline constexpr const char* kWireSchema = "acp.bbwire.v1";

enum class MsgType : std::uint8_t {
  kOpen = 1,
  kOpenOk = 2,
  kCommit = 3,
  kCommitOk = 4,
  kPull = 5,
  kPosts = 6,
  kWindowQuery = 7,
  kWindowCount = 8,
  kWindowBatch = 9,
  kWindowCounts = 10,
  kReserve = 11,
  kStat = 12,
  kStatOk = 13,
  kError = 14,
};

[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;

/// Longest accepted shared-board name in kOpen.
inline constexpr std::size_t kMaxBoardNameLen = 64;

// -- Message bodies ---------------------------------------------------------

/// Open a board session. An empty `board` name opens a private board owned
/// by this connection; a non-empty name joins (creating on first open) a
/// board shared by every connection that names it — dimensions must match.
struct OpenMsg {
  std::uint8_t mode = 0;  ///< 0 = kAuthoritative, 1 = kReplica
  std::uint64_t num_players = 0;
  std::uint64_t num_objects = 0;
  std::string board;

  [[nodiscard]] Billboard::Mode billboard_mode() const noexcept {
    return mode == 0 ? Billboard::Mode::kAuthoritative
                     : Billboard::Mode::kReplica;
  }
};

/// Board state snapshot: answers kOpen (existing posts of a shared board),
/// kCommit (state after the commit) and kStat alike.
struct BoardStateMsg {
  std::uint64_t size = 0;         ///< posts committed so far
  Round last_round = -1;          ///< last committed round
};

struct CommitMsg {
  Round round = 0;
  std::vector<Post> posts;
};

/// Post-log range [begin, end) — how a client catches its mirror up after
/// other connections advanced a shared board.
struct PullMsg {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

struct PostsMsg {
  std::vector<Post> posts;
};

struct WindowQueryMsg {
  std::uint64_t object = 0;
  Round begin = 0;
  Round end = 0;
};

struct WindowCountMsg {
  Count count = 0;
};

struct WindowBatchMsg {
  Round begin = 0;
  Round end = 0;
  std::vector<std::uint64_t> objects;
};

struct WindowCountsMsg {
  std::vector<Count> counts;
};

struct ReserveMsg {
  std::uint64_t expected_posts = 0;
};

struct ErrorMsg {
  std::string message;
};

// -- Post codec -------------------------------------------------------------

void encode_post(std::vector<std::uint8_t>& out, const Post& post);

/// Decode one post, validating author < num_players, object < num_objects.
[[nodiscard]] Post decode_post(net::PayloadReader& reader,
                               std::uint64_t num_players,
                               std::uint64_t num_objects);

// -- Encoders (append one complete frame to `out`) --------------------------

void encode_open(std::vector<std::uint8_t>& out, const OpenMsg& msg);
void encode_board_state(std::vector<std::uint8_t>& out, MsgType type,
                        const BoardStateMsg& msg);
void encode_commit(std::vector<std::uint8_t>& out, Round round,
                   std::span<const Post> posts);
void encode_pull(std::vector<std::uint8_t>& out, const PullMsg& msg);
void encode_posts(std::vector<std::uint8_t>& out, std::span<const Post> posts);
void encode_window_query(std::vector<std::uint8_t>& out,
                         const WindowQueryMsg& msg);
void encode_window_count(std::vector<std::uint8_t>& out, Count count);
void encode_window_batch(std::vector<std::uint8_t>& out, Round begin, Round end,
                         std::span<const ObjectId> objects);
void encode_window_counts(std::vector<std::uint8_t>& out,
                          std::span<const Count> counts);
void encode_reserve(std::vector<std::uint8_t>& out, std::uint64_t expected);
void encode_stat(std::vector<std::uint8_t>& out);
void encode_error(std::vector<std::uint8_t>& out, std::string_view message);

// -- Decoders (validate + throw net::WireFormatError on malformed input) ----

[[nodiscard]] OpenMsg decode_open(std::span<const std::uint8_t> payload);
[[nodiscard]] BoardStateMsg decode_board_state(
    std::span<const std::uint8_t> payload, MsgType type);
/// Board dimensions bound author/object validation for the posts.
[[nodiscard]] CommitMsg decode_commit(std::span<const std::uint8_t> payload,
                                      std::uint64_t num_players,
                                      std::uint64_t num_objects);
[[nodiscard]] PullMsg decode_pull(std::span<const std::uint8_t> payload);
[[nodiscard]] PostsMsg decode_posts(std::span<const std::uint8_t> payload,
                                    std::uint64_t num_players,
                                    std::uint64_t num_objects);
[[nodiscard]] WindowQueryMsg decode_window_query(
    std::span<const std::uint8_t> payload, std::uint64_t num_objects);
[[nodiscard]] WindowCountMsg decode_window_count(
    std::span<const std::uint8_t> payload);
[[nodiscard]] WindowBatchMsg decode_window_batch(
    std::span<const std::uint8_t> payload, std::uint64_t num_objects);
[[nodiscard]] WindowCountsMsg decode_window_counts(
    std::span<const std::uint8_t> payload);
[[nodiscard]] ReserveMsg decode_reserve(std::span<const std::uint8_t> payload);
[[nodiscard]] ErrorMsg decode_error(std::span<const std::uint8_t> payload);

}  // namespace acp::bbwire
