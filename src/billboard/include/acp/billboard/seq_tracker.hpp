// SeqTracker — per-author post sequence bookkeeping for replicated
// billboards.
//
// The gossip anti-entropy substrate gives every post a monotonic
// per-author sequence number assigned at creation. A replica then needs
// exactly three things to stay consistent without a per-round dedup set:
//
//  * the contiguous high-water mark per author (seqs [0, hw) are held) —
//    a duplicate is any seq below it, an extension is the seq equal to it;
//  * a parking lot for out-of-order arrivals (a Byzantine injection can
//    reach a node before the same author's earlier lies do) that drains
//    as soon as the gap fills, so the PR 3 batched out-of-order billboard
//    merge consumes deltas directly in arrival order;
//  * an order-independent summary (count + xor-of-mixed-ids checksum) so
//    two replicas can decide "are we already in sync?" in O(1) wire bits.
//
// The tracker is deliberately payload-agnostic: callers associate each
// (author, seq) with a 32-bit payload (the gossip engine passes indices
// into its per-run post arena). Storage is a sorted sparse vector of
// (author, hw) pairs — per-replica memory is O(authors that ever posted),
// never O(n), which is what lets a 100k-node run keep 100k replicas.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "acp/util/types.hpp"

namespace acp {

class SeqTracker {
 public:
  /// Sequence number within one author's post stream, starting at 0.
  using Seq = std::uint32_t;
  /// Caller-defined 32-bit payload (e.g. an index into a post arena).
  using Payload = std::uint32_t;

  struct Entry {
    std::uint32_t author = 0;
    Seq high_water = 0;  ///< seqs [0, high_water) are held contiguously
  };

  enum class Offer {
    kDuplicate,  ///< seq below the high-water mark: already held
    kAccepted,   ///< extended the contiguous prefix (may drain parked)
    kParked,     ///< ahead of the prefix: buffered until the gap fills
  };

  /// Offer (author, seq, payload). On kAccepted the payload — plus any
  /// parked successors the acceptance unlocked — is appended to
  /// `accepted` in sequence order. kParked re-offers of a parked seq are
  /// reported as kDuplicate.
  Offer offer(std::uint32_t author, Seq seq, Payload payload,
              std::vector<Payload>& accepted);

  /// Offer the contiguous range [first, first + payloads.size()) of
  /// `author` in one call — the shape of an anti-entropy delta. One
  /// entry lookup for the whole range instead of one per post; the
  /// already-held prefix is skipped without touching the parking lot.
  /// Returns true iff the high-water mark advanced (newly committed
  /// payloads, including drained parked successors, are appended to
  /// `accepted` in sequence order).
  bool offer_range(std::uint32_t author, Seq first,
                   std::span<const Payload> payloads,
                   std::vector<Payload>& accepted);

  /// Contiguous high-water mark for `author` (0 if never seen).
  [[nodiscard]] Seq high_water(std::uint32_t author) const noexcept;

  /// Committed (contiguous) post count across all authors. Parked posts
  /// are excluded until their gap fills.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Order-independent checksum over the committed (author, seq) set.
  /// Equal (count, checksum) pairs identify equal sets up to 64-bit
  /// collisions — good enough to skip a digest, never used to skip a
  /// payload a peer explicitly asked for.
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }

  /// Parked (gapped) posts currently buffered.
  [[nodiscard]] std::size_t parked() const noexcept { return parked_.size(); }

  /// Sparse digest: all authors with a nonzero high-water mark, sorted by
  /// author id. This is the wire digest of the anti-entropy protocol.
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  /// The checksum contribution of one (author, seq) pair (splitmix64
  /// finalizer over the packed id). Exposed so tests and the wire model
  /// agree on the exact summary semantics.
  [[nodiscard]] static std::uint64_t mix(std::uint32_t author,
                                         Seq seq) noexcept;

 private:
  struct Parked {
    std::uint32_t author = 0;
    Seq seq = 0;
    Payload payload = 0;
  };

  /// Index of the entry for `author` in entries_, or entries_.size().
  [[nodiscard]] std::size_t find(std::uint32_t author) const noexcept;

  std::vector<Entry> entries_;  // sorted by author
  std::vector<Parked> parked_;  // unsorted; scanned on acceptance
  std::uint64_t count_ = 0;
  std::uint64_t checksum_ = 0;
};

}  // namespace acp
