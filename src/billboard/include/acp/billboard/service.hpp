// BillboardService — the engine-facing billboard boundary.
//
// The paper treats the billboard as a shared *service* (§2.1); the
// engines should not care whether it lives in their address space or
// behind a socket. This interface is that seam:
//
//  * InProcessBillboard — a thin adapter over today's Billboard. The
//    default everywhere; zero overhead over calling Billboard directly.
//  * RemoteBillboard (acp/billboard/remote.hpp) — a client speaking
//    acp.bbwire.v1 to acp_billboardd over a Unix or TCP socket.
//
// Contract: after commit_round(r, …) returns, board() exposes every post
// of rounds <= r and nothing newer — the synchronous visibility rule the
// protocols rely on. board() is a *local* read view (for RemoteBillboard,
// a mirror kept in lockstep with the server by the commit replies), so
// read-heavy protocol inner loops stay allocation- and syscall-free
// regardless of backend; that is also why in-process and remote runs
// produce bit-identical results.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/post.hpp"
#include "acp/net/socket.hpp"
#include "acp/util/types.hpp"

namespace acp {

class BillboardService {
 public:
  virtual ~BillboardService() = default;

  /// Commit all posts of `round` atomically (Billboard contract: rounds
  /// strictly increasing; mode-dependent stamp rules).
  virtual void commit_round(Round round, std::vector<Post> posts) = 0;

  /// Same, from a caller-owned staging buffer (no per-round vector).
  virtual void commit_round_from(Round round, std::span<const Post> posts) = 0;

  /// Capacity hint: expected total posts of the run.
  virtual void reserve(std::size_t expected_posts) = 0;

  /// The local read view. Always current with the last commit made
  /// *through this service instance* (see the visibility note above).
  [[nodiscard]] virtual const Billboard& board() const noexcept = 0;

  /// Votes for `object` with round in [begin, end), under the service's
  /// vote policy (kFirstPositive, f = 1 — the §4 one-vote rule).
  [[nodiscard]] virtual Count votes_in_window(ObjectId object, Round begin,
                                              Round end) = 0;

  /// Batched votes_in_window over one shared window; `out` is resized to
  /// objects.size(). Allocation-free in steady state.
  virtual void votes_in_window_batch(std::span<const ObjectId> objects,
                                     Round begin, Round end,
                                     std::vector<Count>& out) = 0;

  /// Copy of the full post log (commit order). Remote backends fetch it
  /// from the server — the one read that bypasses the local mirror, used
  /// by tests to pin mirror ≡ server.
  [[nodiscard]] virtual std::vector<Post> snapshot() = 0;

  /// Backend tag for reports/errors: "inproc", "socket:<path>", …
  [[nodiscard]] virtual std::string backend_name() const = 0;

  // Convenience forwarders so service users read like Billboard users.
  [[nodiscard]] std::size_t size() const noexcept { return board().size(); }
  [[nodiscard]] Round last_committed_round() const noexcept {
    return board().last_committed_round();
  }
  [[nodiscard]] std::size_t num_players() const noexcept {
    return board().num_players();
  }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return board().num_objects();
  }
};

/// The default backend: owns a Billboard, forwards every call. The vote
/// ledger behind the window queries is created lazily on first query so
/// engines that never query (all of them today — they keep their own
/// ledgers) pay nothing.
class InProcessBillboard final : public BillboardService {
 public:
  InProcessBillboard(std::size_t num_players, std::size_t num_objects,
                     Billboard::Mode mode = Billboard::Mode::kAuthoritative);
  ~InProcessBillboard() override;

  void commit_round(Round round, std::vector<Post> posts) override;
  void commit_round_from(Round round, std::span<const Post> posts) override;
  void reserve(std::size_t expected_posts) override;
  [[nodiscard]] const Billboard& board() const noexcept override {
    return board_;
  }
  [[nodiscard]] Count votes_in_window(ObjectId object, Round begin,
                                      Round end) override;
  void votes_in_window_batch(std::span<const ObjectId> objects, Round begin,
                             Round end, std::vector<Count>& out) override;
  [[nodiscard]] std::vector<Post> snapshot() override;
  [[nodiscard]] std::string backend_name() const override { return "inproc"; }

 private:
  class QueryLedger;  // lazily-built VoteLedger wrapper
  [[nodiscard]] QueryLedger& ledger();

  Billboard board_;
  std::unique_ptr<QueryLedger> ledger_;
};

/// Parsed form of the scenario/CLI `billboard.backend` value:
/// "inproc" | "socket:<path>" | "tcp:<host>:<port>".
struct BillboardBackendSpec {
  bool in_process = true;
  net::Endpoint endpoint;  ///< meaningful iff !in_process

  /// Throws std::invalid_argument naming the accepted forms.
  [[nodiscard]] static BillboardBackendSpec parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BillboardBackendSpec&,
                         const BillboardBackendSpec&) = default;
};

/// Build the backend `spec` names. Remote backends connect immediately
/// (throws net::SocketError if no server is listening) and open a private
/// per-connection board of the given dimensions and mode.
[[nodiscard]] std::unique_ptr<BillboardService> make_billboard_service(
    const BillboardBackendSpec& spec, std::size_t num_players,
    std::size_t num_objects,
    Billboard::Mode mode = Billboard::Mode::kAuthoritative);

}  // namespace acp
