// The shared billboard (paper §2.1).
//
// Append-only log of posts with system-enforced identity tags and
// timestamps. The engine is the only writer: it collects the posts of a
// round (honest reports and adversary fabrications alike), validates the
// system-level invariants, and commits them atomically. Readers during round
// r see exactly the posts committed for rounds < r — the synchronous
// visibility rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "acp/billboard/post.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/types.hpp"

namespace acp {

class Billboard {
 public:
  enum class Mode {
    /// The engine-owned authoritative log: stamped rounds equal the commit
    /// round and each player posts at most once per round.
    kAuthoritative,
    /// A node-local replica fed by gossip (acp_gossip): posts keep their
    /// *origin* stamps but arrive later and possibly batched, so a commit
    /// may carry several posts by one author and stamps from older rounds
    /// (never future ones). Deduplication is the replicator's job.
    kReplica,
  };

  Billboard(std::size_t num_players, std::size_t num_objects,
            Mode mode = Mode::kAuthoritative);

  [[nodiscard]] std::size_t num_players() const noexcept {
    return num_players_;
  }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return num_objects_;
  }

  /// Commit all posts of `round` at once. Enforces the billboard contract:
  /// rounds are committed in increasing order and authors/objects are in
  /// range. In kAuthoritative mode, additionally: the stamped round
  /// matches and each player posts at most once per round (a player takes
  /// one step per round, §2.1). In kReplica mode, stamps may be older than
  /// the commit (arrival) round but never newer.
  void commit_round(Round round, std::vector<Post> posts);

  /// Same contract, appending from a caller-owned buffer. Lets engines
  /// that stage posts in a reusable arena commit without building (and
  /// then discarding) a fresh vector per round. (Named, not overloaded:
  /// a braced post list must keep resolving to the vector form above.)
  void commit_round_from(Round round, std::span<const Post> posts);

  /// Pre-size the post log. Engines that can bound the post volume of a
  /// run (roughly one vote post per player) call this once up front so
  /// the log never reallocates mid-run.
  void reserve(std::size_t expected_posts) { posts_.reserve(expected_posts); }

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// All committed posts, in commit order (nondecreasing rounds).
  [[nodiscard]] const std::vector<Post>& posts() const noexcept {
    return posts_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return posts_.size(); }

  /// Highest committed round, or -1 before the first commit.
  [[nodiscard]] Round last_committed_round() const noexcept {
    return last_round_;
  }

 private:
  /// Shared validation for both commit overloads; bumps last_round_.
  void validate_round(Round round, std::span<const Post> posts);

  std::size_t num_players_;
  std::size_t num_objects_;
  Mode mode_;
  std::vector<Post> posts_;
  Round last_round_ = -1;

  // Generation-stamped per-author scratch for the one-post-per-round
  // check (authoritative mode): O(posts) per commit, allocation-free
  // after the first, instead of a fresh sort per round.
  std::vector<std::uint64_t> author_stamp_;
  std::uint64_t commit_epoch_ = 0;
};

}  // namespace acp
