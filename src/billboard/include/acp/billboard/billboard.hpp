// The shared billboard (paper §2.1).
//
// Append-only log of posts with system-enforced identity tags and
// timestamps. The engine is the only writer: it collects the posts of a
// round (honest reports and adversary fabrications alike), validates the
// system-level invariants, and commits them atomically. Readers during round
// r see exactly the posts committed for rounds < r — the synchronous
// visibility rule.
#pragma once

#include <cstddef>
#include <vector>

#include "acp/billboard/post.hpp"
#include "acp/util/contracts.hpp"
#include "acp/util/types.hpp"

namespace acp {

class Billboard {
 public:
  enum class Mode {
    /// The engine-owned authoritative log: stamped rounds equal the commit
    /// round and each player posts at most once per round.
    kAuthoritative,
    /// A node-local replica fed by gossip (acp_gossip): posts keep their
    /// *origin* stamps but arrive later and possibly batched, so a commit
    /// may carry several posts by one author and stamps from older rounds
    /// (never future ones). Deduplication is the replicator's job.
    kReplica,
  };

  Billboard(std::size_t num_players, std::size_t num_objects,
            Mode mode = Mode::kAuthoritative);

  [[nodiscard]] std::size_t num_players() const noexcept {
    return num_players_;
  }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return num_objects_;
  }

  /// Commit all posts of `round` at once. Enforces the billboard contract:
  /// rounds are committed in increasing order and authors/objects are in
  /// range. In kAuthoritative mode, additionally: the stamped round
  /// matches and each player posts at most once per round (a player takes
  /// one step per round, §2.1). In kReplica mode, stamps may be older than
  /// the commit (arrival) round but never newer.
  void commit_round(Round round, std::vector<Post> posts);

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// All committed posts, in commit order (nondecreasing rounds).
  [[nodiscard]] const std::vector<Post>& posts() const noexcept {
    return posts_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return posts_.size(); }

  /// Highest committed round, or -1 before the first commit.
  [[nodiscard]] Round last_committed_round() const noexcept {
    return last_round_;
  }

 private:
  std::size_t num_players_;
  std::size_t num_objects_;
  Mode mode_;
  std::vector<Post> posts_;
  Round last_round_ = -1;
};

}  // namespace acp
