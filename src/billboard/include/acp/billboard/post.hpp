// A single billboard posting (paper §2.1).
//
// The billboard substrate guarantees that every message is reliably tagged
// with the posting player's identity and a timestamp, and that no message is
// ever erased. The *content* (object, reported value, direction) is entirely
// up to the poster — Byzantine players lie freely.
#pragma once

#include "acp/util/types.hpp"

namespace acp {

struct Post {
  /// Reliably tagged by the system — a poster cannot forge this.
  PlayerId author;
  /// Timestamp: the synchronous round (or async step) in which it was posted.
  /// Stamped by the system, not the poster.
  Round round = 0;
  /// Which object the post talks about.
  ObjectId object;
  /// The value the poster claims to have observed. Honest players report
  /// truthfully; dishonest players report anything.
  double reported_value = 0.0;
  /// Recommendation direction: true = "this object is good". DISTILL uses
  /// only positive reports (§4); negative reports exist so that the
  /// "is slander useless?" question (§6) can be explored experimentally.
  bool positive = false;

  friend bool operator==(const Post&, const Post&) = default;
};

}  // namespace acp
