// RemoteBillboard — a BillboardService backed by acp_billboardd.
//
// One blocking bbwire connection per service instance. With the default
// pipeline depth of 1, commits are a round-trip: encode the batch, send,
// wait for the server's kCommitOk — only then is the same batch applied
// to the local mirror, so the mirror never runs ahead of the
// authoritative server log and a server-side rejection (kError) surfaces
// as an exception *before* any local state changed. Reads (the
// protocols' hot path) never touch the socket: they go through the
// mirror, which is exactly why remote runs are bit-identical to
// in-process runs.
//
// Pipelining (pipeline > 1, private boards only): up to K commits ride
// the wire before the first ack is read — the protocol is
// length-prefixed and replies are FIFO per connection, so acks match
// in-flight commits by order. The batch is applied to the mirror
// optimistically at send time (on a private board the server accepts
// exactly what a local Billboard accepts, so the mirror still equals
// the server log at every read point of a correct run), each ack is
// verified against the expected log size, and every in-flight ack is
// drained before any read RPC touches the socket. The trade: a
// rejection now surfaces on a *later* call, after the mirror advanced.
// Shared named boards stay at depth 1 — their ack-size bookkeeping
// drives the pull-tail catch-up and cannot tolerate mirror lead.
//
// Shared boards: a non-empty board name joins a server-side board shared
// with other connections. When the commit reply shows other connections
// advanced the board (reply size > mirror size + batch size), the client
// pulls the missing tail and folds it into the mirror — which therefore
// must be a replica-mode board (arbitrary authors/stamps per batch).
// Private per-connection boards (the engine configuration) never pull.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "acp/billboard/service.hpp"
#include "acp/billboard/wire.hpp"
#include "acp/net/frame.hpp"
#include "acp/net/socket.hpp"
#include "acp/obs/bandwidth.hpp"

namespace acp::obs {
class TimerStat;
}

namespace acp {

class RemoteBillboard final : public BillboardService {
 public:
  /// Connect to `endpoint` and open a board: private to this connection
  /// when `board` is empty, shared under that name otherwise. `pipeline`
  /// is the commit in-flight window (clamped to 1 on shared boards).
  RemoteBillboard(const net::Endpoint& endpoint, std::size_t num_players,
                  std::size_t num_objects,
                  Billboard::Mode mode = Billboard::Mode::kAuthoritative,
                  std::string board = {}, std::size_t pipeline = 1);

  /// Adopt an already-connected stream socket (socketpair in tests).
  RemoteBillboard(net::FdHandle fd, std::size_t num_players,
                  std::size_t num_objects,
                  Billboard::Mode mode = Billboard::Mode::kAuthoritative,
                  std::string board = {}, std::size_t pipeline = 1);

  /// Effective commit window (1 unless constructed pipelined).
  [[nodiscard]] std::size_t pipeline() const noexcept { return pipeline_; }

  void commit_round(Round round, std::vector<Post> posts) override;
  void commit_round_from(Round round, std::span<const Post> posts) override;
  void reserve(std::size_t expected_posts) override;
  [[nodiscard]] const Billboard& board() const noexcept override {
    return mirror_;
  }
  [[nodiscard]] Count votes_in_window(ObjectId object, Round begin,
                                      Round end) override;
  void votes_in_window_batch(std::span<const ObjectId> objects, Round begin,
                             Round end, std::vector<Count>& out) override;
  [[nodiscard]] std::vector<Post> snapshot() override;
  [[nodiscard]] std::string backend_name() const override;

  /// Server-reported board state (kStat round-trip).
  [[nodiscard]] bbwire::BoardStateMsg stat();

 private:
  void open_board(Billboard::Mode mode);
  /// Send `out_` and return the next reply frame, unwrapping kError into
  /// an exception. The returned payload aliases assembler storage: decode
  /// before the next transact/read.
  [[nodiscard]] net::Frame transact(obs::IoChannel channel);
  [[nodiscard]] net::Frame read_frame(obs::IoChannel channel);
  [[noreturn]] void unexpected_reply(net::Frame reply, const char* wanted);
  /// Fold the server tail [mirror.size, server_size) into the mirror.
  void pull_tail(std::uint64_t server_size, Round server_last_round);
  /// Read one pending commit ack and verify its reported log size.
  void drain_one_ack();
  /// Read every in-flight commit ack (before any read RPC).
  void drain_acks();

  net::FdHandle fd_;
  std::string board_name_;
  std::string peer_;  ///< endpoint string for backend_name/errors
  Billboard mirror_;
  net::FrameAssembler assembler_;
  std::vector<std::uint8_t> out_;        ///< encode buffer, reused
  std::vector<std::uint8_t> recv_buf_;   ///< socket read chunk, reused
  std::vector<Post> pull_scratch_;       ///< pulled-tail staging, reused
  std::size_t pipeline_ = 1;
  /// Expected server log size per unacked in-flight commit (FIFO).
  std::deque<std::uint64_t> pending_acks_;
  obs::TimerStat* commit_timer_;
  obs::TimerStat* query_timer_;
};

}  // namespace acp
