// RemoteBillboard — a BillboardService backed by acp_billboardd.
//
// One blocking bbwire connection per service instance. Commits are a
// round-trip: encode the batch, send, wait for the server's kCommitOk —
// only then is the same batch applied to the local mirror, so the mirror
// never runs ahead of the authoritative server log and a server-side
// rejection (kError) surfaces as an exception *before* any local state
// changed. Reads (the protocols' hot path) never touch the socket: they
// go through the mirror, which is exactly why remote runs are
// bit-identical to in-process runs.
//
// Shared boards: a non-empty board name joins a server-side board shared
// with other connections. When the commit reply shows other connections
// advanced the board (reply size > mirror size + batch size), the client
// pulls the missing tail and folds it into the mirror — which therefore
// must be a replica-mode board (arbitrary authors/stamps per batch).
// Private per-connection boards (the engine configuration) never pull.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acp/billboard/service.hpp"
#include "acp/billboard/wire.hpp"
#include "acp/net/frame.hpp"
#include "acp/net/socket.hpp"
#include "acp/obs/bandwidth.hpp"

namespace acp::obs {
class TimerStat;
}

namespace acp {

class RemoteBillboard final : public BillboardService {
 public:
  /// Connect to `endpoint` and open a board: private to this connection
  /// when `board` is empty, shared under that name otherwise.
  RemoteBillboard(const net::Endpoint& endpoint, std::size_t num_players,
                  std::size_t num_objects,
                  Billboard::Mode mode = Billboard::Mode::kAuthoritative,
                  std::string board = {});

  /// Adopt an already-connected stream socket (socketpair in tests).
  RemoteBillboard(net::FdHandle fd, std::size_t num_players,
                  std::size_t num_objects,
                  Billboard::Mode mode = Billboard::Mode::kAuthoritative,
                  std::string board = {});

  void commit_round(Round round, std::vector<Post> posts) override;
  void commit_round_from(Round round, std::span<const Post> posts) override;
  void reserve(std::size_t expected_posts) override;
  [[nodiscard]] const Billboard& board() const noexcept override {
    return mirror_;
  }
  [[nodiscard]] Count votes_in_window(ObjectId object, Round begin,
                                      Round end) override;
  void votes_in_window_batch(std::span<const ObjectId> objects, Round begin,
                             Round end, std::vector<Count>& out) override;
  [[nodiscard]] std::vector<Post> snapshot() override;
  [[nodiscard]] std::string backend_name() const override;

  /// Server-reported board state (kStat round-trip).
  [[nodiscard]] bbwire::BoardStateMsg stat();

 private:
  void open_board(Billboard::Mode mode);
  /// Send `out_` and return the next reply frame, unwrapping kError into
  /// an exception. The returned payload aliases assembler storage: decode
  /// before the next transact/read.
  [[nodiscard]] net::Frame transact(obs::IoChannel channel);
  [[nodiscard]] net::Frame read_frame(obs::IoChannel channel);
  [[noreturn]] void unexpected_reply(net::Frame reply, const char* wanted);
  /// Fold the server tail [mirror.size, server_size) into the mirror.
  void pull_tail(std::uint64_t server_size, Round server_last_round);

  net::FdHandle fd_;
  std::string board_name_;
  std::string peer_;  ///< endpoint string for backend_name/errors
  Billboard mirror_;
  net::FrameAssembler assembler_;
  std::vector<std::uint8_t> out_;        ///< encode buffer, reused
  std::vector<std::uint8_t> recv_buf_;   ///< socket read chunk, reused
  std::vector<Post> pull_scratch_;       ///< pulled-tail staging, reused
  obs::TimerStat* commit_timer_;
  obs::TimerStat* query_timer_;
};

}  // namespace acp
