// bbload's engine: a single-threaded, poll-driven client swarm against a
// billboard server. Opens `clients` concurrent connections that join one
// shared replica board, then drives two measured phases:
//
//   posts  — every client commits `batches` batches of `batch_posts`
//            posts, keeping up to `pipeline` commits in flight per
//            connection (replies are FIFO, so acks match by order); the
//            phase clock starts after every connection is open, so the
//            reported posts/sec is steady-state ingest, not connect
//            cost.
//   query  — every client issues `queries` single-object window queries,
//            one in flight and individually timed for the p50/p99 tail.
//
// `threads` splits the swarm across driver threads (each with its own
// poll loop over its slice of connections); clients keep their *global*
// index for seeding and authorship, so an N-thread run generates the
// same workload as a 1-thread run. Merged stats: counts summed,
// posts/sec summed across threads, p50/p99 over the merged samples.
//
// Lives in acp_billboard (not tools/) so the perf bench can run the same
// workload in-process against a BillboardServer and record comparable
// numbers into BENCH_PERF.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "acp/net/socket.hpp"

namespace acp {

struct LoadgenOptions {
  net::Endpoint endpoint;
  std::size_t clients = 10'000;
  std::size_t batches = 5;      ///< commits per client
  std::size_t batch_posts = 10; ///< posts per commit
  std::size_t queries = 5;      ///< timed window queries per client
  /// Shared-board dimensions. Every client posts as author
  /// (client index mod players).
  std::size_t players = 10'000;
  std::size_t objects = 256;
  std::string board = "bbload";
  /// When non-empty, overrides `board`: client i joins
  /// board_list[i % board_list.size()]. The sharded-server bench uses
  /// this to spread load across boards owned by different IO workers.
  std::vector<std::string> board_list;
  std::uint64_t seed = 1;
  std::size_t pipeline = 1;  ///< in-flight commits per connection
  std::size_t threads = 1;   ///< driver threads (clients split across)
};

struct LoadgenReport {
  std::size_t clients_connected = 0;
  std::uint64_t posts = 0;
  double post_seconds = 0.0;
  double posts_per_sec = 0.0;
  std::uint64_t queries = 0;
  double query_seconds = 0.0;
  std::uint64_t query_p50_ns = 0;
  std::uint64_t query_p99_ns = 0;
  /// kError replies + connections lost mid-run.
  std::uint64_t errors = 0;
};

/// Run the workload to completion. Throws net::SocketError if the server
/// cannot be reached at all; individual connection failures mid-run are
/// counted in `errors` instead.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenOptions& options);

}  // namespace acp
