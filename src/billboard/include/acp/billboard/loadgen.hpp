// bbload's engine: a single-threaded, poll-driven client swarm against a
// billboard server. Opens `clients` concurrent connections that join one
// shared replica board, then drives two measured phases:
//
//   posts  — every client commits `batches` batches of `batch_posts`
//            posts (one in-flight request per connection); the phase
//            clock starts after every connection is open, so the
//            reported posts/sec is steady-state ingest, not connect
//            cost.
//   query  — every client issues `queries` single-object window queries,
//            each individually timed for the p50/p99 tail.
//
// Lives in acp_billboard (not tools/) so the perf bench can run the same
// workload in-process against a BillboardServer and record comparable
// numbers into BENCH_PERF.json.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "acp/net/socket.hpp"

namespace acp {

struct LoadgenOptions {
  net::Endpoint endpoint;
  std::size_t clients = 10'000;
  std::size_t batches = 5;      ///< commits per client
  std::size_t batch_posts = 10; ///< posts per commit
  std::size_t queries = 5;      ///< timed window queries per client
  /// Shared-board dimensions. Every client posts as author
  /// (client index mod players).
  std::size_t players = 10'000;
  std::size_t objects = 256;
  std::string board = "bbload";
  std::uint64_t seed = 1;
};

struct LoadgenReport {
  std::size_t clients_connected = 0;
  std::uint64_t posts = 0;
  double post_seconds = 0.0;
  double posts_per_sec = 0.0;
  std::uint64_t queries = 0;
  double query_seconds = 0.0;
  std::uint64_t query_p50_ns = 0;
  std::uint64_t query_p99_ns = 0;
  /// kError replies + connections lost mid-run.
  std::uint64_t errors = 0;
};

/// Run the workload to completion. Throws net::SocketError if the server
/// cannot be reached at all; individual connection failures mid-run are
/// counted in `errors` instead.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenOptions& options);

}  // namespace acp
