// Vote extraction — the honest reader's view of the billboard.
//
// The billboard itself accepts anything; the *one-vote rule* that powers
// DISTILL's analysis (§4: "allow each player to make only one such report")
// is enforced on the read side: honest players derive, from the raw post
// log, which posts count as votes. Two policies:
//
//  * kFirstPositive — a player's votes are its first `f` positive reports
//    for distinct objects (f = 1 reproduces Figure 1; larger f reproduces
//    the multiple-votes extension of §4.1). Later positive posts by the
//    same player are ignored.
//  * kHighestReported — for search without local testing (§5.3): a player's
//    vote is the highest-valued object it has reported so far, so the vote
//    can change over time. Each strict improvement is a fresh vote event.
//  * kFirstNegative — the slander mirror of kFirstPositive: a player's
//    first f negative reports (distinct objects) count. Used by the
//    experimental veto variant that probes §6's "is slander useless?"
//    question; Figure 1's DISTILL never reads negative reports.
//
// The ledger also answers the windowed count ℓ_t(i) — "votes object i
// received during iteration t" (Figure 1, shared variables) — via
// round-interval queries over the vote-event log.
//
// Window semantics: every round-interval query takes a *half-open*
// interval [begin, end) — an event stamped `begin` counts, one stamped
// `end` does not. DISTILL's phase windows pass (phase_start, current
// round) and rely on exactly this convention.
//
// Hot path: `ingest` + the window queries run once per player per round
// in every engine, so both are allocation-free in steady state. Queries
// use generation-stamped scratch buffers (mutable caches), which makes
// concurrent queries on one ledger instance unsafe — each trial/thread
// owns its own ledger, as everywhere in this codebase. Late-stamped
// replica posts (gossip) are staged in a pending batch and merged into
// the sorted event log once per ingest instead of via per-post
// mid-vector inserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/util/types.hpp"

namespace acp {

enum class VotePolicy {
  kFirstPositive,
  kHighestReported,
  kFirstNegative,
};

struct VoteEvent {
  PlayerId voter;
  ObjectId object;
  Round round = 0;

  friend bool operator==(const VoteEvent&, const VoteEvent&) = default;
};

class VoteLedger {
 public:
  /// `votes_per_player` is the f of §4.1; must be 1 under kHighestReported
  /// (that policy has a single, mutable vote by definition).
  VoteLedger(VotePolicy policy, std::size_t num_players,
             std::size_t num_objects, std::size_t votes_per_player = 1);

  /// Consume posts committed since the last ingest. Call once per round
  /// after Billboard::commit_round; idempotent w.r.t. already-seen posts.
  void ingest(const Billboard& billboard);

  [[nodiscard]] VotePolicy policy() const noexcept { return policy_; }

  /// The player's current votes (0..f objects). Under kHighestReported this
  /// is the single best-so-far object, if the player reported anything.
  [[nodiscard]] std::span<const ObjectId> votes_of(PlayerId p) const;

  /// Convenience for SeekAdvice with f == 1.
  [[nodiscard]] std::optional<ObjectId> current_vote(PlayerId p) const;

  /// Number of vote events for `object` with round in the half-open
  /// interval [begin, end): a vote at round `begin` counts, one at round
  /// `end` does not. An empty interval (begin == end) counts nothing.
  [[nodiscard]] Count votes_in_window(ObjectId object, Round begin,
                                      Round end) const;

  /// Batched votes_in_window: counts for every object of `objects` over
  /// the same half-open interval [begin, end), written into `out` (resized
  /// to objects.size(); out[i] answers objects[i], duplicates allowed).
  /// One sweep over the window's events instead of a binary search per
  /// object — the shape of DISTILL's phase transitions, which query every
  /// candidate over one shared window.
  void votes_in_window_batch(std::span<const ObjectId> objects, Round begin,
                             Round end, std::vector<Count>& out) const;

  /// Total vote events for `object` over all time.
  [[nodiscard]] Count total_votes(ObjectId object) const;

  /// The players that have voted for `object` (event order; a player can
  /// appear at most once per policy semantics except kHighestReported,
  /// where re-improvements on the same object are not re-listed).
  [[nodiscard]] const std::vector<PlayerId>& voters_of(
      ObjectId object) const;

  /// Objects with >= min_count vote events in the half-open interval
  /// [begin, end) — the same boundary convention as votes_in_window —
  /// in ascending id order.
  [[nodiscard]] std::vector<ObjectId> objects_with_votes_in_window(
      Round begin, Round end, Count min_count) const;

  /// Objects with at least one vote event ever (Step 1.2's set S).
  [[nodiscard]] std::vector<ObjectId> objects_with_any_vote() const;

  /// Full vote-event log in round order.
  [[nodiscard]] const std::vector<VoteEvent>& events() const noexcept {
    return events_;
  }

 private:
  void record_vote(PlayerId voter, ObjectId object, Round round);
  /// Merge the pending out-of-order batch into the sorted structures.
  /// Called once per ingest; a no-op for authoritative (in-order) feeds.
  void flush_pending();

  VotePolicy policy_;
  std::size_t num_players_;
  std::size_t num_objects_;
  std::size_t votes_per_player_;

  std::size_t posts_consumed_ = 0;

  /// Per player: current votes (small, <= f).
  std::vector<std::vector<ObjectId>> player_votes_;
  /// Per player: best reported value so far (kHighestReported only).
  std::vector<double> player_best_value_;
  std::vector<bool> player_has_report_;

  /// Global vote-event log, nondecreasing rounds.
  std::vector<VoteEvent> events_;
  /// Parallel array of event rounds for binary search.
  std::vector<Round> event_rounds_;
  /// Per object: rounds of its vote events, nondecreasing.
  std::vector<std::vector<Round>> object_event_rounds_;
  /// Per object: distinct voters, in first-vote order.
  std::vector<std::vector<PlayerId>> object_voters_;

  /// Late-stamped replica events staged for the next flush_pending().
  std::vector<VoteEvent> pending_events_;
  /// Per object: length of the sorted prefix of its round list. Equal to
  /// the list size outside ingest; smaller only while an out-of-order
  /// batch is staged (the unsorted tail is merged by flush_pending()).
  std::vector<std::size_t> object_sorted_prefix_;
  /// Objects with an unsorted tail, each listed once per batch.
  std::vector<std::size_t> dirty_objects_;

  // Scratch for objects_with_votes_in_window (logically const, hence
  // mutable): generation-stamped per-object counters, never re-zeroed.
  mutable std::vector<Count> window_counts_;
  mutable std::vector<std::uint64_t> window_stamp_;
  mutable std::vector<ObjectId> window_touched_;
  mutable std::uint64_t window_epoch_ = 0;
};

}  // namespace acp
