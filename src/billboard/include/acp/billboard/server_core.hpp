// BillboardServerCore — the transport-free half of acp_billboardd.
//
// The core speaks bytes-in/bytes-out: the event loop (server.hpp) or a
// test hands it whatever arrived on a connection, and it appends whatever
// should be written back. That split keeps every protocol rule — framing,
// validation, board semantics, error replies — testable without sockets,
// and lets the codec-hardening tests feed it arbitrary garbage.
//
// Boards: a session that opens with an empty name gets a private board
// (dropped with the session); a non-empty name joins a server-wide shared
// board, created on first open, with dimension/mode agreement enforced.
// Authoritative boards take commits under the exact Billboard contract
// (stamps equal the commit round, one post per author, rounds strictly
// increasing). Replica/shared boards accept each batch at arrival round
// max(declared, last+1) — the PR 3 out-of-order ingest path — so many
// connections can feed one board without coordinating round numbers.
//
// Error policy: a malformed *payload* (bad range, bad round, unknown
// message) gets a kError reply and the connection lives on; a broken
// *stream* (bad magic, corrupt length — the framing itself is gone) gets
// a final kError and the connection is closed, since nothing after a
// desync can be trusted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/vote_ledger.hpp"
#include "acp/billboard/wire.hpp"
#include "acp/net/frame.hpp"

namespace acp {

class BillboardServerCore {
 public:
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_active = 0;
    std::uint64_t boards = 0;
    std::uint64_t commits = 0;
    std::uint64_t posts = 0;
    std::uint64_t queries = 0;
    std::uint64_t pulls = 0;
    std::uint64_t errors = 0;
  };

  /// Register a new connection; returns its session id.
  [[nodiscard]] std::uint64_t open_session();

  /// Drop a connection's session state (its private board with it).
  void close_session(std::uint64_t session);

  /// Feed bytes received from `session`; complete requests append their
  /// replies to `out`. Returns false when the stream is unrecoverable and
  /// the caller should close the connection after flushing `out`.
  [[nodiscard]] bool on_bytes(std::uint64_t session,
                              std::span<const std::uint8_t> data,
                              std::vector<std::uint8_t>& out);

  [[nodiscard]] Stats stats() const noexcept { return stats_; }

 private:
  /// One board plus its read-side ledger (the §4 one-vote rule lives on
  /// the server so window queries are a single RPC, not a post transfer).
  struct BoardState {
    BoardState(std::size_t num_players, std::size_t num_objects,
               Billboard::Mode mode)
        : board(num_players, num_objects, mode),
          ledger(VotePolicy::kFirstPositive, num_players, num_objects) {}

    Billboard board;
    VoteLedger ledger;
    std::vector<ObjectId> object_scratch;
    std::vector<Count> count_scratch;
    // Generation-stamped duplicate-author check for authoritative commits.
    std::vector<std::uint64_t> author_seen;
    std::uint64_t commit_epoch = 0;
  };

  struct Session {
    net::FrameAssembler assembler;
    std::shared_ptr<BoardState> board;  ///< null until kOpen
  };

  /// Returns false when the connection must close.
  bool handle_frame(Session& session, net::Frame frame,
                    std::vector<std::uint8_t>& out);
  void handle_open(Session& session, std::span<const std::uint8_t> payload,
                   std::vector<std::uint8_t>& out);
  void handle_commit(BoardState& board, std::span<const std::uint8_t> payload,
                     std::vector<std::uint8_t>& out);
  void handle_pull(BoardState& board, std::span<const std::uint8_t> payload,
                   std::vector<std::uint8_t>& out);
  void send_error(std::vector<std::uint8_t>& out, const std::string& message);

  std::uint64_t next_session_ = 1;
  std::unordered_map<std::uint64_t, Session> sessions_;
  /// Shared boards by name. Kept for the server's lifetime so a board
  /// outlives the connections that fed it (bbload opens, loads, leaves).
  std::map<std::string, std::shared_ptr<BoardState>> shared_boards_;
  Stats stats_;
};

}  // namespace acp
