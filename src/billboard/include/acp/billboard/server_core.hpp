// BillboardServerCore — the transport-free half of acp_billboardd.
//
// The core speaks bytes-in/bytes-out: the event loop (server.hpp) or a
// test hands it whatever arrived on a connection, and it appends whatever
// should be written back. That split keeps every protocol rule — framing,
// validation, board semantics, error replies — testable without sockets,
// and lets the codec-hardening tests feed it arbitrary garbage.
//
// Boards: a session that opens with an empty name gets a private board
// (dropped with the session); a non-empty name joins a server-wide shared
// board, created on first open, with dimension/mode agreement enforced.
// Authoritative boards take commits under the exact Billboard contract
// (stamps equal the commit round, one post per author, rounds strictly
// increasing). Replica/shared boards accept each batch at arrival round
// max(declared, last+1) — the PR 3 out-of-order ingest path — so many
// connections can feed one board without coordinating round numbers.
//
// Sharding: the multi-threaded server runs one core per IO worker, and
// *named* shared boards are owned by the worker `owner_shard(name,
// shards) % workers` — every Billboard stays single-writer. A core
// constructed as worker w of W therefore refuses to handle frames for
// boards another worker owns: on_bytes hands them to the ForwardFn
// (the event loop ships them over a mailbox), and the owning worker
// applies them through apply_forwarded(), whose reply bytes travel back
// the same way. Private boards (empty name) are always owned by the
// session's home worker and never forwarded. The default-constructed
// core is worker 0 of 1 and owns everything — the single-threaded
// server and the direct-core tests are unchanged.
//
// Error policy: a malformed *payload* (bad range, bad round, unknown
// message) gets a kError reply and the connection lives on; a broken
// *stream* (bad magic, corrupt length — the framing itself is gone) gets
// a final kError and the connection is closed, since nothing after a
// desync can be trusted.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/billboard/vote_ledger.hpp"
#include "acp/billboard/wire.hpp"
#include "acp/net/frame.hpp"

namespace acp {

class BillboardServerCore {
 public:
  struct Stats {
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_active = 0;
    std::uint64_t boards = 0;
    std::uint64_t commits = 0;
    std::uint64_t posts = 0;
    std::uint64_t queries = 0;
    std::uint64_t pulls = 0;
    std::uint64_t errors = 0;
    std::uint64_t forwarded = 0;  ///< frames shipped to another worker
  };

  /// Worker 0 of 1: owns every board, forwards nothing.
  BillboardServerCore() : BillboardServerCore(0, 1, 1) {}

  /// Worker `worker` of `workers`, with board names hashed over `shards`
  /// buckets (bucket b belongs to worker b % workers). `shards` >=
  /// `workers` keeps bucket placement stable while the thread count
  /// varies.
  BillboardServerCore(std::size_t worker, std::size_t workers,
                      std::size_t shards);

  /// Hash bucket of a named shared board — splitmix-mixed FNV-1a, so the
  /// placement is deterministic across runs and processes (tests pick
  /// board names per shard with this).
  [[nodiscard]] static std::size_t owner_shard(std::string_view board,
                                               std::size_t shards) noexcept;

  /// The worker that owns `board` under this core's geometry.
  [[nodiscard]] std::size_t owner_worker(std::string_view board) const
      noexcept {
    return owner_shard(board, shards_) % workers_;
  }
  [[nodiscard]] std::size_t worker_index() const noexcept { return worker_; }

  /// Called for each complete frame whose board another worker owns:
  /// (owner_worker, session, frame type, payload). The payload span is
  /// only valid during the call — copy it into the mailbox.
  using ForwardFn =
      std::function<void(std::size_t owner_worker, std::uint64_t session,
                         std::uint8_t type,
                         std::span<const std::uint8_t> payload)>;

  /// Register a new connection; returns its session id.
  [[nodiscard]] std::uint64_t open_session();

  /// Drop a connection's session state (its private board with it).
  /// Returns the worker that must be told (via close_forwarded) to drop
  /// the session's remote board binding, if the session was forwarded.
  std::optional<std::size_t> close_session(std::uint64_t session);

  /// Feed bytes received from `session`; complete requests append their
  /// replies to `out`. Returns false when the stream is unrecoverable and
  /// the caller should close the connection after flushing `out`.
  /// Without a ForwardFn the core must own every board (workers == 1).
  [[nodiscard]] bool on_bytes(std::uint64_t session,
                              std::span<const std::uint8_t> data,
                              std::vector<std::uint8_t>& out);
  [[nodiscard]] bool on_bytes(std::uint64_t session,
                              std::span<const std::uint8_t> data,
                              std::vector<std::uint8_t>& out,
                              const ForwardFn& forward);

  /// Owner-side entry: apply one forwarded frame from the remote session
  /// `token` (unique across source workers), appending reply bytes to
  /// `out` (empty for fire-and-forget messages). Never closes anything:
  /// framing problems are detected on the session's home worker, and
  /// payload errors answer kError like the local path.
  void apply_forwarded(std::uint64_t token, std::uint8_t type,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& out);

  /// Owner-side: the remote session hung up; drop its board binding.
  void close_forwarded(std::uint64_t token);

  [[nodiscard]] Stats stats() const noexcept { return stats_; }

 private:
  /// One board plus its read-side ledger (the §4 one-vote rule lives on
  /// the server so window queries are a single RPC, not a post transfer).
  struct BoardState {
    BoardState(std::size_t num_players, std::size_t num_objects,
               Billboard::Mode mode)
        : board(num_players, num_objects, mode),
          ledger(VotePolicy::kFirstPositive, num_players, num_objects) {}

    Billboard board;
    VoteLedger ledger;
    std::vector<ObjectId> object_scratch;
    std::vector<Count> count_scratch;
    // Generation-stamped duplicate-author check for authoritative commits.
    std::vector<std::uint64_t> author_seen;
    std::uint64_t commit_epoch = 0;
  };

  struct Session {
    net::FrameAssembler assembler;
    std::shared_ptr<BoardState> board;  ///< null until kOpen (local boards)
    bool forwarded = false;  ///< board lives on another worker
    std::size_t owner = 0;   ///< owning worker when forwarded
  };

  /// Returns false when the connection must close.
  bool handle_frame(Session& session, std::uint64_t session_id,
                    net::Frame frame, std::vector<std::uint8_t>& out,
                    const ForwardFn* forward);
  /// Everything a session can ask of a board it already opened. Shared
  /// verbatim by the local and the forwarded path.
  void handle_board_frame(BoardState& board, bbwire::MsgType type,
                          std::span<const std::uint8_t> payload,
                          std::vector<std::uint8_t>& out);
  /// Local open (private or owned name) or pin-and-forward to the owner.
  void handle_open_or_forward(Session& session, std::uint64_t session_id,
                              std::span<const std::uint8_t> payload,
                              std::vector<std::uint8_t>& out,
                              const ForwardFn* forward);
  /// Create-or-join of a *named* board this core owns. Returns null after
  /// appending a kError reply (dimension/mode mismatch).
  std::shared_ptr<BoardState> join_named_board(const bbwire::OpenMsg& msg,
                                               std::vector<std::uint8_t>& out);
  void handle_commit(BoardState& board, std::span<const std::uint8_t> payload,
                     std::vector<std::uint8_t>& out);
  void handle_pull(BoardState& board, std::span<const std::uint8_t> payload,
                   std::vector<std::uint8_t>& out);
  void send_error(std::vector<std::uint8_t>& out, const std::string& message);

  std::size_t worker_ = 0;
  std::size_t workers_ = 1;
  std::size_t shards_ = 1;
  std::uint64_t next_session_ = 1;
  std::unordered_map<std::uint64_t, Session> sessions_;
  /// Shared boards by name. Kept for the server's lifetime so a board
  /// outlives the connections that fed it (bbload opens, loads, leaves).
  std::map<std::string, std::shared_ptr<BoardState>> shared_boards_;
  /// Owner-side bindings of forwarded sessions (token -> opened board).
  std::unordered_map<std::uint64_t, std::shared_ptr<BoardState>>
      remote_sessions_;
  Stats stats_;
};

}  // namespace acp
