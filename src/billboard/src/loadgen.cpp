#include "acp/billboard/loadgen.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "acp/billboard/wire.hpp"
#include "acp/net/frame.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {

using Clock = std::chrono::steady_clock;
using bbwire::MsgType;

constexpr std::size_t kRecvChunk = 16 * 1024;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

enum class State {
  kUnconnected,  ///< socket not yet created or connect got EAGAIN
  kConnecting,   ///< connect in progress (EINPROGRESS), wait writable
  kOpening,      ///< kOpen sent, waiting for kOpenOk
  kIdle,         ///< opened, parked until the next phase begins
  kPosting,      ///< commit in flight
  kPosted,       ///< all batches acked, parked until the query phase
  kQuerying,     ///< window query in flight
  kDone,
  kDead,
};

struct Client {
  net::FdHandle fd;
  State state = State::kUnconnected;
  net::FrameAssembler assembler;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_off = 0;
  std::size_t batches_queued = 0;  ///< commits sent (acked or in flight)
  std::size_t batches_done = 0;    ///< commits acked
  std::size_t inflight = 0;        ///< unacked in-flight commits
  std::size_t queries_done = 0;
  std::uint64_t rng = 0;
  Clock::time_point query_start{};
  std::size_t index = 0;  ///< global across driver threads

  [[nodiscard]] bool wants_write() const noexcept {
    return state == State::kConnecting || out_off < outbuf.size();
  }
  [[nodiscard]] bool alive() const noexcept {
    return state != State::kDone && state != State::kDead &&
           state != State::kUnconnected;
  }
};

class Loadgen {
 public:
  /// Drives `options.clients` connections whose global indices start at
  /// `first_client` — the seeding input, so a slice of a larger swarm
  /// generates exactly the posts it would in a single-threaded run.
  Loadgen(const LoadgenOptions& options, std::size_t first_client)
      : opt_(options) {
    ACP_EXPECTS(opt_.clients >= 1);
    ACP_EXPECTS(opt_.players >= 1);
    ACP_EXPECTS(opt_.objects >= 1);
    ACP_EXPECTS(!opt_.board.empty() || !opt_.board_list.empty());
    ACP_EXPECTS(opt_.pipeline >= 1);
    clients_.resize(opt_.clients);
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      clients_[i].index = first_client + i;
      clients_[i].rng =
          opt_.seed * 0x9E3779B97F4A7C15ull + clients_[i].index;
    }
  }

  LoadgenReport run() {
    latencies_.reserve(opt_.clients * opt_.queries);
    loop();
    finish_report();
    return report_;
  }

  /// Raw per-query samples (for cross-thread percentile merging).
  [[nodiscard]] std::vector<std::uint64_t> take_latencies() {
    return std::move(latencies_);
  }

 private:
  void loop() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    while (finished_ < clients_.size()) {
      maybe_advance_phase();
      // (Re)try outstanding connects; a full listen backlog yields
      // EAGAIN, which resolves as the server drains accepts.
      for (Client& client : clients_) {
        if (client.state == State::kUnconnected) {
          start_connect(client);
        }
      }
      fds.clear();
      fd_owner.clear();
      for (std::size_t c = 0; c < clients_.size(); ++c) {
        const Client& client = clients_[c];
        if (!client.alive()) {
          continue;
        }
        short events = POLLIN;
        if (client.wants_write()) {
          events = static_cast<short>(events | POLLOUT);
        }
        fds.push_back(pollfd{client.fd.get(), events, 0});
        // Slot in clients_, NOT client.index — indices are global across
        // driver threads, this vector is one thread's slice.
        fd_owner.push_back(c);
      }
      if (fds.empty()) {
        if (finished_ < clients_.size()) {
          // Everyone is waiting on a connect retry; give the server a
          // moment to drain its accept backlog instead of spinning.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        continue;
      }
      const int n = ::poll(fds.data(), fds.size(), 30'000);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw net::SocketError("poll failed in bbload");
      }
      if (n == 0) {
        // 30 s of total silence: the server is gone. Fail what's left.
        for (Client& client : clients_) {
          if (client.alive()) {
            kill(client);
          }
        }
        break;
      }
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) {
          continue;
        }
        Client& client = clients_[fd_owner[i]];
        if (!client.alive()) {
          continue;
        }
        if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0 &&
            (fds[i].revents & POLLIN) == 0) {
          kill(client);
          continue;
        }
        if ((fds[i].revents & POLLOUT) != 0) {
          on_writable(client);
        }
        if (client.alive() && (fds[i].revents & POLLIN) != 0) {
          on_readable(client);
        }
      }
    }
  }

  void start_connect(Client& client) {
    const int family =
        opt_.endpoint.kind == net::Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
    if (!client.fd.valid()) {
      client.fd = net::FdHandle(::socket(family, SOCK_STREAM, 0));
      if (!client.fd.valid()) {
        kill(client);
        return;
      }
      net::set_nonblocking(client.fd.get(), true);
      if (opt_.endpoint.kind == net::Endpoint::Kind::kTcp) {
        // Commits are small frames on a request/response path; without
        // this, Nagle serializes the pipelined window to one frame/RTT.
        net::set_nodelay(client.fd.get());
      }
    }
    // Reuse the blocking helper's address formatting by connecting
    // through a short-lived blocking attempt only for TCP? No — keep one
    // code path: nonblocking connect, classify errno.
    if (try_connect(client)) {
      client.state = State::kOpening;
      queue_open(client);
      flush(client);
    }
  }

  /// Returns true when connected; leaves the client kUnconnected on
  /// EAGAIN (retry) or kConnecting on EINPROGRESS; kills it otherwise.
  bool try_connect(Client& client) {
    int rc = 0;
    if (opt_.endpoint.kind == net::Endpoint::Kind::kUnix) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (opt_.endpoint.path.size() >= sizeof(addr.sun_path)) {
        kill(client);
        return false;
      }
      std::copy(opt_.endpoint.path.begin(), opt_.endpoint.path.end(),
                addr.sun_path);
      rc = ::connect(client.fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(opt_.endpoint.port);
      const std::string host = opt_.endpoint.host == "localhost"
                                   ? std::string("127.0.0.1")
                                   : opt_.endpoint.host;
      if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        kill(client);
        return false;
      }
      rc = ::connect(client.fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    }
    if (rc == 0) {
      return true;
    }
    if (errno == EINPROGRESS) {
      client.state = State::kConnecting;
      return false;
    }
    if (errno == EAGAIN) {
      // Unix-socket backlog pressure; retry on the next loop pass with a
      // fresh socket once the server has drained some accepts.
      client.fd.reset();
      client.state = State::kUnconnected;
      return false;
    }
    kill(client);
    return false;
  }

  void on_writable(Client& client) {
    if (client.state == State::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(client.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        kill(client);
        return;
      }
      client.state = State::kOpening;
      queue_open(client);
    }
    flush(client);
  }

  void flush(Client& client) {
    while (client.out_off < client.outbuf.size()) {
      const ssize_t n = ::send(client.fd.get(),
                               client.outbuf.data() + client.out_off,
                               client.outbuf.size() - client.out_off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        client.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      kill(client);
      return;
    }
    client.outbuf.clear();
    client.out_off = 0;
  }

  void on_readable(Client& client) {
    read_frames(client);
    // Everything the acks queued (pipeline top-ups, next queries) goes
    // out in one send — coalescing on the client side too.
    if (client.alive()) {
      flush(client);
    }
  }

  void read_frames(Client& client) {
    std::uint8_t chunk[kRecvChunk];
    for (;;) {
      const ssize_t n = ::recv(client.fd.get(), chunk, sizeof(chunk), 0);
      if (n > 0) {
        client.assembler.append(std::span<const std::uint8_t>(
            chunk, static_cast<std::size_t>(n)));
        if (!drain_frames(client)) {
          return;
        }
        continue;
      }
      if (n == 0) {
        kill(client);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      kill(client);
      return;
    }
  }

  /// Returns false once the client died while processing.
  bool drain_frames(Client& client) {
    for (;;) {
      std::optional<net::Frame> frame;
      try {
        frame = client.assembler.next();
      } catch (const net::WireFormatError&) {
        kill(client);
        return false;
      }
      if (!frame) {
        return true;
      }
      if (!handle_frame(client, *frame)) {
        return false;
      }
    }
  }

  bool handle_frame(Client& client, const net::Frame& frame) {
    const MsgType type = static_cast<MsgType>(frame.type);
    try {
      switch (client.state) {
        case State::kOpening:
          if (type != MsgType::kOpenOk) {
            kill(client);
            return false;
          }
          (void)bbwire::decode_board_state(frame.payload, MsgType::kOpenOk);
          client.state = State::kIdle;
          ++opened_;
          ++report_.clients_connected;
          return true;
        case State::kPosting:
          if (type != MsgType::kCommitOk) {
            kill(client);
            return false;
          }
          (void)bbwire::decode_board_state(frame.payload, MsgType::kCommitOk);
          --client.inflight;
          report_.posts += opt_.batch_posts;
          ++client.batches_done;
          if (client.batches_done >= opt_.batches) {
            client.state = State::kPosted;
            ++posted_;
          } else {
            queue_commits(client);  // top up the window; caller flushes
          }
          return true;
        case State::kQuerying: {
          if (type != MsgType::kWindowCount) {
            kill(client);
            return false;
          }
          (void)bbwire::decode_window_count(frame.payload);
          const auto elapsed = Clock::now() - client.query_start;
          latencies_.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
          ++report_.queries;
          ++client.queries_done;
          if (client.queries_done < opt_.queries) {
            queue_query(client);
          } else {
            client.state = State::kDone;
            ++finished_;
          }
          return true;
        }
        default:
          kill(client);
          return false;
      }
    } catch (const net::WireFormatError&) {
      kill(client);
      return false;
    }
  }

  [[nodiscard]] const std::string& board_for(const Client& client) const {
    if (opt_.board_list.empty()) {
      return opt_.board;
    }
    return opt_.board_list[client.index % opt_.board_list.size()];
  }

  void queue_open(Client& client) {
    bbwire::OpenMsg open;
    open.mode = 1;  // replica: many writers, server-assigned arrival order
    open.num_players = opt_.players;
    open.num_objects = opt_.objects;
    open.board = board_for(client);
    bbwire::encode_open(client.outbuf, open);
  }

  /// Encode commits until the in-flight window is full (or the batch
  /// budget spent). Appends only; the caller flushes once.
  void queue_commits(Client& client) {
    while (client.batches_queued < opt_.batches &&
           client.inflight < opt_.pipeline) {
      post_scratch_.clear();
      const Round round = static_cast<Round>(client.batches_queued);
      for (std::size_t i = 0; i < opt_.batch_posts; ++i) {
        Post post;
        post.author = PlayerId(client.index % opt_.players);
        post.round = round;
        post.object = ObjectId(static_cast<std::size_t>(
            splitmix64(client.rng) % opt_.objects));
        post.reported_value =
            static_cast<double>(splitmix64(client.rng) % 1000) / 1000.0;
        post.positive = true;
        post_scratch_.push_back(post);
      }
      bbwire::encode_commit(client.outbuf, round, post_scratch_);
      ++client.batches_queued;
      ++client.inflight;
    }
    client.state = State::kPosting;
  }

  void queue_query(Client& client) {
    bbwire::WindowQueryMsg query;
    query.object = splitmix64(client.rng) % opt_.objects;
    query.begin = 0;
    query.end = static_cast<Round>(opt_.batches) + 1;
    client.query_start = Clock::now();
    bbwire::encode_window_query(client.outbuf, query);
    client.state = State::kQuerying;
  }

  void kill(Client& client) {
    if (client.state == State::kDead || client.state == State::kDone) {
      return;
    }
    // Un-park the phase counters this client can no longer reach.
    if (client.state == State::kOpening || client.state == State::kConnecting ||
        client.state == State::kUnconnected) {
      ++opened_;  // counts as "resolved", not as connected
    }
    if (client.state != State::kPosted && phase_ <= 1) {
      ++posted_;
    }
    client.state = State::kDead;
    client.fd.reset();
    ++report_.errors;
    ++finished_;
  }

  void maybe_advance_phase() {
    if (phase_ == 0 && opened_ >= clients_.size()) {
      phase_ = 1;
      post_clock_start_ = Clock::now();
      if (opt_.batches == 0) {
        for (Client& client : clients_) {
          if (client.state == State::kIdle) {
            client.state = State::kPosted;
            ++posted_;
          }
        }
      } else {
        for (Client& client : clients_) {
          if (client.state == State::kIdle) {
            queue_commits(client);
            flush(client);
          }
        }
      }
    }
    if (phase_ == 1 && posted_ >= clients_.size()) {
      phase_ = 2;
      report_.post_seconds =
          std::chrono::duration<double>(Clock::now() - post_clock_start_)
              .count();
      query_clock_start_ = Clock::now();
      for (Client& client : clients_) {
        if (client.state != State::kPosted) {
          continue;
        }
        if (opt_.queries == 0) {
          client.state = State::kDone;
          ++finished_;
        } else {
          queue_query(client);
          flush(client);
        }
      }
    }
  }

  void finish_report() {
    if (phase_ >= 2) {
      report_.query_seconds =
          std::chrono::duration<double>(Clock::now() - query_clock_start_)
              .count();
    }
    if (report_.post_seconds > 0.0) {
      report_.posts_per_sec =
          static_cast<double>(report_.posts) / report_.post_seconds;
    }
    if (!latencies_.empty()) {
      std::sort(latencies_.begin(), latencies_.end());
      report_.query_p50_ns = latencies_[latencies_.size() / 2];
      report_.query_p99_ns =
          latencies_[std::min(latencies_.size() - 1,
                              latencies_.size() * 99 / 100)];
    }
  }

  LoadgenOptions opt_;
  std::vector<Client> clients_;
  std::vector<Post> post_scratch_;
  std::vector<std::uint64_t> latencies_;
  LoadgenReport report_;
  int phase_ = 0;
  std::size_t opened_ = 0;
  std::size_t posted_ = 0;
  std::size_t finished_ = 0;
  Clock::time_point post_clock_start_{};
  Clock::time_point query_clock_start_{};
};

}  // namespace

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  const std::size_t limit = net::raise_nofile_limit(options.clients + 64);
  if (limit < options.clients + 64) {
    throw net::SocketError(
        "cannot open " + std::to_string(options.clients) +
        " connections: RLIMIT_NOFILE is " + std::to_string(limit) +
        " (raise the hard limit or lower --clients)");
  }
  const std::size_t threads = std::max<std::size_t>(
      1, std::min(options.threads, std::max<std::size_t>(1, options.clients)));
  if (threads == 1) {
    return Loadgen(options, 0).run();
  }

  struct Slice {
    LoadgenReport report;
    std::vector<std::uint64_t> latencies;
    std::string error;
  };
  std::vector<Slice> slices(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::size_t base = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t count =
        options.clients / threads + (t < options.clients % threads ? 1 : 0);
    LoadgenOptions slice_options = options;
    slice_options.clients = count;
    Slice& slice = slices[t];
    pool.emplace_back([slice_options, base, &slice] {
      try {
        Loadgen generator(slice_options, base);
        slice.report = generator.run();
        slice.latencies = generator.take_latencies();
      } catch (const std::exception& error) {
        slice.error = error.what();
      }
    });
    base += count;
  }
  for (std::thread& thread : pool) {
    thread.join();
  }

  LoadgenReport merged;
  std::vector<std::uint64_t> latencies;
  for (Slice& slice : slices) {
    if (!slice.error.empty()) {
      throw net::SocketError("bbload driver thread failed: " + slice.error);
    }
    merged.clients_connected += slice.report.clients_connected;
    merged.posts += slice.report.posts;
    merged.queries += slice.report.queries;
    merged.errors += slice.report.errors;
    // The slices overlap in time, so the aggregate rate is the sum of
    // per-thread steady-state rates; seconds report the slowest slice.
    merged.posts_per_sec += slice.report.posts_per_sec;
    merged.post_seconds =
        std::max(merged.post_seconds, slice.report.post_seconds);
    merged.query_seconds =
        std::max(merged.query_seconds, slice.report.query_seconds);
    latencies.insert(latencies.end(), slice.latencies.begin(),
                     slice.latencies.end());
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    merged.query_p50_ns = latencies[latencies.size() / 2];
    merged.query_p99_ns = latencies[std::min(
        latencies.size() - 1, latencies.size() * 99 / 100)];
  }
  return merged;
}

}  // namespace acp
