#include "acp/billboard/service.hpp"

#include "acp/billboard/remote.hpp"
#include "acp/billboard/vote_ledger.hpp"

namespace acp {

/// VoteLedger with the ingest bookkeeping the window queries need. The
/// one-vote rule is a read-side policy (vote_ledger.hpp): the service
/// answers with kFirstPositive, f = 1 — the §4 configuration — matching
/// what the server core uses, so both backends count identically.
class InProcessBillboard::QueryLedger {
 public:
  QueryLedger(std::size_t num_players, std::size_t num_objects)
      : ledger_(VotePolicy::kFirstPositive, num_players, num_objects) {}

  VoteLedger& fresh(const Billboard& board) {
    ledger_.ingest(board);
    return ledger_;
  }

 private:
  VoteLedger ledger_;
};

InProcessBillboard::InProcessBillboard(std::size_t num_players,
                                       std::size_t num_objects,
                                       Billboard::Mode mode)
    : board_(num_players, num_objects, mode) {}

InProcessBillboard::~InProcessBillboard() = default;

void InProcessBillboard::commit_round(Round round, std::vector<Post> posts) {
  board_.commit_round(round, std::move(posts));
}

void InProcessBillboard::commit_round_from(Round round,
                                           std::span<const Post> posts) {
  board_.commit_round_from(round, posts);
}

void InProcessBillboard::reserve(std::size_t expected_posts) {
  board_.reserve(expected_posts);
}

InProcessBillboard::QueryLedger& InProcessBillboard::ledger() {
  if (!ledger_) {
    ledger_ = std::make_unique<QueryLedger>(board_.num_players(),
                                            board_.num_objects());
  }
  return *ledger_;
}

Count InProcessBillboard::votes_in_window(ObjectId object, Round begin,
                                          Round end) {
  return ledger().fresh(board_).votes_in_window(object, begin, end);
}

void InProcessBillboard::votes_in_window_batch(std::span<const ObjectId> objects,
                                               Round begin, Round end,
                                               std::vector<Count>& out) {
  ledger().fresh(board_).votes_in_window_batch(objects, begin, end, out);
}

std::vector<Post> InProcessBillboard::snapshot() { return board_.posts(); }

BillboardBackendSpec BillboardBackendSpec::parse(std::string_view text) {
  if (text == "inproc") {
    return BillboardBackendSpec{};
  }
  BillboardBackendSpec spec;
  spec.in_process = false;
  spec.endpoint = net::Endpoint::parse(text);  // throws with accepted forms
  return spec;
}

std::string BillboardBackendSpec::to_string() const {
  return in_process ? "inproc" : endpoint.to_string();
}

std::unique_ptr<BillboardService> make_billboard_service(
    const BillboardBackendSpec& spec, std::size_t num_players,
    std::size_t num_objects, Billboard::Mode mode) {
  if (spec.in_process) {
    return std::make_unique<InProcessBillboard>(num_players, num_objects, mode);
  }
  return std::make_unique<RemoteBillboard>(spec.endpoint, num_players,
                                           num_objects, mode);
}

}  // namespace acp
