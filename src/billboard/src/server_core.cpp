#include "acp/billboard/server_core.hpp"

#include <algorithm>
#include <utility>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {

using bbwire::MsgType;

}  // namespace

std::uint64_t BillboardServerCore::open_session() {
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session{});
  ++stats_.sessions_opened;
  ++stats_.sessions_active;
  return id;
}

void BillboardServerCore::close_session(std::uint64_t session) {
  if (sessions_.erase(session) > 0) {
    --stats_.sessions_active;
  }
}

bool BillboardServerCore::on_bytes(std::uint64_t session,
                                   std::span<const std::uint8_t> data,
                                   std::vector<std::uint8_t>& out) {
  const auto it = sessions_.find(session);
  ACP_EXPECTS(it != sessions_.end());
  Session& state = it->second;
  state.assembler.append(data);
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = state.assembler.next();
    } catch (const net::WireFormatError& error) {
      // The byte stream itself is corrupt; nothing after this point can
      // be framed. Tell the peer why, then hang up.
      send_error(out, error.what());
      return false;
    }
    if (!frame) {
      return true;
    }
    if (!handle_frame(state, *frame, out)) {
      return false;
    }
  }
}

bool BillboardServerCore::handle_frame(Session& session, net::Frame frame,
                                       std::vector<std::uint8_t>& out) {
  const MsgType type = static_cast<MsgType>(frame.type);
  try {
    if (type == MsgType::kOpen) {
      handle_open(session, frame.payload, out);
      return true;
    }
    if (session.board == nullptr) {
      send_error(out, std::string("received ") + bbwire::msg_type_name(type) +
                          " before open — every session must open a board "
                          "first");
      return true;
    }
    BoardState& board = *session.board;
    switch (type) {
      case MsgType::kCommit:
        handle_commit(board, frame.payload, out);
        return true;
      case MsgType::kPull:
        handle_pull(board, frame.payload, out);
        return true;
      case MsgType::kWindowQuery: {
        const bbwire::WindowQueryMsg query = bbwire::decode_window_query(
            frame.payload, board.board.num_objects());
        board.ledger.ingest(board.board);
        const Count count = board.ledger.votes_in_window(
            ObjectId(static_cast<std::size_t>(query.object)), query.begin,
            query.end);
        bbwire::encode_window_count(out, count);
        ++stats_.queries;
        return true;
      }
      case MsgType::kWindowBatch: {
        const bbwire::WindowBatchMsg query = bbwire::decode_window_batch(
            frame.payload, board.board.num_objects());
        board.object_scratch.clear();
        board.object_scratch.reserve(query.objects.size());
        for (const std::uint64_t object : query.objects) {
          board.object_scratch.push_back(
              ObjectId(static_cast<std::size_t>(object)));
        }
        board.ledger.ingest(board.board);
        board.ledger.votes_in_window_batch(board.object_scratch, query.begin,
                                           query.end, board.count_scratch);
        bbwire::encode_window_counts(out, board.count_scratch);
        ++stats_.queries;
        return true;
      }
      case MsgType::kReserve: {
        const bbwire::ReserveMsg msg = bbwire::decode_reserve(frame.payload);
        // Clamp: a hostile hint must not become an allocation bomb.
        constexpr std::uint64_t kMaxReserve = 1u << 24;
        board.board.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(msg.expected_posts, kMaxReserve)));
        return true;  // fire-and-forget, no reply
      }
      case MsgType::kStat: {
        bbwire::BoardStateMsg state;
        state.size = board.board.size();
        state.last_round = board.board.last_committed_round();
        bbwire::encode_board_state(out, MsgType::kStatOk, state);
        return true;
      }
      default:
        send_error(out,
                   std::string("unexpected message type ") +
                       bbwire::msg_type_name(type) +
                       " (clients send open/commit/pull/window_query/"
                       "window_batch/reserve/stat)");
        return true;
    }
  } catch (const net::WireFormatError& error) {
    // Malformed payload inside an intact frame: report, keep serving.
    send_error(out, error.what());
    return true;
  } catch (const ContractViolation& error) {
    // Backstop — the explicit pre-validation above should answer first.
    send_error(out, std::string("billboard contract violation: ") +
                        error.what());
    return true;
  }
}

void BillboardServerCore::handle_open(Session& session,
                                      std::span<const std::uint8_t> payload,
                                      std::vector<std::uint8_t>& out) {
  const bbwire::OpenMsg msg = bbwire::decode_open(payload);
  if (session.board != nullptr) {
    send_error(out, "session already opened a board");
    return;
  }
  std::shared_ptr<BoardState> board;
  if (msg.board.empty()) {
    board = std::make_shared<BoardState>(
        static_cast<std::size_t>(msg.num_players),
        static_cast<std::size_t>(msg.num_objects), msg.billboard_mode());
    ++stats_.boards;
  } else {
    const auto it = shared_boards_.find(msg.board);
    if (it != shared_boards_.end()) {
      board = it->second;
      if (board->board.num_players() != msg.num_players ||
          board->board.num_objects() != msg.num_objects ||
          board->board.mode() != msg.billboard_mode()) {
        send_error(out,
                   "shared board \"" + msg.board + "\" already exists with " +
                       std::to_string(board->board.num_players()) +
                       " players, " +
                       std::to_string(board->board.num_objects()) +
                       " objects, mode " +
                       (board->board.mode() == Billboard::Mode::kAuthoritative
                            ? "authoritative"
                            : "replica") +
                       " — dimensions and mode must match to join");
        return;
      }
    } else {
      board = std::make_shared<BoardState>(
          static_cast<std::size_t>(msg.num_players),
          static_cast<std::size_t>(msg.num_objects), msg.billboard_mode());
      shared_boards_.emplace(msg.board, board);
      ++stats_.boards;
    }
  }
  session.board = std::move(board);
  bbwire::BoardStateMsg state;
  state.size = session.board->board.size();
  state.last_round = session.board->board.last_committed_round();
  bbwire::encode_board_state(out, MsgType::kOpenOk, state);
}

void BillboardServerCore::handle_commit(BoardState& board,
                                        std::span<const std::uint8_t> payload,
                                        std::vector<std::uint8_t>& out) {
  // decode_commit already validated author/object ranges and flags.
  bbwire::CommitMsg msg = bbwire::decode_commit(
      payload, board.board.num_players(), board.board.num_objects());
  Round commit_round = msg.round;
  if (board.board.mode() == Billboard::Mode::kAuthoritative) {
    if (commit_round <= board.board.last_committed_round()) {
      send_error(out, "commit round " + std::to_string(commit_round) +
                          " is not after the last committed round " +
                          std::to_string(
                              board.board.last_committed_round()));
      return;
    }
    if (board.author_seen.size() != board.board.num_players()) {
      board.author_seen.assign(board.board.num_players(), 0);
    }
    const std::uint64_t epoch = ++board.commit_epoch;
    for (const Post& post : msg.posts) {
      if (post.round != commit_round) {
        send_error(out, "authoritative post stamped round " +
                            std::to_string(post.round) +
                            " does not match commit round " +
                            std::to_string(commit_round));
        return;
      }
      if (post.reported_value < 0.0) {
        send_error(out, "post reported_value must be non-negative");
        return;
      }
      if (board.author_seen[post.author.value()] == epoch) {
        send_error(out, "player " + std::to_string(post.author.value()) +
                            " posted twice in round " +
                            std::to_string(commit_round) +
                            " (one post per author per round)");
        return;
      }
      board.author_seen[post.author.value()] = epoch;
    }
  } else {
    // Replica/shared feed: arrival order is the server's to assign, so
    // many writers need no round coordination (PR 3 out-of-order ingest).
    commit_round =
        std::max(commit_round, board.board.last_committed_round() + 1);
    for (const Post& post : msg.posts) {
      if (post.round > commit_round) {
        send_error(out, "replica post stamped round " +
                            std::to_string(post.round) +
                            " is newer than its arrival round " +
                            std::to_string(commit_round) +
                            " (posts cannot come from the future)");
        return;
      }
      if (post.reported_value < 0.0) {
        send_error(out, "post reported_value must be non-negative");
        return;
      }
    }
  }
  board.board.commit_round_from(commit_round, msg.posts);
  ++stats_.commits;
  stats_.posts += msg.posts.size();
  bbwire::BoardStateMsg state;
  state.size = board.board.size();
  state.last_round = board.board.last_committed_round();
  bbwire::encode_board_state(out, MsgType::kCommitOk, state);
}

void BillboardServerCore::handle_pull(BoardState& board,
                                      std::span<const std::uint8_t> payload,
                                      std::vector<std::uint8_t>& out) {
  const bbwire::PullMsg msg = bbwire::decode_pull(payload);
  const std::uint64_t size = board.board.size();
  const std::uint64_t begin = std::min(msg.begin, size);
  const std::uint64_t end = std::min(msg.end, size);
  const std::span<const Post> posts(
      board.board.posts().data() + begin,
      static_cast<std::size_t>(end - begin));
  bbwire::encode_posts(out, posts);
  ++stats_.pulls;
}

void BillboardServerCore::send_error(std::vector<std::uint8_t>& out,
                                     const std::string& message) {
  bbwire::encode_error(out, message);
  ++stats_.errors;
}

}  // namespace acp
