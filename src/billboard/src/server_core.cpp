#include "acp/billboard/server_core.hpp"

#include <algorithm>
#include <utility>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {

using bbwire::MsgType;

}  // namespace

BillboardServerCore::BillboardServerCore(std::size_t worker,
                                         std::size_t workers,
                                         std::size_t shards)
    : worker_(worker), workers_(workers), shards_(shards) {
  ACP_EXPECTS(workers >= 1);
  ACP_EXPECTS(worker < workers);
  ACP_EXPECTS(shards >= workers);
}

std::size_t BillboardServerCore::owner_shard(std::string_view board,
                                             std::size_t shards) noexcept {
  // FNV-1a over the name, splitmix64-finalized: FNV alone is weak in the
  // low bits we take the modulus of.
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : board) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  hash = (hash ^ (hash >> 30)) * 0xBF58476D1CE4E5B9ull;
  hash = (hash ^ (hash >> 27)) * 0x94D049BB133111EBull;
  hash ^= hash >> 31;
  return shards == 0 ? 0 : static_cast<std::size_t>(hash % shards);
}

std::uint64_t BillboardServerCore::open_session() {
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session{});
  ++stats_.sessions_opened;
  ++stats_.sessions_active;
  return id;
}

std::optional<std::size_t> BillboardServerCore::close_session(
    std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return std::nullopt;
  }
  const bool forwarded = it->second.forwarded;
  const std::size_t owner = it->second.owner;
  sessions_.erase(it);
  --stats_.sessions_active;
  if (forwarded) {
    return owner;
  }
  return std::nullopt;
}

bool BillboardServerCore::on_bytes(std::uint64_t session,
                                   std::span<const std::uint8_t> data,
                                   std::vector<std::uint8_t>& out) {
  // Without a forward path every board must be ours.
  ACP_EXPECTS(workers_ == 1);
  return on_bytes(session, data, out, ForwardFn{});
}

bool BillboardServerCore::on_bytes(std::uint64_t session,
                                   std::span<const std::uint8_t> data,
                                   std::vector<std::uint8_t>& out,
                                   const ForwardFn& forward) {
  const auto it = sessions_.find(session);
  ACP_EXPECTS(it != sessions_.end());
  Session& state = it->second;
  state.assembler.append(data);
  for (;;) {
    std::optional<net::Frame> frame;
    try {
      frame = state.assembler.next();
    } catch (const net::WireFormatError& error) {
      // The byte stream itself is corrupt; nothing after this point can
      // be framed. Tell the peer why, then hang up.
      send_error(out, error.what());
      return false;
    }
    if (!frame) {
      return true;
    }
    if (!handle_frame(state, session, *frame, out,
                      forward ? &forward : nullptr)) {
      return false;
    }
  }
}

bool BillboardServerCore::handle_frame(Session& session,
                                       std::uint64_t session_id,
                                       net::Frame frame,
                                       std::vector<std::uint8_t>& out,
                                       const ForwardFn* forward) {
  const MsgType type = static_cast<MsgType>(frame.type);
  try {
    if (session.forwarded) {
      // The session is pinned to the owning worker; every frame —
      // including a retried kOpen — travels there so replies stay FIFO
      // on this connection.
      ACP_EXPECTS(forward != nullptr);
      ++stats_.forwarded;
      (*forward)(session.owner, session_id, frame.type, frame.payload);
      return true;
    }
    if (type == MsgType::kOpen) {
      handle_open_or_forward(session, session_id, frame.payload, out,
                             forward);
      return true;
    }
    if (session.board == nullptr) {
      send_error(out, std::string("received ") + bbwire::msg_type_name(type) +
                          " before open — every session must open a board "
                          "first");
      return true;
    }
    handle_board_frame(*session.board, type, frame.payload, out);
    return true;
  } catch (const net::WireFormatError& error) {
    // Malformed payload inside an intact frame: report, keep serving.
    send_error(out, error.what());
    return true;
  } catch (const ContractViolation& error) {
    // Backstop — the explicit pre-validation above should answer first.
    send_error(out, std::string("billboard contract violation: ") +
                        error.what());
    return true;
  }
}

void BillboardServerCore::handle_board_frame(
    BoardState& board, MsgType type, std::span<const std::uint8_t> payload,
    std::vector<std::uint8_t>& out) {
  switch (type) {
    case MsgType::kCommit:
      handle_commit(board, payload, out);
      return;
    case MsgType::kPull:
      handle_pull(board, payload, out);
      return;
    case MsgType::kWindowQuery: {
      const bbwire::WindowQueryMsg query =
          bbwire::decode_window_query(payload, board.board.num_objects());
      board.ledger.ingest(board.board);
      const Count count = board.ledger.votes_in_window(
          ObjectId(static_cast<std::size_t>(query.object)), query.begin,
          query.end);
      bbwire::encode_window_count(out, count);
      ++stats_.queries;
      return;
    }
    case MsgType::kWindowBatch: {
      const bbwire::WindowBatchMsg query =
          bbwire::decode_window_batch(payload, board.board.num_objects());
      board.object_scratch.clear();
      board.object_scratch.reserve(query.objects.size());
      for (const std::uint64_t object : query.objects) {
        board.object_scratch.push_back(
            ObjectId(static_cast<std::size_t>(object)));
      }
      board.ledger.ingest(board.board);
      board.ledger.votes_in_window_batch(board.object_scratch, query.begin,
                                         query.end, board.count_scratch);
      bbwire::encode_window_counts(out, board.count_scratch);
      ++stats_.queries;
      return;
    }
    case MsgType::kReserve: {
      const bbwire::ReserveMsg msg = bbwire::decode_reserve(payload);
      // Clamp: a hostile hint must not become an allocation bomb.
      constexpr std::uint64_t kMaxReserve = 1u << 24;
      board.board.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(msg.expected_posts, kMaxReserve)));
      return;  // fire-and-forget, no reply
    }
    case MsgType::kStat: {
      bbwire::BoardStateMsg state;
      state.size = board.board.size();
      state.last_round = board.board.last_committed_round();
      bbwire::encode_board_state(out, MsgType::kStatOk, state);
      return;
    }
    default:
      send_error(out,
                 std::string("unexpected message type ") +
                     bbwire::msg_type_name(type) +
                     " (clients send open/commit/pull/window_query/"
                     "window_batch/reserve/stat)");
      return;
  }
}

void BillboardServerCore::handle_open_or_forward(
    Session& session, std::uint64_t session_id,
    std::span<const std::uint8_t> payload, std::vector<std::uint8_t>& out,
    const ForwardFn* forward) {
  const bbwire::OpenMsg msg = bbwire::decode_open(payload);
  if (session.board != nullptr) {
    send_error(out, "session already opened a board");
    return;
  }
  if (msg.board.empty()) {
    // Private board: always owned here, dropped with the session.
    session.board = std::make_shared<BoardState>(
        static_cast<std::size_t>(msg.num_players),
        static_cast<std::size_t>(msg.num_objects), msg.billboard_mode());
    ++stats_.boards;
  } else {
    const std::size_t owner = owner_worker(msg.board);
    if (owner != worker_) {
      // Pin the session to the owning worker and ship the open there;
      // the owner validates and replies through the mailbox.
      ACP_EXPECTS(forward != nullptr);
      session.forwarded = true;
      session.owner = owner;
      ++stats_.forwarded;
      (*forward)(owner, session_id, static_cast<std::uint8_t>(MsgType::kOpen),
                 payload);
      return;
    }
    session.board = join_named_board(msg, out);
    if (session.board == nullptr) {
      return;  // join_named_board already sent the error
    }
  }
  bbwire::BoardStateMsg state;
  state.size = session.board->board.size();
  state.last_round = session.board->board.last_committed_round();
  bbwire::encode_board_state(out, MsgType::kOpenOk, state);
}

std::shared_ptr<BillboardServerCore::BoardState>
BillboardServerCore::join_named_board(const bbwire::OpenMsg& msg,
                                      std::vector<std::uint8_t>& out) {
  const auto it = shared_boards_.find(msg.board);
  if (it != shared_boards_.end()) {
    const std::shared_ptr<BoardState>& board = it->second;
    if (board->board.num_players() != msg.num_players ||
        board->board.num_objects() != msg.num_objects ||
        board->board.mode() != msg.billboard_mode()) {
      send_error(out,
                 "shared board \"" + msg.board + "\" already exists with " +
                     std::to_string(board->board.num_players()) +
                     " players, " +
                     std::to_string(board->board.num_objects()) +
                     " objects, mode " +
                     (board->board.mode() == Billboard::Mode::kAuthoritative
                          ? "authoritative"
                          : "replica") +
                     " — dimensions and mode must match to join");
      return nullptr;
    }
    return board;
  }
  auto board = std::make_shared<BoardState>(
      static_cast<std::size_t>(msg.num_players),
      static_cast<std::size_t>(msg.num_objects), msg.billboard_mode());
  shared_boards_.emplace(msg.board, board);
  ++stats_.boards;
  return board;
}

void BillboardServerCore::apply_forwarded(std::uint64_t token,
                                          std::uint8_t type,
                                          std::span<const std::uint8_t> payload,
                                          std::vector<std::uint8_t>& out) {
  const MsgType msg_type = static_cast<MsgType>(type);
  try {
    if (msg_type == MsgType::kOpen) {
      if (remote_sessions_.find(token) != remote_sessions_.end()) {
        send_error(out, "session already opened a board");
        return;
      }
      const bbwire::OpenMsg msg = bbwire::decode_open(payload);
      if (msg.board.empty() || owner_worker(msg.board) != worker_) {
        // A failed remote open pins the connection to this worker; a
        // retry naming a board that lives elsewhere cannot be routed
        // without breaking reply order. Reconnecting is the answer.
        send_error(out, "board \"" + msg.board +
                            "\" is not owned by this connection's shard (a "
                            "failed open pins the connection to one shard; "
                            "reconnect to open this board)");
        return;
      }
      std::shared_ptr<BoardState> board = join_named_board(msg, out);
      if (board == nullptr) {
        return;
      }
      bbwire::BoardStateMsg state;
      state.size = board->board.size();
      state.last_round = board->board.last_committed_round();
      bbwire::encode_board_state(out, MsgType::kOpenOk, state);
      remote_sessions_.emplace(token, std::move(board));
      return;
    }
    const auto it = remote_sessions_.find(token);
    if (it == remote_sessions_.end()) {
      send_error(out,
                 std::string("received ") + bbwire::msg_type_name(msg_type) +
                     " before open — every session must open a board first");
      return;
    }
    handle_board_frame(*it->second, msg_type, payload, out);
  } catch (const net::WireFormatError& error) {
    send_error(out, error.what());
  } catch (const ContractViolation& error) {
    send_error(out, std::string("billboard contract violation: ") +
                        error.what());
  }
}

void BillboardServerCore::close_forwarded(std::uint64_t token) {
  remote_sessions_.erase(token);
}

void BillboardServerCore::handle_commit(BoardState& board,
                                        std::span<const std::uint8_t> payload,
                                        std::vector<std::uint8_t>& out) {
  // decode_commit already validated author/object ranges and flags.
  bbwire::CommitMsg msg = bbwire::decode_commit(
      payload, board.board.num_players(), board.board.num_objects());
  Round commit_round = msg.round;
  if (board.board.mode() == Billboard::Mode::kAuthoritative) {
    if (commit_round <= board.board.last_committed_round()) {
      send_error(out, "commit round " + std::to_string(commit_round) +
                          " is not after the last committed round " +
                          std::to_string(
                              board.board.last_committed_round()));
      return;
    }
    if (board.author_seen.size() != board.board.num_players()) {
      board.author_seen.assign(board.board.num_players(), 0);
    }
    const std::uint64_t epoch = ++board.commit_epoch;
    for (const Post& post : msg.posts) {
      if (post.round != commit_round) {
        send_error(out, "authoritative post stamped round " +
                            std::to_string(post.round) +
                            " does not match commit round " +
                            std::to_string(commit_round));
        return;
      }
      if (post.reported_value < 0.0) {
        send_error(out, "post reported_value must be non-negative");
        return;
      }
      if (board.author_seen[post.author.value()] == epoch) {
        send_error(out, "player " + std::to_string(post.author.value()) +
                            " posted twice in round " +
                            std::to_string(commit_round) +
                            " (one post per author per round)");
        return;
      }
      board.author_seen[post.author.value()] = epoch;
    }
  } else {
    // Replica/shared feed: arrival order is the server's to assign, so
    // many writers need no round coordination (PR 3 out-of-order ingest).
    commit_round =
        std::max(commit_round, board.board.last_committed_round() + 1);
    for (const Post& post : msg.posts) {
      if (post.round > commit_round) {
        send_error(out, "replica post stamped round " +
                            std::to_string(post.round) +
                            " is newer than its arrival round " +
                            std::to_string(commit_round) +
                            " (posts cannot come from the future)");
        return;
      }
      if (post.reported_value < 0.0) {
        send_error(out, "post reported_value must be non-negative");
        return;
      }
    }
  }
  board.board.commit_round_from(commit_round, msg.posts);
  ++stats_.commits;
  stats_.posts += msg.posts.size();
  bbwire::BoardStateMsg state;
  state.size = board.board.size();
  state.last_round = board.board.last_committed_round();
  bbwire::encode_board_state(out, MsgType::kCommitOk, state);
}

void BillboardServerCore::handle_pull(BoardState& board,
                                      std::span<const std::uint8_t> payload,
                                      std::vector<std::uint8_t>& out) {
  const bbwire::PullMsg msg = bbwire::decode_pull(payload);
  const std::uint64_t size = board.board.size();
  const std::uint64_t begin = std::min(msg.begin, size);
  const std::uint64_t end = std::min(msg.end, size);
  const std::span<const Post> posts(
      board.board.posts().data() + begin,
      static_cast<std::size_t>(end - begin));
  bbwire::encode_posts(out, posts);
  ++stats_.pulls;
}

void BillboardServerCore::send_error(std::vector<std::uint8_t>& out,
                                     const std::string& message) {
  bbwire::encode_error(out, message);
  ++stats_.errors;
}

}  // namespace acp
