#include "acp/billboard/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <utility>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

// Session ids are per-core and never reused, so (worker, session) packs
// into a token that is unique for the server's lifetime.
constexpr unsigned kTokenShift = 48;

constexpr std::uint64_t make_token(std::size_t worker,
                                   std::uint64_t session) noexcept {
  return (static_cast<std::uint64_t>(worker) << kTokenShift) | session;
}

constexpr std::size_t token_worker(std::uint64_t token) noexcept {
  return static_cast<std::size_t>(token >> kTokenShift);
}

constexpr std::uint64_t token_session(std::uint64_t token) noexcept {
  return token & ((std::uint64_t{1} << kTokenShift) - 1);
}

}  // namespace

BillboardServer::BillboardServer(const net::Endpoint& endpoint)
    : BillboardServer(endpoint, Options{}) {}

BillboardServer::BillboardServer(const net::Endpoint& endpoint,
                                 Options options)
    : listener_(endpoint) {
  // A dead client must not kill the daemon mid-reply: sends use
  // MSG_NOSIGNAL, and this covers any path that can't.
  net::ignore_sigpipe();
  net::set_nonblocking(listener_.fd(), true);
  const std::size_t io_threads = std::max<std::size_t>(1, options.io_threads);
  shards_ = std::max(options.shards == 0 ? io_threads : options.shards,
                     io_threads);
  workers_.reserve(io_threads);
  for (std::size_t i = 0; i < io_threads; ++i) {
    auto worker = std::make_unique<Worker>(i, io_threads, shards_);
    auto [read_end, write_end] = net::stream_pair();
    worker->wake_read = std::move(read_end);
    worker->wake_write = std::move(write_end);
    net::set_nonblocking(worker->wake_read.get(), true);
    worker->recv_buf.resize(kRecvChunk);
    workers_.push_back(std::move(worker));
  }
}

BillboardServer::~BillboardServer() { stop(); }

void BillboardServer::start() {
  ACP_EXPECTS(!thread_.joinable());
  stop_requested_.store(false);
  thread_ = std::thread([this] { serve(); });
  while (!running_.load(std::memory_order_acquire) &&
         !stop_requested_.load()) {
    // Bind already happened in the constructor, so a connect() racing
    // this spin would be queued by the listen backlog anyway.
    std::this_thread::yield();
  }
}

void BillboardServer::stop() {
  stop_requested_.store(true);
  const std::uint8_t byte = 0;
  for (const auto& worker : workers_) {
    ::send(worker->wake_write.get(), &byte, 1, MSG_NOSIGNAL);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

BillboardServerCore::Stats BillboardServer::stats() const {
  BillboardServerCore::Stats total;
  for (const auto& worker : workers_) {
    const std::lock_guard<std::mutex> lock(worker->core_mutex);
    const BillboardServerCore::Stats s = worker->core.stats();
    total.sessions_opened += s.sessions_opened;
    total.sessions_active += s.sessions_active;
    total.boards += s.boards;
    total.commits += s.commits;
    total.posts += s.posts;
    total.queries += s.queries;
    total.pulls += s.pulls;
    total.errors += s.errors;
    total.forwarded += s.forwarded;
  }
  return total;
}

void BillboardServer::serve() {
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    Worker& worker = *workers_[i];
    worker.thread = std::thread([this, &worker] { worker_loop(worker); });
  }
  running_.store(true, std::memory_order_release);
  worker_loop(*workers_[0]);
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    if (workers_[i]->thread.joinable()) {
      workers_[i]->thread.join();
    }
  }
  running_.store(false, std::memory_order_release);
}

void BillboardServer::post(std::size_t target, Envelope envelope) {
  Worker& worker = *workers_[target];
  bool was_empty = false;
  {
    const std::lock_guard<std::mutex> lock(worker.inbox_mutex);
    was_empty = worker.inbox.empty();
    worker.inbox.push_back(std::move(envelope));
  }
  if (was_empty) {
    const std::uint8_t byte = 0;
    ::send(worker.wake_write.get(), &byte, 1, MSG_NOSIGNAL);
  }
}

void BillboardServer::worker_loop(Worker& worker) {
#ifdef __linux__
  worker_epoll(worker);
#else
  worker_poll(worker);
#endif
  // Close whatever is still connected so a restart starts clean.
  for (auto& [fd, conn] : worker.conns) {
    const std::lock_guard<std::mutex> lock(worker.core_mutex);
    worker.core.close_session(conn.session);
  }
  worker.conns.clear();
  worker.session_fd.clear();
}

void BillboardServer::drain_inbox(Worker& worker) {
  worker.drain.clear();
  {
    const std::lock_guard<std::mutex> lock(worker.inbox_mutex);
    worker.drain.swap(worker.inbox);
  }
  for (Envelope& envelope : worker.drain) {
    switch (envelope.kind) {
      case Envelope::Kind::kAccept:
        adopt_conn(worker, std::move(envelope.fd));
        break;
      case Envelope::Kind::kRequest: {
        worker.reply_buf.clear();
        {
          const std::lock_guard<std::mutex> lock(worker.core_mutex);
          worker.core.apply_forwarded(envelope.token, envelope.type,
                                      envelope.payload, worker.reply_buf);
        }
        if (!worker.reply_buf.empty()) {
          Envelope reply;
          reply.kind = Envelope::Kind::kReply;
          reply.token = envelope.token;
          reply.payload = worker.reply_buf;
          post(token_worker(envelope.token), std::move(reply));
        }
        break;
      }
      case Envelope::Kind::kReply: {
        const auto it = worker.session_fd.find(token_session(envelope.token));
        if (it == worker.session_fd.end()) {
          break;  // connection already gone; drop the reply
        }
        const auto conn_it = worker.conns.find(it->second);
        if (conn_it == worker.conns.end()) {
          break;
        }
        Conn& conn = conn_it->second;
        conn.outbuf.insert(conn.outbuf.end(), envelope.payload.begin(),
                           envelope.payload.end());
        mark_dirty(worker, it->second, conn);
        break;
      }
      case Envelope::Kind::kClose: {
        const std::lock_guard<std::mutex> lock(worker.core_mutex);
        worker.core.close_forwarded(envelope.token);
        break;
      }
    }
  }
  worker.drain.clear();
}

void BillboardServer::accept_ready(Worker& worker) {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      // EMFILE & friends: drop this readiness edge, keep serving the
      // connections we have.
      return;
    }
    net::set_nonblocking(fd, true);
    if (listener_.endpoint().kind == net::Endpoint::Kind::kTcp) {
      net::set_nodelay(fd);
    }
    net::FdHandle handle(fd);
    const std::size_t target = next_accept_++ % workers_.size();
    if (target == worker.index) {
      adopt_conn(worker, std::move(handle));
    } else {
      Envelope envelope;
      envelope.kind = Envelope::Kind::kAccept;
      envelope.fd = std::move(handle);
      post(target, std::move(envelope));
    }
  }
}

void BillboardServer::adopt_conn(Worker& worker, net::FdHandle fd) {
  const int raw = fd.get();
  Conn conn;
  conn.fd = std::move(fd);
  {
    const std::lock_guard<std::mutex> lock(worker.core_mutex);
    conn.session = worker.core.open_session();
  }
  worker.session_fd.emplace(conn.session, raw);
  worker.conns.emplace(raw, std::move(conn));
  update_interest(worker, raw, worker.conns.at(raw));
}

bool BillboardServer::conn_readable(Worker& worker, Conn& conn) {
  const auto forward = [this, &worker](std::size_t owner,
                                       std::uint64_t session,
                                       std::uint8_t type,
                                       std::span<const std::uint8_t> payload) {
    Envelope envelope;
    envelope.kind = Envelope::Kind::kRequest;
    envelope.token = make_token(worker.index, session);
    envelope.type = type;
    envelope.payload.assign(payload.begin(), payload.end());
    post(owner, std::move(envelope));
  };
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), worker.recv_buf.data(),
                             worker.recv_buf.size(), 0);
    if (n > 0) {
      bool keep = true;
      {
        const std::lock_guard<std::mutex> lock(worker.core_mutex);
        keep = worker.core.on_bytes(
            conn.session,
            std::span<const std::uint8_t>(worker.recv_buf.data(),
                                          static_cast<std::size_t>(n)),
            conn.outbuf, forward);
      }
      if (!keep) {
        // Flush the final error frame if the peer still reads, then
        // close (the iteration-end flush handles both).
        conn.closing = true;
        return true;
      }
      continue;
    }
    if (n == 0) {
      return false;  // orderly EOF
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // ECONNRESET etc.
  }
}

bool BillboardServer::conn_writable(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // wait for the next writable edge
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer is gone
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  return !conn.closing;
}

void BillboardServer::mark_dirty(Worker& worker, int fd, Conn& conn) {
  if (!conn.dirty) {
    conn.dirty = true;
    worker.dirty.push_back(fd);
  }
}

void BillboardServer::flush_dirty(Worker& worker) {
  for (const int fd : worker.dirty) {
    const auto it = worker.conns.find(fd);
    if (it == worker.conns.end()) {
      continue;  // closed earlier this iteration
    }
    Conn& conn = it->second;
    conn.dirty = false;
    if (!conn_writable(conn)) {
      close_conn(worker, fd);
      continue;
    }
    update_interest(worker, fd, conn);
  }
  worker.dirty.clear();
}

void BillboardServer::close_conn(Worker& worker, int fd) {
  const auto it = worker.conns.find(fd);
  if (it == worker.conns.end()) {
    return;
  }
  std::optional<std::size_t> owner;
  {
    const std::lock_guard<std::mutex> lock(worker.core_mutex);
    owner = worker.core.close_session(it->second.session);
  }
  if (owner) {
    // Tell the board owner to drop the forwarded session's binding.
    Envelope envelope;
    envelope.kind = Envelope::Kind::kClose;
    envelope.token = make_token(worker.index, it->second.session);
    post(*owner, std::move(envelope));
  }
  worker.session_fd.erase(it->second.session);
#ifdef __linux__
  if (worker.epoll_fd >= 0) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  worker.conns.erase(it);  // FdHandle closes the socket
}

void BillboardServer::update_interest(Worker& worker, int fd, Conn& conn) {
#ifdef __linux__
  if (worker.epoll_fd < 0) {
    return;
  }
  const bool want_write = wants_write(conn);
  epoll_event event{};
  event.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, fd, &event) != 0 &&
      errno == ENOENT) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &event);
  }
  conn.reg_write = want_write;
#else
  (void)worker;
  (void)fd;
  (void)conn;
#endif
  // poll backend rebuilds its fd set every iteration; nothing to update.
}

#ifdef __linux__
void BillboardServer::worker_epoll(Worker& worker) {
  net::FdHandle epoll_holder(::epoll_create1(0));
  if (!epoll_holder.valid()) {
    throw net::SocketError("epoll_create1 failed");
  }
  worker.epoll_fd = epoll_holder.get();
  epoll_event event{};
  event.events = EPOLLIN;
  if (worker.index == 0) {
    event.data.fd = listener_.fd();
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &event);
  }
  event.data.fd = worker.wake_read.get();
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, worker.wake_read.get(), &event);

  std::vector<epoll_event> events(1024);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(worker.epoll_fd, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == worker.wake_read.get()) {
        std::uint8_t sink[64];
        while (::recv(worker.wake_read.get(), sink, sizeof(sink), 0) > 0) {
        }
        drain_inbox(worker);
        continue;
      }
      if (worker.index == 0 && fd == listener_.fd()) {
        accept_ready(worker);
        continue;
      }
      const auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) {
        continue;
      }
      Conn& conn = it->second;
      bool alive = true;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && (mask & EPOLLIN) == 0) {
        alive = false;
      }
      if (alive && (mask & EPOLLIN) != 0 && !conn.closing) {
        alive = conn_readable(worker, conn);
      }
      if (!alive) {
        close_conn(worker, fd);
        continue;
      }
      // Reads queued replies; EPOLLOUT means backlog can drain. Either
      // way the iteration-end flush takes it from here.
      if (!conn.outbuf.empty() || (mask & EPOLLOUT) != 0 || conn.closing) {
        mark_dirty(worker, fd, conn);
      }
    }
    flush_dirty(worker);
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  worker.epoll_fd = -1;
}
#else
void BillboardServer::worker_epoll(Worker& worker) { worker_poll(worker); }
#endif

void BillboardServer::worker_poll(Worker& worker) {
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    fds.clear();
    const std::size_t listener_slot = worker.index == 0 ? 0 : SIZE_MAX;
    if (worker.index == 0) {
      fds.push_back(pollfd{listener_.fd(), static_cast<short>(POLLIN), 0});
    }
    const std::size_t wake_slot = fds.size();
    fds.push_back(pollfd{worker.wake_read.get(), static_cast<short>(POLLIN),
                         0});
    const std::size_t conn_base = fds.size();
    for (const auto& [fd, conn] : worker.conns) {
      fds.push_back(pollfd{
          fd, static_cast<short>(POLLIN | (wants_write(conn) ? POLLOUT : 0)),
          0});
    }
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[wake_slot].revents & POLLIN) != 0) {
      std::uint8_t sink[64];
      while (::recv(worker.wake_read.get(), sink, sizeof(sink), 0) > 0) {
      }
      drain_inbox(worker);
    }
    if (listener_slot != SIZE_MAX &&
        (fds[listener_slot].revents & POLLIN) != 0) {
      accept_ready(worker);
    }
    for (std::size_t i = conn_base; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      const auto it = worker.conns.find(fds[i].fd);
      if (it == worker.conns.end()) {
        continue;
      }
      Conn& conn = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0 && !conn.closing) {
        alive = conn_readable(worker, conn);
      }
      if (!alive) {
        close_conn(worker, fds[i].fd);
        continue;
      }
      if (!conn.outbuf.empty() || (fds[i].revents & POLLOUT) != 0 ||
          conn.closing) {
        mark_dirty(worker, fds[i].fd, conn);
      }
    }
    flush_dirty(worker);
  }
}

}  // namespace acp
