#include "acp/billboard/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <cerrno>

#include "acp/util/contracts.hpp"

namespace acp {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

BillboardServer::BillboardServer(const net::Endpoint& endpoint)
    : listener_(endpoint) {
  net::set_nonblocking(listener_.fd(), true);
  auto [read_end, write_end] = net::stream_pair();
  wake_read_ = std::move(read_end);
  wake_write_ = std::move(write_end);
  net::set_nonblocking(wake_read_.get(), true);
  recv_buf_.resize(kRecvChunk);
}

BillboardServer::~BillboardServer() { stop(); }

void BillboardServer::start() {
  ACP_EXPECTS(!thread_.joinable());
  stop_requested_.store(false);
  thread_ = std::thread([this] { serve(); });
  while (!running_.load(std::memory_order_acquire) &&
         !stop_requested_.load()) {
    // Bind already happened in the constructor, so a connect() racing
    // this spin would be queued by the listen backlog anyway.
    std::this_thread::yield();
  }
}

void BillboardServer::stop() {
  stop_requested_.store(true);
  const std::uint8_t byte = 0;
  ::send(wake_write_.get(), &byte, 1, MSG_NOSIGNAL);
  if (thread_.joinable()) {
    thread_.join();
  }
}

BillboardServerCore::Stats BillboardServer::stats() const {
  const std::lock_guard<std::mutex> lock(core_mutex_);
  return core_.stats();
}

void BillboardServer::serve() {
  running_.store(true, std::memory_order_release);
#ifdef __linux__
  serve_epoll();
#else
  serve_poll();
#endif
  // Close whatever is still connected so a restart starts clean.
  for (auto& [fd, conn] : conns_) {
    const std::lock_guard<std::mutex> lock(core_mutex_);
    core_.close_session(conn.session);
  }
  conns_.clear();
  running_.store(false, std::memory_order_release);
}

void BillboardServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;
      }
      // EMFILE & friends: drop this readiness edge, keep serving the
      // connections we have.
      return;
    }
    net::set_nonblocking(fd, true);
    if (listener_.endpoint().kind == net::Endpoint::Kind::kTcp) {
      net::set_nodelay(fd);
    }
    Conn conn;
    conn.fd = net::FdHandle(fd);
    {
      const std::lock_guard<std::mutex> lock(core_mutex_);
      conn.session = core_.open_session();
    }
    conns_.emplace(fd, std::move(conn));
    update_interest(fd, false);
  }
}

bool BillboardServer::conn_readable(Conn& conn) {
  for (;;) {
    const ssize_t n =
        ::recv(conn.fd.get(), recv_buf_.data(), recv_buf_.size(), 0);
    if (n > 0) {
      bool keep = true;
      {
        const std::lock_guard<std::mutex> lock(core_mutex_);
        keep = core_.on_bytes(
            conn.session,
            std::span<const std::uint8_t>(recv_buf_.data(),
                                          static_cast<std::size_t>(n)),
            conn.outbuf);
      }
      if (!keep) {
        conn.closing = true;
        // Flush the final error frame if the peer still reads.
        return conn_writable(conn) && wants_write(conn);
      }
      continue;
    }
    if (n == 0) {
      return false;  // orderly EOF
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return conn_writable(conn);
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // ECONNRESET etc.
  }
}

bool BillboardServer::conn_writable(Conn& conn) {
  while (conn.out_off < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd.get(), conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // wait for the next writable edge
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer is gone
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  return !conn.closing;
}

void BillboardServer::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(core_mutex_);
    core_.close_session(it->second.session);
  }
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  conns_.erase(it);  // FdHandle closes the socket
}

void BillboardServer::update_interest(int fd, [[maybe_unused]] bool want_write) {
#ifdef __linux__
  if (epoll_fd_ < 0) {
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0 &&
      errno == ENOENT) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
  }
#endif
  // poll backend rebuilds its fd set every iteration; nothing to update.
}

#ifdef __linux__
void BillboardServer::serve_epoll() {
  net::FdHandle epoll_holder(::epoll_create1(0));
  if (!epoll_holder.valid()) {
    throw net::SocketError("epoll_create1 failed");
  }
  epoll_fd_ = epoll_holder.get();
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = listener_.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &event);
  event.data.fd = wake_read_.get();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_.get(), &event);

  std::vector<epoll_event> events(1024);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_read_.get()) {
        std::uint8_t sink[64];
        while (::recv(wake_read_.get(), sink, sizeof(sink), 0) > 0) {
        }
        continue;
      }
      if (fd == listener_.fd()) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;
      }
      Conn& conn = it->second;
      bool alive = true;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 && (mask & EPOLLIN) == 0) {
        alive = false;
      }
      if (alive && (mask & EPOLLIN) != 0) {
        alive = conn_readable(conn);
      }
      if (alive && (mask & EPOLLOUT) != 0) {
        alive = conn_writable(conn);
      }
      if (!alive) {
        close_conn(fd);
      } else {
        update_interest(fd, wants_write(conn));
      }
    }
    if (n == static_cast<int>(events.size())) {
      events.resize(events.size() * 2);
    }
  }
  epoll_fd_ = -1;
}
#else
void BillboardServer::serve_epoll() { serve_poll(); }
#endif

void BillboardServer::serve_poll() {
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back(pollfd{listener_.fd(), static_cast<short>(POLLIN), 0});
    fds.push_back(pollfd{wake_read_.get(), static_cast<short>(POLLIN), 0});
    for (const auto& [fd, conn] : conns_) {
      fds.push_back(pollfd{
          fd, static_cast<short>(POLLIN | (wants_write(conn) ? POLLOUT : 0)),
          0});
    }
    const int n = ::poll(fds.data(), fds.size(), -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      std::uint8_t sink[64];
      while (::recv(wake_read_.get(), sink, sizeof(sink), 0) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) {
      accept_ready();
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      const auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) {
        continue;
      }
      Conn& conn = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0) {
        alive = conn_readable(conn);
      }
      if (alive && (fds[i].revents & POLLOUT) != 0) {
        alive = conn_writable(conn);
      }
      if (!alive) {
        close_conn(fds[i].fd);
      }
    }
  }
}

}  // namespace acp
