#include "acp/billboard/billboard.hpp"

#include <iterator>

#include "acp/obs/bandwidth.hpp"
#include "acp/obs/timer.hpp"

namespace acp {
namespace {

// Authoritative commits are the protocol's writes to the shared board,
// attributed to each post's author. Replica commits are excluded: a
// replica ingesting gossip would double-count traffic already metered at
// the gossip exchange.
void meter_commit(Billboard::Mode mode, std::span<const Post> posts) {
  if (mode != Billboard::Mode::kAuthoritative || !obs::BandwidthMeter::enabled()) {
    return;
  }
  for (const Post& p : posts) {
    obs::BandwidthMeter::add_write_for(obs::IoChannel::kBillboardCommit,
                                       obs::kPostWireBits, p.author);
  }
}

}  // namespace

Billboard::Billboard(std::size_t num_players, std::size_t num_objects,
                     Mode mode)
    : num_players_(num_players), num_objects_(num_objects), mode_(mode) {
  ACP_EXPECTS(num_players_ >= 1);
  ACP_EXPECTS(num_objects_ >= 1);
}

void Billboard::validate_round(Round round, std::span<const Post> posts) {
  ACP_EXPECTS(round > last_round_);
  if (mode_ == Mode::kAuthoritative && author_stamp_.size() != num_players_) {
    author_stamp_.assign(num_players_, 0);
  }
  const std::uint64_t epoch = ++commit_epoch_;
  for (const Post& p : posts) {
    ACP_EXPECTS(p.author.value() < num_players_);
    ACP_EXPECTS(p.object.value() < num_objects_);
    ACP_EXPECTS(p.reported_value >= 0.0);
    if (mode_ == Mode::kAuthoritative) {
      ACP_EXPECTS(p.round == round);
      // One post per author per round (a player takes one step per round).
      ACP_EXPECTS(author_stamp_[p.author.value()] != epoch);
      author_stamp_[p.author.value()] = epoch;
    } else {
      // Replica: the gossip layer cannot deliver posts from the future.
      ACP_EXPECTS(p.round <= round);
    }
  }
  last_round_ = round;
}

void Billboard::commit_round(Round round, std::vector<Post> posts) {
  ACP_OBS_TIMED_SCOPE("billboard.commit_round");
  validate_round(round, posts);
  meter_commit(mode_, posts);
  posts_.insert(posts_.end(), std::make_move_iterator(posts.begin()),
                std::make_move_iterator(posts.end()));
}

void Billboard::commit_round_from(Round round, std::span<const Post> posts) {
  ACP_OBS_TIMED_SCOPE("billboard.commit_round");
  validate_round(round, posts);
  meter_commit(mode_, posts);
  posts_.insert(posts_.end(), posts.begin(), posts.end());
}

}  // namespace acp
