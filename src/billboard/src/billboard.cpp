#include "acp/billboard/billboard.hpp"

#include <algorithm>
#include <utility>

#include "acp/obs/timer.hpp"

namespace acp {

Billboard::Billboard(std::size_t num_players, std::size_t num_objects,
                     Mode mode)
    : num_players_(num_players), num_objects_(num_objects), mode_(mode) {
  ACP_EXPECTS(num_players_ >= 1);
  ACP_EXPECTS(num_objects_ >= 1);
}

void Billboard::commit_round(Round round, std::vector<Post> posts) {
  ACP_OBS_TIMED_SCOPE("billboard.commit_round");
  ACP_EXPECTS(round > last_round_);
  std::vector<std::size_t> authors;
  authors.reserve(posts.size());
  for (const Post& p : posts) {
    ACP_EXPECTS(p.author.value() < num_players_);
    ACP_EXPECTS(p.object.value() < num_objects_);
    ACP_EXPECTS(p.reported_value >= 0.0);
    if (mode_ == Mode::kAuthoritative) {
      ACP_EXPECTS(p.round == round);
      authors.push_back(p.author.value());
    } else {
      // Replica: the gossip layer cannot deliver posts from the future.
      ACP_EXPECTS(p.round <= round);
    }
  }
  if (mode_ == Mode::kAuthoritative) {
    // One post per author per round (a player takes one step per round).
    std::sort(authors.begin(), authors.end());
    ACP_EXPECTS(std::adjacent_find(authors.begin(), authors.end()) ==
                authors.end());
  }

  posts_.insert(posts_.end(), std::make_move_iterator(posts.begin()),
                std::make_move_iterator(posts.end()));
  last_round_ = round;
}

}  // namespace acp
