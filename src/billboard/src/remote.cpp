#include "acp/billboard/remote.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "acp/obs/metrics.hpp"
#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

namespace {

using bbwire::MsgType;

constexpr std::size_t kRecvChunk = 64 * 1024;
/// Posts per kPull request when snapshotting; ~1.4 MiB of frame, well
/// under the payload ceiling.
constexpr std::uint64_t kPullChunk = 100'000;

[[nodiscard]] MsgType frame_type(const net::Frame& frame) {
  return static_cast<MsgType>(frame.type);
}

}  // namespace

RemoteBillboard::RemoteBillboard(const net::Endpoint& endpoint,
                                 std::size_t num_players,
                                 std::size_t num_objects, Billboard::Mode mode,
                                 std::string board, std::size_t pipeline)
    : fd_(net::connect_endpoint(endpoint)),
      board_name_(std::move(board)),
      peer_(endpoint.to_string()),
      mirror_(num_players, num_objects, mode),
      commit_timer_(&obs::MetricsRegistry::global().timer(
          "billboard.rpc.commit")),
      query_timer_(&obs::MetricsRegistry::global().timer(
          "billboard.rpc.query")) {
  pipeline_ = board_name_.empty() ? std::max<std::size_t>(1, pipeline) : 1;
  recv_buf_.resize(kRecvChunk);
  open_board(mode);
}

RemoteBillboard::RemoteBillboard(net::FdHandle fd, std::size_t num_players,
                                 std::size_t num_objects, Billboard::Mode mode,
                                 std::string board, std::size_t pipeline)
    : fd_(std::move(fd)),
      board_name_(std::move(board)),
      peer_("fd"),
      mirror_(num_players, num_objects, mode),
      commit_timer_(&obs::MetricsRegistry::global().timer(
          "billboard.rpc.commit")),
      query_timer_(&obs::MetricsRegistry::global().timer(
          "billboard.rpc.query")) {
  ACP_EXPECTS(fd_.valid());
  pipeline_ = board_name_.empty() ? std::max<std::size_t>(1, pipeline) : 1;
  recv_buf_.resize(kRecvChunk);
  open_board(mode);
}

std::string RemoteBillboard::backend_name() const {
  if (board_name_.empty()) return peer_;
  return peer_ + "#" + board_name_;
}

void RemoteBillboard::open_board(Billboard::Mode mode) {
  bbwire::OpenMsg open;
  open.mode = mode == Billboard::Mode::kAuthoritative ? 0 : 1;
  open.num_players = mirror_.num_players();
  open.num_objects = mirror_.num_objects();
  open.board = board_name_;
  out_.clear();
  bbwire::encode_open(out_, open);
  const net::Frame reply = transact(obs::IoChannel::kBillboardRpcSnapshot);
  if (frame_type(reply) != MsgType::kOpenOk) {
    unexpected_reply(reply, "open_ok");
  }
  const bbwire::BoardStateMsg state =
      bbwire::decode_board_state(reply.payload, MsgType::kOpenOk);
  if (state.size > 0) {
    // Joined a shared board that already has history: fold it in before
    // the caller sees the mirror.
    pull_tail(state.size, state.last_round);
  }
}

void RemoteBillboard::commit_round(Round round, std::vector<Post> posts) {
  commit_round_from(round, posts);
}

void RemoteBillboard::commit_round_from(Round round,
                                        std::span<const Post> posts) {
  const obs::ScopedTimer timer(*commit_timer_);
  if (pipeline_ > 1) {
    // Private board, pipelined: apply optimistically, queue the expected
    // ack, and only block once the window is full. The server checks the
    // same contract the mirror just enforced, so an ack mismatch (or a
    // kError surfacing in a later drain) means a genuinely divergent
    // server — an exception, not a recovery path.
    out_.clear();
    bbwire::encode_commit(out_, round, posts);
    obs::BandwidthMeter::add_write(obs::IoChannel::kBillboardRpcPost,
                                   out_.size() * 8);
    net::send_all(fd_.get(), out_);
    mirror_.commit_round_from(round, posts);
    pending_acks_.push_back(mirror_.size());
    while (pending_acks_.size() >= pipeline_) {
      drain_one_ack();
    }
    return;
  }
  out_.clear();
  bbwire::encode_commit(out_, round, posts);
  const net::Frame reply = transact(obs::IoChannel::kBillboardRpcPost);
  if (frame_type(reply) != MsgType::kCommitOk) {
    unexpected_reply(reply, "commit_ok");
  }
  const bbwire::BoardStateMsg state =
      bbwire::decode_board_state(reply.payload, MsgType::kCommitOk);
  if (state.size == mirror_.size() + posts.size()) {
    // The common (and only private-board) case: the server log is exactly
    // the mirror plus this batch, so echo-applying the batch keeps the
    // mirror bit-identical to an in-process board. Replica boards must
    // echo the server's arrival-round assignment: after a catch-up pull
    // the mirror's last round can be ahead of this writer's declared
    // round, and the server bumped to max(declared, last + 1) too.
    const Round arrival = mirror_.mode() == Billboard::Mode::kReplica
                              ? std::max(round,
                                         mirror_.last_committed_round() + 1)
                              : round;
    mirror_.commit_round_from(arrival, posts);
  } else {
    // A shared board advanced under us; fetch the authoritative tail
    // (which embeds this batch in server order).
    pull_tail(state.size, state.last_round);
  }
}

void RemoteBillboard::reserve(std::size_t expected_posts) {
  // Fire-and-forget: the stream is ordered, so the server sizes its log
  // before any later commit lands. No reply keeps the hint free.
  out_.clear();
  bbwire::encode_reserve(out_, expected_posts);
  obs::BandwidthMeter::add_write(obs::IoChannel::kBillboardRpcSnapshot,
                                 out_.size() * 8);
  net::send_all(fd_.get(), out_);
  mirror_.reserve(expected_posts);
}

void RemoteBillboard::drain_one_ack() {
  const std::uint64_t expected = pending_acks_.front();
  pending_acks_.pop_front();
  const net::Frame reply = read_frame(obs::IoChannel::kBillboardRpcPost);
  if (frame_type(reply) != MsgType::kCommitOk) {
    unexpected_reply(reply, "commit_ok");
  }
  const bbwire::BoardStateMsg state =
      bbwire::decode_board_state(reply.payload, MsgType::kCommitOk);
  if (state.size != expected) {
    throw std::runtime_error(
        "billboard server " + peer_ + " acked a pipelined commit at log size " +
        std::to_string(state.size) + " where the mirror expected " +
        std::to_string(expected) +
        " (another writer on a private board, or a lost frame)");
  }
}

void RemoteBillboard::drain_acks() {
  while (!pending_acks_.empty()) {
    drain_one_ack();
  }
}

Count RemoteBillboard::votes_in_window(ObjectId object, Round begin,
                                       Round end) {
  const obs::ScopedTimer timer(*query_timer_);
  drain_acks();
  bbwire::WindowQueryMsg query;
  query.object = object.value();
  query.begin = begin;
  query.end = end;
  out_.clear();
  bbwire::encode_window_query(out_, query);
  const net::Frame reply = transact(obs::IoChannel::kBillboardRpcQuery);
  if (frame_type(reply) != MsgType::kWindowCount) {
    unexpected_reply(reply, "window_count");
  }
  return bbwire::decode_window_count(reply.payload).count;
}

void RemoteBillboard::votes_in_window_batch(std::span<const ObjectId> objects,
                                            Round begin, Round end,
                                            std::vector<Count>& out) {
  const obs::ScopedTimer timer(*query_timer_);
  drain_acks();
  out_.clear();
  bbwire::encode_window_batch(out_, begin, end, objects);
  const net::Frame reply = transact(obs::IoChannel::kBillboardRpcQuery);
  if (frame_type(reply) != MsgType::kWindowCounts) {
    unexpected_reply(reply, "window_counts");
  }
  bbwire::WindowCountsMsg counts = bbwire::decode_window_counts(reply.payload);
  if (counts.counts.size() != objects.size()) {
    throw std::runtime_error(
        "billboard server " + peer_ + " answered a window batch of " +
        std::to_string(objects.size()) + " objects with " +
        std::to_string(counts.counts.size()) + " counts");
  }
  out = std::move(counts.counts);
}

std::vector<Post> RemoteBillboard::snapshot() {
  const bbwire::BoardStateMsg state = stat();
  std::vector<Post> posts;
  posts.reserve(static_cast<std::size_t>(state.size));
  while (posts.size() < state.size) {
    bbwire::PullMsg pull;
    pull.begin = posts.size();
    pull.end = std::min<std::uint64_t>(state.size, pull.begin + kPullChunk);
    out_.clear();
    bbwire::encode_pull(out_, pull);
    const net::Frame reply = transact(obs::IoChannel::kBillboardRpcSnapshot);
    if (frame_type(reply) != MsgType::kPosts) {
      unexpected_reply(reply, "posts");
    }
    bbwire::PostsMsg batch = bbwire::decode_posts(
        reply.payload, mirror_.num_players(), mirror_.num_objects());
    if (batch.posts.empty()) {
      throw std::runtime_error("billboard server " + peer_ +
                               " returned an empty pull mid-snapshot");
    }
    posts.insert(posts.end(), batch.posts.begin(), batch.posts.end());
  }
  return posts;
}

bbwire::BoardStateMsg RemoteBillboard::stat() {
  drain_acks();
  out_.clear();
  bbwire::encode_stat(out_);
  const net::Frame reply = transact(obs::IoChannel::kBillboardRpcSnapshot);
  if (frame_type(reply) != MsgType::kStatOk) {
    unexpected_reply(reply, "stat_ok");
  }
  return bbwire::decode_board_state(reply.payload, MsgType::kStatOk);
}

void RemoteBillboard::pull_tail(std::uint64_t server_size,
                                Round server_last_round) {
  ACP_EXPECTS(mirror_.mode() == Billboard::Mode::kReplica);
  while (mirror_.size() < server_size) {
    bbwire::PullMsg pull;
    pull.begin = mirror_.size();
    pull.end = std::min<std::uint64_t>(server_size, pull.begin + kPullChunk);
    out_.clear();
    bbwire::encode_pull(out_, pull);
    const net::Frame reply = transact(obs::IoChannel::kBillboardRpcSnapshot);
    if (frame_type(reply) != MsgType::kPosts) {
      unexpected_reply(reply, "posts");
    }
    bbwire::PostsMsg batch = bbwire::decode_posts(
        reply.payload, mirror_.num_players(), mirror_.num_objects());
    if (batch.posts.empty()) {
      throw std::runtime_error("billboard server " + peer_ +
                               " returned an empty pull mid-catch-up");
    }
    pull_scratch_ = std::move(batch.posts);
    // Commit the tail at an arrival round that is (a) monotone for the
    // mirror and (b) >= every stamp in the batch (stamps never exceed the
    // server's last committed round).
    const Round arrival =
        std::max(server_last_round, mirror_.last_committed_round() + 1);
    mirror_.commit_round_from(arrival, pull_scratch_);
  }
}

net::Frame RemoteBillboard::transact(obs::IoChannel channel) {
  obs::BandwidthMeter::add_write(channel, out_.size() * 8);
  net::send_all(fd_.get(), out_);
  return read_frame(channel);
}

net::Frame RemoteBillboard::read_frame(obs::IoChannel channel) {
  for (;;) {
    if (std::optional<net::Frame> frame = assembler_.next()) {
      obs::BandwidthMeter::add_read(
          channel, (net::kFrameHeaderSize + frame->payload.size()) * 8);
      if (frame_type(*frame) == MsgType::kError) {
        const bbwire::ErrorMsg error = bbwire::decode_error(frame->payload);
        throw std::runtime_error("billboard server " + peer_ +
                                 " rejected the request: " + error.message);
      }
      return *frame;
    }
    const std::size_t got = net::recv_some(fd_.get(), recv_buf_);
    if (got == 0) {
      throw net::SocketError("billboard server " + peer_ +
                             " closed the connection mid-reply");
    }
    assembler_.append(std::span<const std::uint8_t>(recv_buf_.data(), got));
  }
}

void RemoteBillboard::unexpected_reply(net::Frame reply, const char* wanted) {
  throw std::runtime_error(
      "billboard server " + peer_ + " sent " +
      bbwire::msg_type_name(frame_type(reply)) + " where " + wanted +
      " was expected");
}

}  // namespace acp
