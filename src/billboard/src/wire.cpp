#include "acp/billboard/wire.hpp"

namespace acp::bbwire {

namespace {

using net::begin_frame;
using net::end_frame;
using net::PayloadReader;
using net::put_string;
using net::put_varint;
using net::put_varint_signed;

/// A post needs at least author(1) + round(1) + object(1) + value(8) +
/// flags(1) bytes; a declared count that cannot fit in the remaining
/// payload is a corrupt count field, rejected before any allocation.
constexpr std::uint64_t kMinPostBytes = 12;

std::uint64_t read_post_count(PayloadReader& reader) {
  const std::uint64_t count = reader.varint();
  if (count > reader.remaining() / kMinPostBytes) {
    reader.fail("post count " + std::to_string(count) +
                " cannot fit in a " + std::to_string(reader.remaining()) +
                "-byte payload");
  }
  return count;
}

std::vector<Post> read_posts(PayloadReader& reader, std::uint64_t count,
                             std::uint64_t num_players,
                             std::uint64_t num_objects) {
  std::vector<Post> posts;
  posts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    posts.push_back(decode_post(reader, num_players, num_objects));
  }
  return posts;
}

}  // namespace

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kOpen: return "open";
    case MsgType::kOpenOk: return "open_ok";
    case MsgType::kCommit: return "commit";
    case MsgType::kCommitOk: return "commit_ok";
    case MsgType::kPull: return "pull";
    case MsgType::kPosts: return "posts";
    case MsgType::kWindowQuery: return "window_query";
    case MsgType::kWindowCount: return "window_count";
    case MsgType::kWindowBatch: return "window_batch";
    case MsgType::kWindowCounts: return "window_counts";
    case MsgType::kReserve: return "reserve";
    case MsgType::kStat: return "stat";
    case MsgType::kStatOk: return "stat_ok";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

// -- Post codec -------------------------------------------------------------

void encode_post(std::vector<std::uint8_t>& out, const Post& post) {
  put_varint(out, post.author.value());
  put_varint_signed(out, post.round);
  put_varint(out, post.object.value());
  net::put_double(out, post.reported_value);
  out.push_back(post.positive ? 1 : 0);
}

Post decode_post(PayloadReader& reader, std::uint64_t num_players,
                 std::uint64_t num_objects) {
  Post post;
  const std::uint64_t author = reader.varint();
  if (author >= num_players) {
    reader.fail("post author " + std::to_string(author) +
                " out of range (board has " + std::to_string(num_players) +
                " players)");
  }
  post.author = PlayerId(static_cast<std::size_t>(author));
  post.round = reader.varint_signed();
  const std::uint64_t object = reader.varint();
  if (object >= num_objects) {
    reader.fail("post object " + std::to_string(object) +
                " out of range (board has " + std::to_string(num_objects) +
                " objects)");
  }
  post.object = ObjectId(static_cast<std::size_t>(object));
  post.reported_value = reader.f64();
  const std::uint8_t flags = reader.u8();
  if (flags > 1) {
    reader.fail("post flags byte " + std::to_string(flags) +
                " has unknown bits set (only bit 0 = positive is defined)");
  }
  post.positive = flags != 0;
  return post;
}

// -- Encoders ---------------------------------------------------------------

void encode_open(std::vector<std::uint8_t>& out, const OpenMsg& msg) {
  const std::size_t at = begin_frame(out, static_cast<std::uint8_t>(MsgType::kOpen));
  out.push_back(msg.mode);
  put_varint(out, msg.num_players);
  put_varint(out, msg.num_objects);
  put_string(out, msg.board);
  end_frame(out, at);
}

void encode_board_state(std::vector<std::uint8_t>& out, MsgType type,
                        const BoardStateMsg& msg) {
  const std::size_t at = begin_frame(out, static_cast<std::uint8_t>(type));
  put_varint(out, msg.size);
  put_varint_signed(out, msg.last_round);
  end_frame(out, at);
}

void encode_commit(std::vector<std::uint8_t>& out, Round round,
                   std::span<const Post> posts) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kCommit));
  put_varint_signed(out, round);
  put_varint(out, posts.size());
  for (const Post& post : posts) encode_post(out, post);
  end_frame(out, at);
}

void encode_pull(std::vector<std::uint8_t>& out, const PullMsg& msg) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kPull));
  put_varint(out, msg.begin);
  put_varint(out, msg.end);
  end_frame(out, at);
}

void encode_posts(std::vector<std::uint8_t>& out, std::span<const Post> posts) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kPosts));
  put_varint(out, posts.size());
  for (const Post& post : posts) encode_post(out, post);
  end_frame(out, at);
}

void encode_window_query(std::vector<std::uint8_t>& out,
                         const WindowQueryMsg& msg) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kWindowQuery));
  put_varint(out, msg.object);
  put_varint_signed(out, msg.begin);
  put_varint_signed(out, msg.end);
  end_frame(out, at);
}

void encode_window_count(std::vector<std::uint8_t>& out, Count count) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kWindowCount));
  put_varint_signed(out, count);
  end_frame(out, at);
}

void encode_window_batch(std::vector<std::uint8_t>& out, Round begin, Round end,
                         std::span<const ObjectId> objects) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kWindowBatch));
  put_varint_signed(out, begin);
  put_varint_signed(out, end);
  put_varint(out, objects.size());
  for (const ObjectId object : objects) put_varint(out, object.value());
  end_frame(out, at);
}

void encode_window_counts(std::vector<std::uint8_t>& out,
                          std::span<const Count> counts) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kWindowCounts));
  put_varint(out, counts.size());
  for (const Count count : counts) put_varint_signed(out, count);
  end_frame(out, at);
}

void encode_reserve(std::vector<std::uint8_t>& out, std::uint64_t expected) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kReserve));
  put_varint(out, expected);
  end_frame(out, at);
}

void encode_stat(std::vector<std::uint8_t>& out) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kStat));
  end_frame(out, at);
}

void encode_error(std::vector<std::uint8_t>& out, std::string_view message) {
  const std::size_t at =
      begin_frame(out, static_cast<std::uint8_t>(MsgType::kError));
  put_string(out, message);
  end_frame(out, at);
}

// -- Decoders ---------------------------------------------------------------

OpenMsg decode_open(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "open");
  OpenMsg msg;
  msg.mode = reader.u8();
  if (msg.mode > 1) {
    reader.fail("board mode " + std::to_string(msg.mode) +
                " unknown (0 = authoritative, 1 = replica)");
  }
  msg.num_players = reader.varint();
  msg.num_objects = reader.varint();
  if (msg.num_players == 0 || msg.num_objects == 0) {
    reader.fail("board dimensions must be positive (got " +
                std::to_string(msg.num_players) + " players, " +
                std::to_string(msg.num_objects) + " objects)");
  }
  msg.board = reader.string(kMaxBoardNameLen);
  reader.expect_done();
  return msg;
}

BoardStateMsg decode_board_state(std::span<const std::uint8_t> payload,
                                 MsgType type) {
  PayloadReader reader(payload, msg_type_name(type));
  BoardStateMsg msg;
  msg.size = reader.varint();
  msg.last_round = reader.varint_signed();
  reader.expect_done();
  return msg;
}

CommitMsg decode_commit(std::span<const std::uint8_t> payload,
                        std::uint64_t num_players, std::uint64_t num_objects) {
  PayloadReader reader(payload, "commit");
  CommitMsg msg;
  msg.round = reader.varint_signed();
  const std::uint64_t count = read_post_count(reader);
  msg.posts = read_posts(reader, count, num_players, num_objects);
  reader.expect_done();
  return msg;
}

PullMsg decode_pull(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "pull");
  PullMsg msg;
  msg.begin = reader.varint();
  msg.end = reader.varint();
  if (msg.begin > msg.end) {
    reader.fail("range [" + std::to_string(msg.begin) + ", " +
                std::to_string(msg.end) + ") is inverted");
  }
  reader.expect_done();
  return msg;
}

PostsMsg decode_posts(std::span<const std::uint8_t> payload,
                      std::uint64_t num_players, std::uint64_t num_objects) {
  PayloadReader reader(payload, "posts");
  PostsMsg msg;
  const std::uint64_t count = read_post_count(reader);
  msg.posts = read_posts(reader, count, num_players, num_objects);
  reader.expect_done();
  return msg;
}

WindowQueryMsg decode_window_query(std::span<const std::uint8_t> payload,
                                   std::uint64_t num_objects) {
  PayloadReader reader(payload, "window_query");
  WindowQueryMsg msg;
  msg.object = reader.varint();
  if (msg.object >= num_objects) {
    reader.fail("object " + std::to_string(msg.object) +
                " out of range (board has " + std::to_string(num_objects) +
                " objects)");
  }
  msg.begin = reader.varint_signed();
  msg.end = reader.varint_signed();
  reader.expect_done();
  return msg;
}

WindowCountMsg decode_window_count(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "window_count");
  WindowCountMsg msg;
  msg.count = reader.varint_signed();
  reader.expect_done();
  return msg;
}

WindowBatchMsg decode_window_batch(std::span<const std::uint8_t> payload,
                                   std::uint64_t num_objects) {
  PayloadReader reader(payload, "window_batch");
  WindowBatchMsg msg;
  msg.begin = reader.varint_signed();
  msg.end = reader.varint_signed();
  const std::uint64_t count = reader.varint();
  if (count > reader.remaining()) {  // each object id is >= 1 byte
    reader.fail("object count " + std::to_string(count) +
                " cannot fit in a " + std::to_string(reader.remaining()) +
                "-byte payload");
  }
  msg.objects.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t object = reader.varint();
    if (object >= num_objects) {
      reader.fail("object " + std::to_string(object) +
                  " out of range (board has " + std::to_string(num_objects) +
                  " objects)");
    }
    msg.objects.push_back(object);
  }
  reader.expect_done();
  return msg;
}

WindowCountsMsg decode_window_counts(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "window_counts");
  WindowCountsMsg msg;
  const std::uint64_t count = reader.varint();
  if (count > reader.remaining()) {
    reader.fail("count " + std::to_string(count) + " cannot fit in a " +
                std::to_string(reader.remaining()) + "-byte payload");
  }
  msg.counts.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    msg.counts.push_back(reader.varint_signed());
  }
  reader.expect_done();
  return msg;
}

ReserveMsg decode_reserve(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "reserve");
  ReserveMsg msg;
  msg.expected_posts = reader.varint();
  reader.expect_done();
  return msg;
}

ErrorMsg decode_error(std::span<const std::uint8_t> payload) {
  PayloadReader reader(payload, "error");
  ErrorMsg msg;
  msg.message = reader.string(4096);
  reader.expect_done();
  return msg;
}

}  // namespace acp::bbwire
