#include "acp/billboard/vote_ledger.hpp"

#include <algorithm>

#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

VoteLedger::VoteLedger(VotePolicy policy, std::size_t num_players,
                       std::size_t num_objects, std::size_t votes_per_player)
    : policy_(policy),
      num_players_(num_players),
      num_objects_(num_objects),
      votes_per_player_(votes_per_player),
      player_votes_(num_players),
      player_best_value_(num_players, 0.0),
      player_has_report_(num_players, false),
      object_event_rounds_(num_objects),
      object_voters_(num_objects) {
  ACP_EXPECTS(num_players_ >= 1);
  ACP_EXPECTS(num_objects_ >= 1);
  ACP_EXPECTS(votes_per_player_ >= 1);
  ACP_EXPECTS(policy_ != VotePolicy::kHighestReported ||
              votes_per_player_ == 1);
}

void VoteLedger::ingest(const Billboard& billboard) {
  ACP_OBS_TIMED_SCOPE("ledger.ingest");
  ACP_EXPECTS(billboard.num_players() == num_players_);
  ACP_EXPECTS(billboard.num_objects() == num_objects_);
  const auto& posts = billboard.posts();
  for (; posts_consumed_ < posts.size(); ++posts_consumed_) {
    const Post& post = posts[posts_consumed_];
    const std::size_t p = post.author.value();
    switch (policy_) {
      case VotePolicy::kFirstPositive:
      case VotePolicy::kFirstNegative: {
        const bool wanted_direction =
            policy_ == VotePolicy::kFirstPositive ? post.positive
                                                  : !post.positive;
        if (!wanted_direction) break;
        auto& votes = player_votes_[p];
        if (votes.size() >= votes_per_player_) break;
        if (std::find(votes.begin(), votes.end(), post.object) != votes.end())
          break;  // a repeat report on the same object is not a new vote
        votes.push_back(post.object);
        record_vote(post.author, post.object, post.round);
        break;
      }
      case VotePolicy::kHighestReported: {
        // Every report counts; the vote is the best-so-far object and each
        // strict improvement is a fresh vote event (§5.3: the vote of a
        // player can change as the execution progresses).
        if (player_has_report_[p] &&
            post.reported_value <= player_best_value_[p])
          break;
        player_has_report_[p] = true;
        player_best_value_[p] = post.reported_value;
        player_votes_[p].assign(1, post.object);
        record_vote(post.author, post.object, post.round);
        break;
      }
    }
  }
}

void VoteLedger::record_vote(PlayerId voter, ObjectId object, Round round) {
  // The authoritative engines produce nondecreasing rounds (append); a
  // gossip replica may deliver an older-stamped post late, in which case
  // the event is inserted in round order so window queries stay correct.
  if (events_.empty() || round >= events_.back().round) {
    events_.push_back(VoteEvent{voter, object, round});
    event_rounds_.push_back(round);
  } else {
    const auto at = std::upper_bound(event_rounds_.begin(),
                                     event_rounds_.end(), round) -
                    event_rounds_.begin();
    events_.insert(events_.begin() + at, VoteEvent{voter, object, round});
    event_rounds_.insert(event_rounds_.begin() + at, round);
  }
  auto& rounds = object_event_rounds_[object.value()];
  if (rounds.empty() || round >= rounds.back()) {
    rounds.push_back(round);
  } else {
    rounds.insert(std::upper_bound(rounds.begin(), rounds.end(), round),
                  round);
  }
  auto& voters = object_voters_[object.value()];
  if (std::find(voters.begin(), voters.end(), voter) == voters.end()) {
    voters.push_back(voter);
  }
}

const std::vector<PlayerId>& VoteLedger::voters_of(ObjectId object) const {
  ACP_EXPECTS(object.value() < num_objects_);
  return object_voters_[object.value()];
}

std::span<const ObjectId> VoteLedger::votes_of(PlayerId p) const {
  ACP_EXPECTS(p.value() < num_players_);
  return player_votes_[p.value()];
}

std::optional<ObjectId> VoteLedger::current_vote(PlayerId p) const {
  const auto votes = votes_of(p);
  if (votes.empty()) return std::nullopt;
  return votes.front();
}

Count VoteLedger::votes_in_window(ObjectId object, Round begin,
                                  Round end) const {
  ACP_EXPECTS(object.value() < num_objects_);
  ACP_EXPECTS(begin <= end);
  const auto& rounds = object_event_rounds_[object.value()];
  const auto lo = std::lower_bound(rounds.begin(), rounds.end(), begin);
  const auto hi = std::lower_bound(lo, rounds.end(), end);
  return static_cast<Count>(hi - lo);
}

Count VoteLedger::total_votes(ObjectId object) const {
  ACP_EXPECTS(object.value() < num_objects_);
  return static_cast<Count>(object_event_rounds_[object.value()].size());
}

std::vector<ObjectId> VoteLedger::objects_with_votes_in_window(
    Round begin, Round end, Count min_count) const {
  ACP_OBS_TIMED_SCOPE("ledger.window_query");
  ACP_EXPECTS(begin <= end);
  ACP_EXPECTS(min_count >= 1);
  // Walk only the events inside the window (cheap: windows are a few rounds
  // and each player votes O(f) times total under kFirstPositive).
  const auto lo = std::lower_bound(event_rounds_.begin(), event_rounds_.end(),
                                   begin) -
                  event_rounds_.begin();
  const auto hi = std::lower_bound(event_rounds_.begin() +
                                       static_cast<std::ptrdiff_t>(lo),
                                   event_rounds_.end(), end) -
                  event_rounds_.begin();
  std::vector<ObjectId> touched;
  std::vector<Count> counts;  // sparse via touched list
  std::vector<Count> scratch(num_objects_, 0);
  for (auto idx = static_cast<std::size_t>(lo);
       idx < static_cast<std::size_t>(hi); ++idx) {
    const ObjectId obj = events_[idx].object;
    if (scratch[obj.value()] == 0) touched.push_back(obj);
    ++scratch[obj.value()];
  }
  std::vector<ObjectId> result;
  for (ObjectId obj : touched) {
    if (scratch[obj.value()] >= min_count) result.push_back(obj);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ObjectId> VoteLedger::objects_with_any_vote() const {
  std::vector<ObjectId> result;
  for (std::size_t i = 0; i < num_objects_; ++i) {
    if (!object_event_rounds_[i].empty()) result.push_back(ObjectId{i});
  }
  return result;
}

}  // namespace acp
