#include "acp/billboard/vote_ledger.hpp"

#include <algorithm>

#include "acp/obs/bandwidth.hpp"
#include "acp/obs/timer.hpp"
#include "acp/util/contracts.hpp"

namespace acp {

VoteLedger::VoteLedger(VotePolicy policy, std::size_t num_players,
                       std::size_t num_objects, std::size_t votes_per_player)
    : policy_(policy),
      num_players_(num_players),
      num_objects_(num_objects),
      votes_per_player_(votes_per_player),
      player_votes_(num_players),
      player_best_value_(num_players, 0.0),
      player_has_report_(num_players, false),
      object_event_rounds_(num_objects),
      object_voters_(num_objects),
      object_sorted_prefix_(num_objects, 0) {
  ACP_EXPECTS(num_players_ >= 1);
  ACP_EXPECTS(num_objects_ >= 1);
  ACP_EXPECTS(votes_per_player_ >= 1);
  ACP_EXPECTS(policy_ != VotePolicy::kHighestReported ||
              votes_per_player_ == 1);
}

void VoteLedger::ingest(const Billboard& billboard) {
  ACP_OBS_TIMED_SCOPE("ledger.ingest");
  ACP_EXPECTS(billboard.num_players() == num_players_);
  ACP_EXPECTS(billboard.num_objects() == num_objects_);
  const auto& posts = billboard.posts();
  if (obs::BandwidthMeter::enabled() && posts.size() > posts_consumed_) {
    // Every not-yet-consumed post crosses the board->ledger boundary once.
    obs::BandwidthMeter::add_read(
        obs::IoChannel::kLedgerIngest,
        (posts.size() - posts_consumed_) * obs::kPostWireBits);
  }
  for (; posts_consumed_ < posts.size(); ++posts_consumed_) {
    const Post& post = posts[posts_consumed_];
    const std::size_t p = post.author.value();
    switch (policy_) {
      case VotePolicy::kFirstPositive:
      case VotePolicy::kFirstNegative: {
        const bool wanted_direction =
            policy_ == VotePolicy::kFirstPositive ? post.positive
                                                  : !post.positive;
        if (!wanted_direction) break;
        auto& votes = player_votes_[p];
        if (votes.size() >= votes_per_player_) break;
        if (std::find(votes.begin(), votes.end(), post.object) != votes.end())
          break;  // a repeat report on the same object is not a new vote
        votes.push_back(post.object);
        record_vote(post.author, post.object, post.round);
        break;
      }
      case VotePolicy::kHighestReported: {
        // Every report counts; the vote is the best-so-far object and each
        // strict improvement is a fresh vote event (§5.3: the vote of a
        // player can change as the execution progresses).
        if (player_has_report_[p] &&
            post.reported_value <= player_best_value_[p])
          break;
        player_has_report_[p] = true;
        player_best_value_[p] = post.reported_value;
        player_votes_[p].assign(1, post.object);
        record_vote(post.author, post.object, post.round);
        break;
      }
    }
  }
  flush_pending();
}

void VoteLedger::record_vote(PlayerId voter, ObjectId object, Round round) {
  // The authoritative engines produce nondecreasing rounds (append); a
  // gossip replica may deliver an older-stamped post late. Late events go
  // to a pending batch that flush_pending() merges once per ingest —
  // amortized O(log) per post instead of an O(events) mid-vector insert.
  if (events_.empty() || round >= events_.back().round) {
    events_.push_back(VoteEvent{voter, object, round});
    event_rounds_.push_back(round);
  } else {
    pending_events_.push_back(VoteEvent{voter, object, round});
  }
  auto& rounds = object_event_rounds_[object.value()];
  auto& sorted_prefix = object_sorted_prefix_[object.value()];
  if (sorted_prefix == rounds.size() &&
      (rounds.empty() || round >= rounds.back())) {
    rounds.push_back(round);
    ++sorted_prefix;
  } else {
    // Out of order (or the tail already is): append now, merge at flush.
    if (sorted_prefix == rounds.size()) {
      dirty_objects_.push_back(object.value());
    }
    rounds.push_back(round);
  }
  auto& voters = object_voters_[object.value()];
  if (std::find(voters.begin(), voters.end(), voter) == voters.end()) {
    voters.push_back(voter);
  }
}

void VoteLedger::flush_pending() {
  if (!pending_events_.empty()) {
    // Stable by round: within the batch, arrival order breaks ties, and
    // inplace_merge keeps already-logged events ahead of batched ones at
    // equal rounds — the same placement the old upper_bound insert gave.
    std::stable_sort(pending_events_.begin(), pending_events_.end(),
                     [](const VoteEvent& a, const VoteEvent& b) {
                       return a.round < b.round;
                     });
    const auto mid =
        static_cast<std::ptrdiff_t>(events_.size());
    events_.insert(events_.end(), pending_events_.begin(),
                   pending_events_.end());
    std::inplace_merge(events_.begin(), events_.begin() + mid, events_.end(),
                       [](const VoteEvent& a, const VoteEvent& b) {
                         return a.round < b.round;
                       });
    pending_events_.clear();
    event_rounds_.resize(events_.size());
    std::transform(events_.begin(), events_.end(), event_rounds_.begin(),
                   [](const VoteEvent& e) { return e.round; });
  }
  for (const std::size_t obj : dirty_objects_) {
    auto& rounds = object_event_rounds_[obj];
    const auto mid = rounds.begin() +
                     static_cast<std::ptrdiff_t>(object_sorted_prefix_[obj]);
    std::sort(mid, rounds.end());
    std::inplace_merge(rounds.begin(), mid, rounds.end());
    object_sorted_prefix_[obj] = rounds.size();
  }
  dirty_objects_.clear();
}

const std::vector<PlayerId>& VoteLedger::voters_of(ObjectId object) const {
  ACP_EXPECTS(object.value() < num_objects_);
  return object_voters_[object.value()];
}

std::span<const ObjectId> VoteLedger::votes_of(PlayerId p) const {
  ACP_EXPECTS(p.value() < num_players_);
  return player_votes_[p.value()];
}

std::optional<ObjectId> VoteLedger::current_vote(PlayerId p) const {
  const auto votes = votes_of(p);
  if (votes.empty()) return std::nullopt;
  return votes.front();
}

Count VoteLedger::votes_in_window(ObjectId object, Round begin,
                                  Round end) const {
  ACP_EXPECTS(object.value() < num_objects_);
  ACP_EXPECTS(begin <= end);
  const auto& rounds = object_event_rounds_[object.value()];
  const auto lo = std::lower_bound(rounds.begin(), rounds.end(), begin);
  const auto hi = std::lower_bound(lo, rounds.end(), end);
  if (obs::BandwidthMeter::enabled() && hi != lo) {
    obs::BandwidthMeter::add_read(
        obs::IoChannel::kWindowQuery,
        static_cast<std::uint64_t>(hi - lo) * obs::kVoteEventWireBits);
  }
  return static_cast<Count>(hi - lo);
}

void VoteLedger::votes_in_window_batch(std::span<const ObjectId> objects,
                                       Round begin, Round end,
                                       std::vector<Count>& out) const {
  ACP_OBS_TIMED_SCOPE("ledger.window_query");
  ACP_EXPECTS(begin <= end);
  out.assign(objects.size(), 0);
  if (objects.empty()) return;
  // Same epoch-stamped sweep as objects_with_votes_in_window: count every
  // event inside the window once, then read off the queried objects.
  const auto lo = std::lower_bound(event_rounds_.begin(), event_rounds_.end(),
                                   begin) -
                  event_rounds_.begin();
  const auto hi = std::lower_bound(event_rounds_.begin() +
                                       static_cast<std::ptrdiff_t>(lo),
                                   event_rounds_.end(), end) -
                  event_rounds_.begin();
  if (obs::BandwidthMeter::enabled() && hi > lo) {
    obs::BandwidthMeter::add_read(
        obs::IoChannel::kWindowQuery,
        static_cast<std::uint64_t>(hi - lo) * obs::kVoteEventWireBits);
  }
  if (window_stamp_.size() != num_objects_) {
    window_stamp_.assign(num_objects_, 0);
    window_counts_.assign(num_objects_, 0);
  }
  const std::uint64_t epoch = ++window_epoch_;
  for (auto idx = static_cast<std::size_t>(lo);
       idx < static_cast<std::size_t>(hi); ++idx) {
    const ObjectId obj = events_[idx].object;
    if (window_stamp_[obj.value()] != epoch) {
      window_stamp_[obj.value()] = epoch;
      window_counts_[obj.value()] = 0;
    }
    ++window_counts_[obj.value()];
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    ACP_EXPECTS(objects[i].value() < num_objects_);
    if (window_stamp_[objects[i].value()] == epoch) {
      out[i] = window_counts_[objects[i].value()];
    }
  }
}

Count VoteLedger::total_votes(ObjectId object) const {
  ACP_EXPECTS(object.value() < num_objects_);
  return static_cast<Count>(object_event_rounds_[object.value()].size());
}

std::vector<ObjectId> VoteLedger::objects_with_votes_in_window(
    Round begin, Round end, Count min_count) const {
  ACP_OBS_TIMED_SCOPE("ledger.window_query");
  ACP_EXPECTS(begin <= end);
  ACP_EXPECTS(min_count >= 1);
  // Walk only the events inside the window (cheap: windows are a few rounds
  // and each player votes O(f) times total under kFirstPositive). The
  // per-object counters are generation-stamped members: no O(m) allocation
  // or zeroing per call, only the touched entries are ever reset.
  const auto lo = std::lower_bound(event_rounds_.begin(), event_rounds_.end(),
                                   begin) -
                  event_rounds_.begin();
  const auto hi = std::lower_bound(event_rounds_.begin() +
                                       static_cast<std::ptrdiff_t>(lo),
                                   event_rounds_.end(), end) -
                  event_rounds_.begin();
  if (obs::BandwidthMeter::enabled() && hi > lo) {
    obs::BandwidthMeter::add_read(
        obs::IoChannel::kWindowQuery,
        static_cast<std::uint64_t>(hi - lo) * obs::kVoteEventWireBits);
  }
  if (window_stamp_.size() != num_objects_) {
    window_stamp_.assign(num_objects_, 0);
    window_counts_.assign(num_objects_, 0);
  }
  const std::uint64_t epoch = ++window_epoch_;
  window_touched_.clear();
  for (auto idx = static_cast<std::size_t>(lo);
       idx < static_cast<std::size_t>(hi); ++idx) {
    const ObjectId obj = events_[idx].object;
    if (window_stamp_[obj.value()] != epoch) {
      window_stamp_[obj.value()] = epoch;
      window_counts_[obj.value()] = 0;
      window_touched_.push_back(obj);
    }
    ++window_counts_[obj.value()];
  }
  std::vector<ObjectId> result;
  for (ObjectId obj : window_touched_) {
    if (window_counts_[obj.value()] >= min_count) result.push_back(obj);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<ObjectId> VoteLedger::objects_with_any_vote() const {
  std::vector<ObjectId> result;
  for (std::size_t i = 0; i < num_objects_; ++i) {
    if (!object_event_rounds_[i].empty()) result.push_back(ObjectId{i});
  }
  return result;
}

}  // namespace acp
