#include "acp/billboard/seq_tracker.hpp"

#include <algorithm>

namespace acp {

std::uint64_t SeqTracker::mix(std::uint32_t author, Seq seq) noexcept {
  // splitmix64 finalizer over the packed (author, seq) id: strong enough
  // that xor-aggregation over distinct ids collides only adversarially.
  std::uint64_t x =
      (static_cast<std::uint64_t>(author) << 32) | static_cast<std::uint64_t>(seq);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::size_t SeqTracker::find(std::uint32_t author) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), author,
      [](const Entry& e, std::uint32_t a) { return e.author < a; });
  if (it == entries_.end() || it->author != author) return entries_.size();
  return static_cast<std::size_t>(it - entries_.begin());
}

SeqTracker::Seq SeqTracker::high_water(std::uint32_t author) const noexcept {
  const std::size_t at = find(author);
  return at == entries_.size() ? 0 : entries_[at].high_water;
}

SeqTracker::Offer SeqTracker::offer(std::uint32_t author, Seq seq,
                                    Payload payload,
                                    std::vector<Payload>& accepted) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), author,
      [](const Entry& e, std::uint32_t a) { return e.author < a; });
  if (it == entries_.end() || it->author != author) {
    it = entries_.insert(it, Entry{author, 0});
  }
  if (seq < it->high_water) return Offer::kDuplicate;
  if (seq > it->high_water) {
    for (const Parked& p : parked_) {
      if (p.author == author && p.seq == seq) return Offer::kDuplicate;
    }
    parked_.push_back(Parked{author, seq, payload});
    return Offer::kParked;
  }

  // Extend the contiguous prefix, then drain any parked successors it
  // unlocked. Each drained post may unlock the next, so loop to fixpoint;
  // the parking lot is tiny (gaps come only from lost or out-of-order
  // Byzantine injections), so the linear rescans are cheap.
  const auto accept_one = [&](Seq s, Payload pay) {
    it->high_water = s + 1;
    checksum_ ^= mix(author, s);
    ++count_;
    accepted.push_back(pay);
  };
  accept_one(seq, payload);
  bool drained = true;
  while (drained && !parked_.empty()) {
    drained = false;
    for (std::size_t i = 0; i < parked_.size(); ++i) {
      if (parked_[i].author == author && parked_[i].seq == it->high_water) {
        accept_one(parked_[i].seq, parked_[i].payload);
        parked_[i] = parked_.back();
        parked_.pop_back();
        drained = true;
        break;
      }
    }
  }
  return Offer::kAccepted;
}

bool SeqTracker::offer_range(std::uint32_t author, Seq first,
                             std::span<const Payload> payloads,
                             std::vector<Payload>& accepted) {
  if (payloads.empty()) return false;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), author,
      [](const Entry& e, std::uint32_t a) { return e.author < a; });
  if (it == entries_.end() || it->author != author) {
    it = entries_.insert(it, Entry{author, 0});
  }
  const Seq end = first + static_cast<Seq>(payloads.size());
  if (end <= it->high_water) return false;  // whole range already held
  if (first > it->high_water) {
    // Range starts ahead of the prefix. Deltas normally start at the
    // receiver's advertised high-water mark, so this only happens when a
    // concurrent contact regressed nothing but the advertisement was
    // stale; fall back to per-post parking.
    bool advanced = false;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      advanced |= offer(author, first + static_cast<Seq>(i), payloads[i],
                        accepted) == Offer::kAccepted;
    }
    return advanced;
  }

  // first <= high_water < end: bulk-accept the unseen suffix.
  for (Seq s = it->high_water; s < end; ++s) {
    checksum_ ^= mix(author, s);
    ++count_;
    accepted.push_back(payloads[s - first]);
  }
  it->high_water = end;

  // Drain parked successors, and purge parked posts the bulk accept
  // jumped over (they are duplicates now). Loop to fixpoint: each drain
  // may unlock the next parked seq.
  bool progress = true;
  while (progress && !parked_.empty()) {
    progress = false;
    for (std::size_t i = 0; i < parked_.size();) {
      if (parked_[i].author != author || parked_[i].seq > it->high_water) {
        ++i;
        continue;
      }
      if (parked_[i].seq == it->high_water) {
        checksum_ ^= mix(author, parked_[i].seq);
        ++count_;
        accepted.push_back(parked_[i].payload);
        ++it->high_water;
      }
      parked_[i] = parked_.back();
      parked_.pop_back();
      progress = true;
    }
  }
  return true;
}

}  // namespace acp
