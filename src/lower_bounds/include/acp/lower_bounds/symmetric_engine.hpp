// Execution driver for the Theorem 2 instance family.
//
// All n+1 players — honest and dishonest alike — run the *same* protocol
// code; the only difference is the value function their probes return
// (S^j vs. S), exactly as in the proof, where "the dishonest players follow
// the protocol, except that the object values they report are the values
// dictated by the adversarial strategy". Because every player runs the
// shared protocol instance, the synchronized phase machinery applies
// unchanged.
//
// The quantity of interest is the number of probes player 0 (always
// honest) performs before it probes a truly good object.
#pragma once

#include <cstdint>

#include "acp/engine/protocol.hpp"
#include "acp/lower_bounds/symmetric_instance.hpp"

namespace acp {

struct SymmetricRunConfig {
  Round max_rounds = 100000;
  std::uint64_t seed = 1;
};

struct SymmetricRunResult {
  /// Probes player 0 executed before (and including) its first truly good
  /// probe; equals its cost in the unit-cost model.
  Count player0_probes = 0;
  bool player0_done = false;
  Round rounds_executed = 0;
};

/// Run `protocol` (freshly constructed) over the instance.
[[nodiscard]] SymmetricRunResult run_symmetric(
    const SymmetricInstance& instance, Protocol& protocol,
    const SymmetricRunConfig& config);

}  // namespace acp
