// The Theorem 2 instance family — complete symmetry between friends and
// foes.
//
// Players 1..n are partitioned into 1/alpha groups P_1..P_{1/alpha} of size
// alpha*n; objects into 1/beta groups O_1..O_{1/beta} of size beta*m.
// Player 0 is always honest. Every player j in P_k *perceives* (and
// reports) value 1 exactly for the objects of O_k, in every instance. In
// instance k (k = 1..B, B = min{1/alpha, 1/beta}), the truth is that O_k
// is good — so the players of P_k happen to be honest and everyone else is
// a liar, yet all groups look identical from player 0's seat. Groups
// P_{B+1}.. never report anything (as in the proof).
//
// Any algorithm must, in expectation over k, probe ~B/2 group
// representatives before hitting the true good group.
#pragma once

#include <cstddef>

#include "acp/util/contracts.hpp"
#include "acp/util/types.hpp"

namespace acp {

struct SymmetricInstanceParams {
  std::size_t player_groups = 4;     // 1/alpha
  std::size_t players_per_group = 8; // alpha * n
  std::size_t object_groups = 4;     // 1/beta
  std::size_t objects_per_group = 8; // beta * m
};

class SymmetricInstance {
 public:
  /// `good_group` is the k of instance I_k, in [1, B].
  SymmetricInstance(const SymmetricInstanceParams& params,
                    std::size_t good_group);

  /// Total players including player 0.
  [[nodiscard]] std::size_t num_players() const noexcept {
    return params_.player_groups * params_.players_per_group + 1;
  }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return params_.object_groups * params_.objects_per_group;
  }
  /// B = min{1/alpha, 1/beta}: the number of candidate instances.
  [[nodiscard]] std::size_t num_instances() const noexcept {
    return std::min(params_.player_groups, params_.object_groups);
  }
  [[nodiscard]] std::size_t good_group() const noexcept { return good_group_; }

  [[nodiscard]] double alpha() const noexcept {
    return 1.0 / static_cast<double>(params_.player_groups);
  }
  [[nodiscard]] double beta() const noexcept {
    return 1.0 / static_cast<double>(params_.object_groups);
  }

  /// Player group of j >= 1, in [1, player_groups]. Player 0 has no group.
  [[nodiscard]] std::size_t player_group(PlayerId j) const;
  /// Object group of i, in [1, object_groups].
  [[nodiscard]] std::size_t object_group(ObjectId i) const;

  /// S^j(i): what player j perceives (and would report) for object i.
  /// Player 0 perceives the truth.
  [[nodiscard]] double perceived_value(PlayerId j, ObjectId i) const;

  /// S(i): the ground truth of instance I_{good_group}.
  [[nodiscard]] bool truly_good(ObjectId i) const;

  /// True for players of the mute groups P_{B+1}.. (they follow the
  /// protocol but never post, as in the proof).
  [[nodiscard]] bool is_mute(PlayerId j) const;

  /// Ground-truth honesty in instance I_{good_group}: player 0 and P_k.
  [[nodiscard]] bool is_honest(PlayerId j) const;

 private:
  SymmetricInstanceParams params_;
  std::size_t good_group_;
};

}  // namespace acp
