#include "acp/lower_bounds/symmetric_engine.hpp"

#include <vector>

#include "acp/billboard/billboard.hpp"
#include "acp/rng/rng.hpp"
#include "acp/util/contracts.hpp"
#include "acp/world/world.hpp"

namespace acp {

SymmetricRunResult run_symmetric(const SymmetricInstance& instance,
                                 Protocol& protocol,
                                 const SymmetricRunConfig& config) {
  ACP_EXPECTS(config.max_rounds > 0);

  const std::size_t n = instance.num_players();
  const std::size_t m = instance.num_objects();

  // Ground-truth world of instance I_k; the protocol only sees its public
  // view (m, beta, threshold, unit costs).
  std::vector<double> values(m);
  std::vector<bool> good(m);
  for (std::size_t i = 0; i < m; ++i) {
    good[i] = instance.truly_good(ObjectId{i});
    values[i] = good[i] ? 1.0 : 0.0;
  }
  const World world(std::move(values), std::vector<double>(m, 1.0),
                    std::move(good), GoodnessModel::kLocalTesting, 0.5);

  Billboard billboard(n, m);
  protocol.initialize(WorldView(world), n);

  std::vector<Rng> player_rng;
  player_rng.reserve(n);
  for (std::size_t p = 0; p < n; ++p) {
    player_rng.push_back(derive_stream(config.seed, p));
  }

  SymmetricRunResult result;
  std::vector<bool> halted(n, false);
  std::vector<Post> round_posts;

  Round round = 0;
  for (; round < config.max_rounds && !result.player0_done; ++round) {
    protocol.on_round_begin(round, billboard);
    round_posts.clear();

    for (std::size_t pv = 0; pv < n; ++pv) {
      if (halted[pv]) continue;
      const PlayerId p{pv};
      const auto choice = protocol.choose_probe(p, round, player_rng[pv]);
      if (!choice.has_value()) continue;
      const ObjectId object = *choice;

      // The defining trick: probe outcomes go through the player's own
      // perception function S^j.
      const double perceived = instance.perceived_value(p, object);
      const bool perceived_good = perceived >= 0.5;

      if (pv == 0) {
        ++result.player0_probes;
        if (instance.truly_good(object)) result.player0_done = true;
      }

      const StepOutcome out = protocol.on_probe_result(
          p, round, object, perceived, /*cost=*/1.0, perceived_good,
          player_rng[pv]);
      if (out.post.has_value() && !instance.is_mute(p)) {
        round_posts.push_back(Post{p, round, out.post->object,
                                   out.post->reported_value,
                                   out.post->positive});
      }
      if (out.halt) halted[pv] = true;
    }

    billboard.commit_round(round, std::move(round_posts));
    round_posts = {};
  }

  result.rounds_executed = round;
  return result;
}

}  // namespace acp
