#include "acp/lower_bounds/symmetric_instance.hpp"

namespace acp {

SymmetricInstance::SymmetricInstance(const SymmetricInstanceParams& params,
                                     std::size_t good_group)
    : params_(params), good_group_(good_group) {
  ACP_EXPECTS(params_.player_groups >= 1);
  ACP_EXPECTS(params_.players_per_group >= 1);
  ACP_EXPECTS(params_.object_groups >= 1);
  ACP_EXPECTS(params_.objects_per_group >= 1);
  ACP_EXPECTS(good_group_ >= 1 && good_group_ <= num_instances());
}

std::size_t SymmetricInstance::player_group(PlayerId j) const {
  ACP_EXPECTS(j.value() >= 1 && j.value() < num_players());
  return (j.value() - 1) / params_.players_per_group + 1;
}

std::size_t SymmetricInstance::object_group(ObjectId i) const {
  ACP_EXPECTS(i.value() < num_objects());
  return i.value() / params_.objects_per_group + 1;
}

double SymmetricInstance::perceived_value(PlayerId j, ObjectId i) const {
  ACP_EXPECTS(j.value() < num_players());
  if (j.value() == 0) return truly_good(i) ? 1.0 : 0.0;
  return object_group(i) == player_group(j) ? 1.0 : 0.0;
}

bool SymmetricInstance::truly_good(ObjectId i) const {
  return object_group(i) == good_group_;
}

bool SymmetricInstance::is_mute(PlayerId j) const {
  ACP_EXPECTS(j.value() < num_players());
  if (j.value() == 0) return false;
  return player_group(j) > num_instances();
}

bool SymmetricInstance::is_honest(PlayerId j) const {
  ACP_EXPECTS(j.value() < num_players());
  if (j.value() == 0) return true;
  return player_group(j) == good_group_;
}

}  // namespace acp
