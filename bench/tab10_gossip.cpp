// TAB-10 — The billboard as a real P2P substrate: DISTILL over a
// gossip-replicated billboard vs. the shared-billboard ideal. Sweeps the
// push fanout; the propagation delay (~log n / log fanout rounds per
// post) desynchronizes the per-node candidate sets, and the question is
// how much of DISTILL's guarantee survives eventual consistency.
#include <iostream>

#include "acp/gossip/gossip_engine.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 256;
  const double alpha = 0.5;
  const std::size_t trials = trials_from_env(15);

  print_header("TAB-10 (gossip-replicated billboard)",
               "DISTILL cost vs push fanout; m = n = 256, alpha = 0.5, "
               "eager-flood adversary; 'shared' = the paper's idealized "
               "billboard service");

  Table table({"billboard", "fanout", "mean_probes", "max_probes", "rounds",
               "success"});

  // The idealized shared billboard (the paper's model).
  {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = 7000;
    plan.threads = 1;
    const auto summaries = run_trials_multi(
        plan, 4, [&](std::uint64_t seed) {
          Rng rng(seed);
          const World world = make_simple_world(n, 1, rng);
          const Population population = Population::with_random_honest(
              n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
          DistillParams params;
          params.alpha = alpha;
          DistillProtocol protocol(params);
          EagerVoteAdversary adversary;
          const RunResult result =
              SyncEngine::run(world, population, protocol, adversary,
                              {.max_rounds = 200000, .seed = seed ^ 0xaa});
          return std::vector<double>{
              result.mean_honest_probes(),
              static_cast<double>(result.max_honest_probes()),
              static_cast<double>(result.rounds_executed),
              result.honest_success_fraction()};
        });
    table.add_row({"shared", "-", Table::cell(summaries[0].mean()),
                   Table::cell(summaries[1].mean()),
                   Table::cell(summaries[2].mean()),
                   Table::cell(summaries[3].mean(), 4)});
  }

  // Substrate is pinned per arm: "digest" rows are the versioned
  // anti-entropy default, "legacy" rows the retained exchange-everything
  // path — same protocol, same seeds, so any spread is the substrate.
  struct Arm {
    std::string label;
    std::size_t fanout;
    GossipTopology topology;
    GossipSubstrate substrate;
  };
  const std::vector<Arm> arms = {
      {"digest", 8, GossipTopology::kComplete, GossipSubstrate::kDigest},
      {"digest", 4, GossipTopology::kComplete, GossipSubstrate::kDigest},
      {"digest", 2, GossipTopology::kComplete, GossipSubstrate::kDigest},
      {"digest", 1, GossipTopology::kComplete, GossipSubstrate::kDigest},
      {"legacy", 4, GossipTopology::kComplete, GossipSubstrate::kExchange},
      {"legacy", 2, GossipTopology::kComplete, GossipSubstrate::kExchange},
      {"legacy", 1, GossipTopology::kComplete, GossipSubstrate::kExchange},
      {"digest/rand-graph", 4, GossipTopology::kRandomGraph,
       GossipSubstrate::kDigest},
      {"digest/ring", 4, GossipTopology::kRing, GossipSubstrate::kDigest},
  };
  for (const Arm& arm : arms) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = 7000;
    plan.threads = 1;
    const auto summaries = run_trials_multi(
        plan, 4, [&](std::uint64_t seed) {
          Rng rng(seed);
          const World world = make_simple_world(n, 1, rng);
          const Population population = Population::with_random_honest(
              n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
          EagerVoteAdversary adversary;
          const RunResult result = GossipEngine::run(
              world, population,
              [&]() -> std::unique_ptr<Protocol> {
                DistillParams params;
                params.alpha = alpha;
                return std::make_unique<DistillProtocol>(params);
              },
              adversary,
              {.fanout = arm.fanout,
               .topology = arm.topology,
               .substrate = arm.substrate,
               .max_rounds = 200000,
               .seed = seed ^ 0xaa});
          return std::vector<double>{
              result.mean_honest_probes(),
              static_cast<double>(result.max_honest_probes()),
              static_cast<double>(result.rounds_executed),
              result.honest_success_fraction()};
        });
    table.add_row({"gossip/" + arm.label, Table::cell(arm.fanout),
                   Table::cell(summaries[0].mean()),
                   Table::cell(summaries[1].mean()),
                   Table::cell(summaries[2].mean()),
                   Table::cell(summaries[3].mean(), 4)});
  }

  print_table(table);
  std::cout << "\nshape check: success stays 1.0 at every fanout; digest "
               "cost approaches the shared-billboard cost from above as "
               "fanout grows and degrades gracefully all the way down to "
               "fanout 1. The digest-vs-legacy spread is the anti-entropy "
               "dividend: at fanout 1 with alpha = 0.5 the *effective "
               "honest* fanout is ~0.5 — half the pushes land on Byzantine "
               "absorbers — which is below the percolation point, so the "
               "legacy substrate's rumor spreading stalls and its tail "
               "explodes (~15x the mean probes, ~100x the rounds). The "
               "digest substrate's staggered repair sync detects the "
               "divergence from the 128-bit summaries and heals exactly "
               "the missing ranges, so sub-percolation fanouts merely add "
               "latency instead of stalling. The static overlays tell the "
               "complementary story: at the SAME fanout where dynamic "
               "targets track the shared ideal, fixed links cost 10x more "
               "even WITH repair — a node whose out-neighborhood is mostly "
               "malicious is permanently throttled (and the ring's O(n) "
               "diameter stacks on top). Re-randomizing gossip targets "
               "every round is itself a Byzantine-resilience mechanism.\n";
  return 0;
}
