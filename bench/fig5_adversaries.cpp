// FIG-5 — Robustness decomposition: DISTILL's cost per adversary strategy
// at two honesty levels. The Theorem 4 guarantee is adversary-independent;
// this figure shows which strategies actually extract cost.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const std::size_t trials = trials_from_env(20);

  print_header("FIG-5 (robustness per adversary)",
               "DISTILL mean/max individual cost per strategy; m = n = 1024");

  Table table({"alpha", "adversary", "mean_probes", "max_probes",
               "rounds", "theory"});

  for (double alpha : {0.9, 0.5, 0.25}) {
    PointConfig config;
    config.n = n;
    config.m = n;
    config.good = 1;
    config.alpha = alpha;

    const auto factory = [&]() -> std::unique_ptr<Protocol> {
      DistillParams p;
      p.alpha = alpha;
      return std::make_unique<DistillProtocol>(p);
    };

    const std::vector<std::pair<std::string, AdversaryFactory>> strategies = {
        {"silent", silent_adversary()},
        {"slander",
         [](Protocol&) { return std::make_unique<SlandererAdversary>(); }},
        {"eager-flood",
         [](Protocol&) { return std::make_unique<EagerVoteAdversary>(); }},
        {"collude-4",
         [](Protocol&) { return std::make_unique<CollusionAdversary>(4); }},
        {"split-vote",
         [](Protocol& p) {
           return std::make_unique<SplitVoteAdversary>(
               dynamic_cast<DistillProtocol&>(p));
         }},
    };

    for (const auto& [name, adversary] : strategies) {
      const auto summaries = run_point(
          config, factory, adversary, trials,
          static_cast<std::uint64_t>(alpha * 1000) + 7);
      table.add_row(
          {Table::cell(alpha), name, Table::cell(summaries[kMeanProbes].mean()),
           Table::cell(summaries[kMaxProbes].mean()),
           Table::cell(summaries[kRounds].mean()),
           Table::cell(theory::distill_expected_rounds(alpha, 1.0 / n, n))});
    }
  }

  print_table(table);
  std::cout << "\nshape check: slander == silent (negative reports are "
               "ignored); split-vote is the most expensive strategy at low "
               "alpha.\n";
  return 0;
}
