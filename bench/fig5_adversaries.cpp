// FIG-5 — Robustness decomposition: DISTILL's cost per adversary strategy
// at two honesty levels. The Theorem 4 guarantee is adversary-independent;
// this figure shows which strategies actually extract cost.
//
// Built declaratively: each row is the base spec with a different
// adversary registry name — the same code path as
//   acpsim --scenario scenarios/fig5_adversaries.json --set adversary=X
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const std::size_t trials = trials_from_env(20);

  print_header("FIG-5 (robustness per adversary)",
               "DISTILL mean/max individual cost per strategy; m = n = 1024");

  Table table({"alpha", "adversary", "mean_probes", "max_probes",
               "rounds", "theory"});

  for (double alpha : {0.9, 0.5, 0.25}) {
    scenario::ScenarioSpec base;
    base.n = n;
    base.m = n;
    base.good = 1;
    base.alpha = alpha;
    base.protocol = "distill";

    for (const char* adversary :
         {"silent", "slander", "eager", "collude", "splitvote"}) {
      scenario::ScenarioSpec spec = base;
      spec.adversary = adversary;
      const auto summaries = run_scenario_point(
          spec, trials, static_cast<std::uint64_t>(alpha * 1000) + 7);
      table.add_row(
          {Table::cell(alpha), adversary,
           Table::cell(summaries[sim::kMeanProbes].mean()),
           Table::cell(summaries[sim::kMaxProbes].mean()),
           Table::cell(summaries[sim::kRounds].mean()),
           Table::cell(theory::distill_expected_rounds(alpha, 1.0 / n, n))});
    }
  }

  print_table(table);
  std::cout << "\nshape check: slander == silent (negative reports are "
               "ignored); split-vote is the most expensive strategy at low "
               "alpha.\n";
  return 0;
}
