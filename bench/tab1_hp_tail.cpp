// TAB-1 — Theorem 11 (DISTILL^HP): last-player termination round.
//
// With constant k1, k2 the *expected* time is small but the tail across
// trials is fat; with k1, k2 = Theta(log n) the last player's round
// concentrates below the O(log n / alpha) horizon. The table reports
// quantiles of max-satisfied-round over trials for both variants.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const double alpha = 0.25;
  const std::size_t trials = trials_from_env(40);

  print_header("TAB-1 (Theorem 11, DISTILL^HP tail)",
               "last honest player's termination round over trials; "
               "m = n = 1024, alpha = 0.25, split-vote adversary");

  PointConfig config;
  config.n = n;
  config.m = n;
  config.good = 1;
  config.alpha = alpha;

  // The split-vote adversary seeds C0 with decoys; the inflated c_0 is
  // exactly what makes a constant-k attempt fail with constant probability
  // (Lemma 10's e^(-k2/64) bound) while k2 ~ log n suppresses it.
  const AdversaryFactory adversary = [](Protocol& p) {
    return std::make_unique<SplitVoteAdversary>(
        dynamic_cast<DistillProtocol&>(p));
  };

  Table table({"variant", "k1", "k2", "p50_last_round", "p99", "max",
               "restart_frac", "hp_horizon"});

  struct Variant {
    std::string name;
    DistillParams params;
  };
  DistillParams constant_params;
  constant_params.alpha = alpha;
  const std::vector<Variant> variants = {
      {"DISTILL (k const)", constant_params},
      {"DISTILL^HP (k ~ log n)", make_hp_params(alpha, n)},
  };

  for (const auto& variant : variants) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = 11;
    plan.threads = 1;
    const auto summaries = run_trials_multi(
        plan, 2, [&](std::uint64_t seed) {
          Rng rng(seed);
          const World world = make_simple_world(config.m, config.good, rng);
          const Population population = Population::with_random_honest(
              config.n, static_cast<std::size_t>(alpha * static_cast<double>(config.n)), rng);
          DistillProtocol protocol(variant.params);
          auto adv = adversary(protocol);
          const RunResult result =
              SyncEngine::run(world, population, protocol, *adv,
                              {.max_rounds = 500000, .seed = seed ^ 0xabcdef});
          // attempts_started > 1 means at least one whole ATTEMPT failed
          // and restarted — the tail event Theorem 11's constants suppress.
          return std::vector<double>{
              static_cast<double>(result.max_honest_satisfied_round()),
              protocol.attempts_started() > 1 ? 1.0 : 0.0};
        });
    const Summary& last_round = summaries[0];
    table.add_row({variant.name, Table::cell(variant.params.k1, 1),
                   Table::cell(variant.params.k2, 1),
                   Table::cell(last_round.median()),
                   Table::cell(last_round.p99()),
                   Table::cell(last_round.max()),
                   Table::cell(summaries[1].mean(), 3),
                   Table::cell(static_cast<long long>(
                       theory::hp_horizon(alpha, 1.0 / n, n)))});
  }

  print_table(table);
  std::cout << "\nshape check: the HP row's restart fraction is lower (and "
               "its tail correspondingly tighter relative to its median) "
               "than the constant-k row's; both stay under hp_horizon.\n";
  return 0;
}
