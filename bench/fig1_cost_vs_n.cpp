// FIG-1 — The headline comparison (Theorem 4 vs. prior work, §1.2):
// individual cost vs. n at alpha = 0.9, m = n, one good object.
//
// Expected shape: DISTILL stays near-constant; the EC'04 baseline under
// round robin grows like log n; the trivial no-billboard algorithm pays
// ~1/beta = n and is off the chart.
//
// Built declaratively: every point is a ScenarioSpec run through the
// registry + sharded driver, the same code path as
//   acpsim --scenario scenarios/fig1_cost_vs_n.json --set n=N --set m=N
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const double alpha = 0.9;
  const std::size_t trials = trials_from_env(25);

  print_header("FIG-1 (Theorem 4 vs prior work)",
               "individual cost vs n; m = n, one good object, alpha = 0.9; "
               "DISTILL cost is worst over the adversary library");

  Table table({"n", "distill_worst", "distill_silent", "collab_ec04",
               "theory_distill", "theory_collab", "trivial=1/beta"});

  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    scenario::ScenarioSpec spec;
    spec.n = n;
    spec.m = n;
    spec.good = 1;
    spec.alpha = alpha;
    spec.protocol = "distill";

    const double distill_worst =
        worst_case_scenario_mean_probes(spec, trials, /*base_seed=*/n);

    const double distill_silent =
        run_scenario_point(spec, trials, n)[sim::kMeanProbes].mean();

    scenario::ScenarioSpec collab_spec = spec;
    collab_spec.protocol = "collab";
    const double collab =
        run_scenario_point(collab_spec, trials, n)[sim::kMeanProbes].mean();

    const double beta = 1.0 / static_cast<double>(n);
    table.add_row({Table::cell(n), Table::cell(distill_worst),
                   Table::cell(distill_silent), Table::cell(collab),
                   Table::cell(theory::distill_expected_rounds(alpha, beta, n)),
                   Table::cell(theory::baseline_expected_rounds(alpha, beta,
                                                                n)),
                   Table::cell(theory::trivial_expected_rounds(beta), 0)});
  }

  print_table(table);
  std::cout << "\nshape check: distill_silent is flat (the benign O(1) "
               "regime); distill_worst grows sublogarithmically, tracking "
               "theory_distill's log n/Delta shape; collab_ec04 climbs like "
               "log n and loses everywhere.\n";
  return 0;
}
