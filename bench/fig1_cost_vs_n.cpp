// FIG-1 — The headline comparison (Theorem 4 vs. prior work, §1.2):
// individual cost vs. n at alpha = 0.9, m = n, one good object.
//
// Expected shape: DISTILL stays near-constant; the EC'04 baseline under
// round robin grows like log n; the trivial no-billboard algorithm pays
// ~1/beta = n and is off the chart.
#include <iostream>

#include "acp/baseline/collab_baseline.hpp"
#include "acp/baseline/trivial_random.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const double alpha = 0.9;
  const std::size_t trials = trials_from_env(25);

  print_header("FIG-1 (Theorem 4 vs prior work)",
               "individual cost vs n; m = n, one good object, alpha = 0.9; "
               "DISTILL cost is worst over the adversary library");

  Table table({"n", "distill_worst", "distill_silent", "collab_ec04",
               "theory_distill", "theory_collab", "trivial=1/beta"});

  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    PointConfig config;
    config.n = n;
    config.m = n;
    config.good = 1;
    config.alpha = alpha;

    const auto params = [&] {
      DistillParams p;
      p.alpha = alpha;
      return p;
    };
    const double distill_worst =
        worst_case_mean_probes(config, params, trials, /*base_seed=*/n);

    const auto distill_silent =
        run_point(config,
                  [&] { return std::make_unique<DistillProtocol>(params()); },
                  silent_adversary(), trials, n)[kMeanProbes]
            .mean();

    const auto collab =
        run_point(config,
                  [] { return std::make_unique<CollabBaselineProtocol>(); },
                  silent_adversary(), trials, n)[kMeanProbes]
            .mean();

    const double beta = 1.0 / static_cast<double>(n);
    table.add_row({Table::cell(n), Table::cell(distill_worst),
                   Table::cell(distill_silent), Table::cell(collab),
                   Table::cell(theory::distill_expected_rounds(alpha, beta, n)),
                   Table::cell(theory::baseline_expected_rounds(alpha, beta,
                                                                n)),
                   Table::cell(theory::trivial_expected_rounds(beta), 0)});
  }

  print_table(table);
  std::cout << "\nshape check: distill_silent is flat (the benign O(1) "
               "regime); distill_worst grows sublogarithmically, tracking "
               "theory_distill's log n/Delta shape; collab_ec04 climbs like "
               "log n and loses everywhere.\n";
  return 0;
}
