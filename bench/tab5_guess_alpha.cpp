// TAB-5 — §5.1 (guessing alpha): the halving wrapper vs DISTILL^HP with
// the true alpha. The wrapper's overall time should be within a constant
// factor of the known-alpha run — at most ~2x the last epoch.
#include <iostream>

#include "acp/core/guess_alpha.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 256;
  const std::size_t trials = trials_from_env(15);

  print_header("TAB-5 (§5.1, alpha halving)",
               "wrapper (alpha unknown) vs DISTILL^HP (alpha known); "
               "m = n = 256, eager-flood adversary");

  Table table({"true_alpha", "wrapper_rounds", "known_alpha_rounds",
               "overhead_x", "wrapper_success"});

  for (double alpha : {0.8, 0.4, 0.2, 0.1}) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = static_cast<std::uint64_t>(alpha * 1000);
    plan.threads = 1;

    auto make_scenario = [&](std::uint64_t seed) {
      Rng rng(seed);
      World world = make_simple_world(n, 1, rng);
      Population population = Population::with_random_honest(
          n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
      return std::pair{std::move(world), std::move(population)};
    };

    const auto wrapper = run_trials_multi(
        plan, 2, [&](std::uint64_t seed) {
          auto [world, population] = make_scenario(seed);
          GuessAlphaProtocol protocol;
          EagerVoteAdversary adversary;
          const RunResult result =
              SyncEngine::run(world, population, protocol, adversary,
                              {.max_rounds = 2000000, .seed = seed ^ 0x55});
          return std::vector<double>{
              static_cast<double>(result.rounds_executed),
              result.honest_success_fraction()};
        });

    const Summary known = run_trials(plan, [&](std::uint64_t seed) {
      auto [world, population] = make_scenario(seed);
      DistillProtocol protocol(make_hp_params(alpha, n));
      EagerVoteAdversary adversary;
      return static_cast<double>(
          SyncEngine::run(world, population, protocol, adversary,
                          {.max_rounds = 2000000, .seed = seed ^ 0x55})
              .rounds_executed);
    });

    table.add_row({Table::cell(alpha), Table::cell(wrapper[0].mean()),
                   Table::cell(known.mean()),
                   Table::cell(wrapper[0].mean() / known.mean()),
                   Table::cell(wrapper[1].mean(), 4)});
  }

  print_table(table);
  std::cout << "\nshape check: overhead_x stays a modest constant across "
               "true alpha values; wrapper success is 1.0.\n";
  return 0;
}
