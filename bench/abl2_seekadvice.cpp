// ABL-2 — Ablation of PROBE&SEEKADVICE's advice channel (the Lemma 6
// termination wrinkle): every second probe follows a random player's vote
// so stragglers finish in O(1/alpha) once half the honest players are
// satisfied. Without it, the last players can only rely on the candidate
// sets, and the straggler tail stretches.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const std::size_t trials = trials_from_env(20);

  print_header("ABL-2 (advice channel on/off)",
               "mean vs last-player cost with and without the SeekAdvice "
               "half of PROBE&SEEKADVICE; m = n = 1024, eager adversary");

  Table table({"alpha", "advice", "mean_probes", "last_round_mean",
               "last_round_p99"});

  for (double alpha : {0.9, 0.5}) {
    for (bool advice : {true, false}) {
      TrialPlan plan;
      plan.trials = trials;
      plan.base_seed = static_cast<std::uint64_t>(alpha * 100) +
                       (advice ? 0 : 1);
      plan.threads = 1;

      const auto summaries = run_trials_multi(
          plan, 2, [&](std::uint64_t seed) {
            Rng rng(seed);
            const World world = make_simple_world(n, 1, rng);
            const Population population = Population::with_random_honest(
                n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
            DistillParams params;
            params.alpha = alpha;
            params.use_advice = advice;
            DistillProtocol protocol(params);
            EagerVoteAdversary adversary;
            const RunResult result =
                SyncEngine::run(world, population, protocol, adversary,
                                {.max_rounds = 500000, .seed = seed ^ 0x99});
            return std::vector<double>{
                result.mean_honest_probes(),
                static_cast<double>(result.max_honest_satisfied_round())};
          });

      table.add_row({Table::cell(alpha), advice ? "on" : "off",
                     Table::cell(summaries[0].mean()),
                     Table::cell(summaries[1].mean()),
                     Table::cell(summaries[1].p99())});
    }
  }

  print_table(table);
  std::cout << "\nshape check: advice roughly halves the mean probe cost — "
               "an advice round is free when the chosen player has no vote "
               "and cheaply targeted when it does, while a candidate probe "
               "always costs 1. (Total rounds are similar: invocations are "
               "2 rounds with advice, 1 without.)\n";
  return 0;
}
