// TAB-11 — §1.3's amplification claim, reproduced: "popularity-style
// algorithms actually enhance the power of malicious users" (the paper's
// discussion of EigenTrust-like systems).
//
// Compare DISTILL (one-vote rule, freshness windows) against the
// popularity-following strawman (raw positive-report counts, no caps)
// under a spamming clique. Runs are capped; success < 1 means players
// were still chasing decoys at the cap.
#include <iostream>

#include "acp/baseline/popularity.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 512;
  const Round cap = 2000;
  const std::size_t trials = trials_from_env(15);

  print_header("TAB-11 (§1.3, popularity amplifies malice)",
               "DISTILL vs popularity-following under a spam clique; "
               "m = n = 512, runs capped at 2000 rounds");

  Table table({"protocol", "adversary", "alpha", "mean_probes", "success",
               "rounds"});

  for (double alpha : {0.9, 0.5}) {
    struct Arm {
      std::string protocol;
      std::string adversary;
    };
    for (const auto& [protocol_name, adversary_name] :
         std::vector<std::pair<std::string, std::string>>{
             {"distill", "silent"},
             {"distill", "spam"},
             {"popularity", "silent"},
             {"popularity", "spam"}}) {
      PointConfig config;
      config.n = n;
      config.m = n;
      config.good = 1;
      config.alpha = alpha;
      config.max_rounds = cap;

      const auto factory = [&]() -> std::unique_ptr<Protocol> {
        if (protocol_name == "distill") {
          DistillParams params;
          params.alpha = alpha;
          return std::make_unique<DistillProtocol>(params);
        }
        return std::make_unique<PopularityProtocol>();
      };
      const AdversaryFactory adversary =
          [&](Protocol&) -> std::unique_ptr<Adversary> {
        if (adversary_name == "spam") {
          return std::make_unique<SpamAdversary>(4);
        }
        return std::make_unique<SilentAdversary>();
      };

      const auto summaries = run_point(
          config, factory, adversary, trials,
          static_cast<std::uint64_t>(alpha * 100) +
              (protocol_name == "distill" ? 0 : 7) +
              (adversary_name == "spam" ? 13 : 0));
      table.add_row({protocol_name, adversary_name, Table::cell(alpha),
                     Table::cell(summaries[kMeanProbes].mean()),
                     Table::cell(summaries[kSuccess].mean(), 4),
                     Table::cell(summaries[kRounds].mean())});
    }
  }

  print_table(table);
  std::cout << "\nshape check: under silence the two are comparable (the "
               "rich-get-richer rule is even slightly faster — popularity "
               "IS informative when everyone is honest, which is why "
               "deployed systems are tempted by it). Under spam, DISTILL "
               "barely moves — the one-vote rule caps the clique at one "
               "counted vote per identity — while the popularity rule's "
               "follow probes funnel into the decoys. At alpha = 0.5 the "
               "clique permanently owns the score distribution: runs hit "
               "the 2000-round cap ~40x over DISTILL's cost with a tail "
               "of players still chasing decoys — §1.3's amplification, "
               "measured.\n";
  return 0;
}
