// ABL-4 — §6's fourth open question: "it seems interesting to understand
// whether [a notion of trust] can be useful in our model."
//
// The variant: SeekAdvice samples the advised player weighted by purely
// local experience (+1 per good, -1 per bad advice followed) instead of
// uniformly. No trust values are posted — the adversary gains no channel —
// so this isolates the best case for local trust.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const std::size_t trials = trials_from_env(15);

  print_header("ABL-4 (is local trust useful?)",
               "uniform vs trust-weighted SeekAdvice; m = n = 1024, "
               "eager-flood adversary (the advice-poisoning strategy)");

  Table table({"alpha", "advice", "mean_probes", "max_probes", "rounds"});

  for (double alpha : {0.9, 0.5, 0.25}) {
    for (bool trust : {false, true}) {
      PointConfig config;
      config.n = n;
      config.m = n;
      config.good = 1;
      config.alpha = alpha;

      const auto factory = [&]() -> std::unique_ptr<Protocol> {
        DistillParams params;
        params.alpha = alpha;
        params.trust_weighted_advice = trust;
        return std::make_unique<DistillProtocol>(params);
      };
      const AdversaryFactory adversary = [](Protocol&) {
        return std::make_unique<EagerVoteAdversary>();
      };

      const auto summaries = run_point(
          config, factory, adversary, trials,
          static_cast<std::uint64_t>(alpha * 100) + (trust ? 1 : 0));
      table.add_row({Table::cell(alpha), trust ? "trust" : "uniform",
                     Table::cell(summaries[kMeanProbes].mean()),
                     Table::cell(summaries[kMaxProbes].mean()),
                     Table::cell(summaries[kRounds].mean())});
    }
  }

  print_table(table);
  std::cout << "\nshape check: trust is neutral at high alpha — runs end "
               "after a handful of advice draws, too few for local scores "
               "to learn anything — but at low alpha, where runs last "
               "O((1/alpha) log n/Delta) rounds and most advice is "
               "poisoned, down-weighting burned advisors buys a solid "
               "~20-30% of mean cost, at zero adversarial exposure (trust "
               "is never posted). A positive data point for the paper's "
               "fourth open question, in exactly the regime where the "
               "algorithm is weakest.\n";
  return 0;
}
