// FIG-4 — Corollary 5: with m = n and alpha = 1 - n^-eps, the expected
// termination time is O(1/eps) — independent of n.
//
// Expected shape: for each eps, cost ~ constant across n; for each n,
// cost falls as eps grows (fewer dishonest players).
#include <cmath>
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t trials = trials_from_env(20);

  print_header("FIG-4 (Corollary 5)",
               "cost with alpha = 1 - n^-eps; m = n, one good object; "
               "worst over the adversary library");

  Table table({"eps", "n", "dishonest", "distill_worst", "bound 1/eps"});

  for (double eps : {0.25, 0.5, 1.0}) {
    for (std::size_t n : {256u, 1024u, 4096u}) {
      const double alpha =
          1.0 - std::pow(static_cast<double>(n), -eps);
      const auto dishonest = static_cast<std::size_t>(
          std::round((1.0 - alpha) * static_cast<double>(n)));

      PointConfig config;
      config.n = n;
      config.m = n;
      config.good = 1;
      config.alpha = alpha;

      const auto params = [&] {
        DistillParams p;
        p.alpha = alpha;
        return p;
      };
      const double worst = worst_case_mean_probes(
          config, params, trials, n + static_cast<std::uint64_t>(eps * 100));

      table.add_row({Table::cell(eps), Table::cell(n),
                     Table::cell(dishonest), Table::cell(worst),
                     Table::cell(theory::corollary5_bound(eps))});
    }
  }

  print_table(table);
  std::cout << "\nshape check: within each eps block the cost stays flat in "
               "n (the Corollary 5 claim).\n";
  return 0;
}
