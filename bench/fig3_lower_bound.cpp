// FIG-3 — Theorem 2's lower-bound instance: player 0's measured probes on
// the symmetric instance family, averaged over the Yao distribution
// (uniform k), vs. the B/2 floor, B = min{1/alpha, 1/beta}.
//
// Expected shape: measured cost grows linearly in B and never dips below
// B/2, for DISTILL and for the EC'04 baseline alike.
#include <iostream>

#include "acp/baseline/collab_baseline.hpp"
#include "acp/lower_bounds/symmetric_engine.hpp"
#include "acp/lower_bounds/symmetric_instance.hpp"
#include "bench_support.hpp"

namespace {

using namespace acp;

/// Mean probes of player 0 over instances k = 1..B and `seeds` seeds each.
template <class MakeProtocol>
double yao_average(const SymmetricInstanceParams& params,
                   MakeProtocol&& make_protocol, std::size_t seeds) {
  const std::size_t B =
      std::min(params.player_groups, params.object_groups);
  double total = 0.0;
  std::size_t runs = 0;
  for (std::size_t k = 1; k <= B; ++k) {
    const SymmetricInstance instance(params, k);
    for (std::uint64_t s = 0; s < seeds; ++s) {
      auto protocol = make_protocol(instance);
      const SymmetricRunResult result = run_symmetric(
          instance, *protocol, {.max_rounds = 200000, .seed = 1000 * k + s});
      total += static_cast<double>(result.player0_probes);
      ++runs;
    }
  }
  return total / static_cast<double>(runs);
}

}  // namespace

int main() {
  using namespace acp::bench;

  const std::size_t seeds = trials_from_env(10);

  print_header("FIG-3 (Theorem 2 lower bound)",
               "player 0's probes on the symmetric instance family vs the "
               "B/2 floor; B = min{1/alpha, 1/beta}");

  acp::Table table({"groups(B)", "alpha=beta", "distill", "collab_ec04",
                    "floor B/2"});

  for (std::size_t groups : {2u, 4u, 8u, 16u}) {
    SymmetricInstanceParams params;
    params.player_groups = groups;
    params.players_per_group = 8;
    params.object_groups = groups;
    params.objects_per_group = 8;

    const double rate = 1.0 / static_cast<double>(groups);

    const double distill = yao_average(
        params,
        [&](const SymmetricInstance& instance) {
          DistillParams p;
          p.alpha = instance.alpha();
          return std::make_unique<DistillProtocol>(p);
        },
        seeds);

    const double collab = yao_average(
        params,
        [&](const SymmetricInstance&) {
          return std::make_unique<CollabBaselineProtocol>();
        },
        seeds);

    table.add_row({acp::Table::cell(groups), acp::Table::cell(rate),
                   acp::Table::cell(distill), acp::Table::cell(collab),
                   acp::Table::cell(acp::theory::theorem2_floor(rate, rate))});
  }

  print_table(table);
  std::cout << "\nshape check: both algorithm columns must sit above the "
               "floor and grow ~linearly with B.\n";
  return 0;
}
