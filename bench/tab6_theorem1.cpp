// TAB-6 — Theorem 1's work floor: even with perfect cooperation (the
// oracle the proof grants), per-player probes cannot beat
// (m+1)/(beta m + 1) / (alpha n). The oracle's measured cost should hug
// the floor; DISTILL sits above it by its coordination overhead.
#include <iostream>

#include "acp/baseline/full_coop_oracle.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 64;
  const std::size_t m = 4096;
  const std::size_t trials = trials_from_env(25);

  print_header("TAB-6 (Theorem 1 floor)",
               "per-player probes vs beta; full-cooperation oracle vs "
               "DISTILL; n = 64 all-honest, m = 4096");

  Table table({"good(beta*m)", "oracle_mean", "distill_mean",
               "floor 1/(alpha beta n)"});

  for (std::size_t good : {1u, 4u, 16u, 64u, 256u}) {
    PointConfig config;
    config.n = n;
    config.m = m;
    config.good = good;
    config.alpha = 1.0;

    const auto oracle = run_point(
        config, [] { return std::make_unique<FullCoopOracle>(); },
        silent_adversary(), trials, 900 + good)[kMeanProbes];

    const auto distill = run_point(
        config,
        [&]() -> std::unique_ptr<Protocol> {
          DistillParams p;
          p.alpha = 1.0;
          return std::make_unique<DistillProtocol>(p);
        },
        silent_adversary(), trials, 900 + good)[kMeanProbes];

    const double beta = static_cast<double>(good) / m;
    table.add_row({Table::cell(good), Table::cell(oracle.mean()),
                   Table::cell(distill.mean()),
                   Table::cell(theory::theorem1_floor(1.0, beta, n, m))});
  }

  print_table(table);
  std::cout << "\nshape check: oracle_mean tracks the floor within a small "
               "factor; no algorithm dips below it.\n";
  return 0;
}
