// ABL-5 — Trust in its natural habitat: repeated search.
//
// ABL-4 shows local trust barely helps one-shot search. But eBay is not
// one-shot: the same population searches again and again (new listings,
// same identities — the paper's prior work is literally "collaboration of
// untrusting peers with CHANGING INTERESTS"). Here the population runs a
// sequence of independent searches — fresh world each epoch, same players,
// same Byzantine identities — carrying the learned trust tables across
// epochs. The Welch t-test says whether the cumulative advantage is real.
#include <iostream>

#include "acp/stats/significance.hpp"
#include "bench_support.hpp"

namespace {

using namespace acp;

/// Mean probes per epoch across `epochs` consecutive searches, carrying
/// trust tables forward iff `carry`.
std::vector<double> run_epochs(std::size_t n, double alpha,
                               std::size_t epochs, bool trust, bool carry,
                               std::uint64_t seed) {
  std::vector<double> per_epoch;
  std::vector<std::vector<int>> carried;
  Rng scenario_rng(seed);
  const Population population = Population::with_random_honest(
      n, static_cast<std::size_t>(alpha * static_cast<double>(n)), scenario_rng);
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const World world = make_simple_world(n, 1, scenario_rng);
    DistillParams params;
    params.alpha = alpha;
    params.trust_weighted_advice = trust;
    DistillProtocol protocol(params);
    if (trust && carry && !carried.empty()) {
      protocol.import_trust_table(std::move(carried));
    }
    EagerVoteAdversary adversary;
    const RunResult result = SyncEngine::run(
        world, population, protocol, adversary,
        {.max_rounds = 300000, .seed = seed * 131 + epoch});
    per_epoch.push_back(result.mean_honest_probes());
    if (trust && carry) carried = protocol.trust_table();
  }
  return per_epoch;
}

}  // namespace

int main() {
  using namespace acp::bench;

  const std::size_t n = 512;
  const double alpha = 0.25;
  const std::size_t epochs = 8;
  const std::size_t trials = trials_from_env(10);

  print_header("ABL-5 (trust across repeated searches)",
               "mean probes per epoch over 8 consecutive searches; "
               "m = n = 512, alpha = 0.25, eager-flood adversary, fixed "
               "Byzantine identities");

  // Collect per-epoch means across trials for three arms.
  std::vector<std::vector<double>> uniform(epochs), oneshot(epochs),
      carried(epochs);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto u = run_epochs(n, alpha, epochs, false, false, 40 + t);
    const auto o = run_epochs(n, alpha, epochs, true, false, 40 + t);
    const auto c = run_epochs(n, alpha, epochs, true, true, 40 + t);
    for (std::size_t e = 0; e < epochs; ++e) {
      uniform[e].push_back(u[e]);
      oneshot[e].push_back(o[e]);
      carried[e].push_back(c[e]);
    }
  }

  acp::Table table({"epoch", "uniform", "trust_oneshot", "trust_carried",
                    "carried_vs_uniform"});
  for (std::size_t e = 0; e < epochs; ++e) {
    const auto su = acp::Summary::from_samples(uniform[e]);
    const auto so = acp::Summary::from_samples(oneshot[e]);
    const auto sc = acp::Summary::from_samples(carried[e]);
    const auto welch = acp::welch_t_test(sc, su);
    std::string verdict = "n.s.";
    if (welch.significant_1pct) {
      verdict = welch.t < 0 ? "better **" : "worse **";
    } else if (welch.significant_5pct) {
      verdict = welch.t < 0 ? "better *" : "worse *";
    }
    table.add_row({acp::Table::cell(e), acp::Table::cell(su.mean()),
                   acp::Table::cell(so.mean()), acp::Table::cell(sc.mean()),
                   verdict});
  }

  print_table(table);
  std::cout << "\nshape check: epoch 0 matches ABL-4 (one-shot trust is a "
               "modest win at this alpha). With carried tables the win "
               "compounds: by the later epochs the population has mapped "
               "the Byzantine identities and the advantage over uniform "
               "advice is large and statistically significant (* p<0.05, "
               "** p<0.01, Welch). Trust IS useful in this model — across "
               "searches, not within one.\n";
  return 0;
}
