// TAB-9 — Lemma 6, measured directly: once at least alpha*n/2 honest
// players are satisfied, any remaining (or newly arriving) player finds a
// good object within 4/alpha expected additional rounds, because every
// second probe follows a random player's vote.
//
// Setup: everyone starts at round 0 except one late joiner injected long
// after the crowd converged; its probe count is the straggler cost.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 512;
  const std::size_t trials = trials_from_env(30);

  print_header("TAB-9 (Lemma 6, straggler pickup)",
               "probes of a player arriving after the crowd is satisfied; "
               "m = n = 512; bound: 4/alpha rounds => <= ~2/alpha probes");

  Table table({"alpha", "late_joiner_probes", "p99", "bound 4/alpha rounds"});

  for (double alpha : {1.0, 0.5, 0.25, 0.125}) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = static_cast<std::uint64_t>(alpha * 1000);
    plan.threads = 1;
    const Summary probes = run_trials(plan, [&](std::uint64_t seed) {
      Rng rng(seed);
      const World world = make_simple_world(n, 1, rng);
      const auto honest = static_cast<std::size_t>(alpha * static_cast<double>(n));
      const Population population =
          Population::with_random_honest(n, honest, rng);
      SyncRunConfig config;
      config.seed = seed ^ 0xfeedface;
      config.max_rounds = 500000;
      config.arrivals.assign(n, 0);
      // The late joiner is the first honest player; it arrives well after
      // the main crowd has converged (rounds scale like 1/alpha here).
      const PlayerId late = population.honest_players().front();
      config.arrivals[late.value()] =
          static_cast<Round>(2000.0 / alpha);
      DistillParams params;
      params.alpha = alpha;
      DistillProtocol protocol(params);
      EagerVoteAdversary adversary;
      const RunResult result = SyncEngine::run(world, population, protocol,
                                               adversary, config);
      return static_cast<double>(result.players[late.value()].probes);
    });
    table.add_row({Table::cell(alpha, 3), Table::cell(probes.mean()),
                   Table::cell(probes.p99()),
                   Table::cell(4.0 / alpha, 1)});
  }

  print_table(table);
  std::cout << "\nshape check: the late joiner's probes scale like 1/alpha "
               "and stay within the Lemma 6 envelope — independent of m "
               "and of how long the crowd has been gone.\n";
  return 0;
}
