// Shared infrastructure for the experiment benches.
//
// Every bench regenerates one table/figure from DESIGN.md's experiment
// index: it sweeps the parameter its claim quantifies over, runs repeated
// seeded trials per point, and prints measured values next to the theory
// curve. Trials can be scaled with the ACP_BENCH_TRIALS environment
// variable (default per bench); all output is deterministic for a fixed
// trial count.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "acp/adversary/split_vote.hpp"
#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/core/theory.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/obs/json.hpp"
#include "acp/scenario/build.hpp"
#include "acp/scenario/spec.hpp"
#include "acp/sim/runner.hpp"
#include "acp/sim/scenario_driver.hpp"
#include "acp/stats/summary.hpp"
#include "acp/stats/table.hpp"
#include "acp/world/builders.hpp"

namespace acp::bench {

namespace detail {
/// Strict positive-integer parse of an environment variable. The whole
/// value must be a plain positive decimal ("8", not "8x" or "abc" or
/// "-3"); anything else warns on stderr and falls back to the default —
/// silently running a bench at the wrong trial count is how config typos
/// turn into wrong tables.
inline std::size_t positive_count_from_env(const char* name,
                                           std::size_t default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || parsed <= 0) {
    std::cerr << name << ": invalid value '" << env << "', using default "
              << default_value << "\n";
    return default_value;
  }
  return static_cast<std::size_t>(parsed);
}
}  // namespace detail

/// Trial count from ACP_BENCH_TRIALS, else the bench's default.
inline std::size_t trials_from_env(std::size_t default_trials) {
  return detail::positive_count_from_env("ACP_BENCH_TRIALS", default_trials);
}

/// Trial-runner worker threads from ACP_BENCH_THREADS (default 1). Any
/// value is deterministic: trials are independently seeded and results are
/// stored by trial index, so only wall-clock time changes.
inline std::size_t threads_from_env(std::size_t default_threads = 1) {
  return detail::positive_count_from_env("ACP_BENCH_THREADS",
                                         default_threads);
}

/// Honest-player count for a target fraction alpha, rounded half-up and
/// clamped to [0, n]. Delegates to the scenario layer so benches and
/// spec-driven runs agree on population shape by construction.
inline std::size_t honest_count(double alpha, std::size_t n) {
  return scenario::honest_count(alpha, n);
}

/// One experiment point: a world/population shape plus run limits.
struct PointConfig {
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t good = 1;
  double alpha = 0.5;
  Round max_rounds = 500000;
};

/// A protocol under test, constructed fresh per trial.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>()>;
/// An adversary constructed fresh per trial; receives the trial's protocol
/// so observer strategies (split-vote) can attach.
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(Protocol&)>;

inline AdversaryFactory silent_adversary() {
  return [](Protocol&) { return std::make_unique<SilentAdversary>(); };
}

/// Metrics captured per trial, in run_point()'s summary order.
enum Metric : std::size_t {
  kMeanProbes = 0,
  kMaxProbes = 1,
  kRounds = 2,
  kMeanCost = 3,
  kSuccess = 4,
  kNumMetrics = 5,
};

/// Run `trials` seeded trials of one experiment point; returns one Summary
/// per Metric.
inline std::vector<Summary> run_point(const PointConfig& config,
                                      const ProtocolFactory& make_protocol,
                                      const AdversaryFactory& make_adversary,
                                      std::size_t trials,
                                      std::uint64_t base_seed) {
  TrialPlan plan;
  plan.trials = trials;
  plan.base_seed = base_seed;
  plan.threads = threads_from_env();  // deterministic at any thread count
  return run_trials_multi(
      plan, kNumMetrics, [&](std::uint64_t seed) {
        Rng rng(seed);
        const World world = make_simple_world(config.m, config.good, rng);
        const std::size_t honest = honest_count(config.alpha, config.n);
        const Population population =
            Population::with_random_honest(config.n, honest, rng);
        auto protocol = make_protocol();
        auto adversary = make_adversary(*protocol);
        const RunResult result = SyncEngine::run(
            world, population, *protocol, *adversary,
            {.max_rounds = config.max_rounds, .seed = seed ^ 0x9e3779b9});
        return std::vector<double>{
            result.mean_honest_probes(),
            static_cast<double>(result.max_honest_probes()),
            static_cast<double>(result.rounds_executed),
            result.mean_honest_cost(),
            result.honest_success_fraction(),
        };
      });
}

/// Run one experiment point built declaratively: the protocol and
/// adversary are constructed by registry name and the trials fan out
/// through the sharded scenario driver (splitmix64-derived per-trial
/// seeds, bit-identical at any ACP_BENCH_THREADS). Returns one Summary
/// per sim::ScenarioMetric — note the order differs from the legacy
/// bench::Metric enum. Benches that have migrated to scenario files
/// (fig1/fig2/fig5) run the exact same code path as
/// `acpsim --scenario`, so a table regenerated either way matches.
inline std::vector<Summary> run_scenario_point(scenario::ScenarioSpec spec,
                                               std::size_t trials,
                                               std::uint64_t base_seed) {
  spec.trials = trials;
  spec.seed = base_seed;
  spec.threads = threads_from_env();
  return sim::run_scenario_summaries(spec);
}

/// Worst (maximum) mean-probe cost over the adversary strategy library,
/// scenario edition: the sweep varies only the adversary registry name.
inline double worst_case_scenario_mean_probes(
    const scenario::ScenarioSpec& base, std::size_t trials,
    std::uint64_t base_seed) {
  double worst = 0.0;
  for (const char* adversary : {"silent", "eager", "collude", "splitvote"}) {
    scenario::ScenarioSpec spec = base;
    spec.adversary = adversary;
    spec.adversary_params = {};
    worst = std::max(
        worst,
        run_scenario_point(spec, trials, base_seed)[sim::kMeanProbes].mean());
  }
  return worst;
}

/// Worst (maximum) mean-probe cost over the adversary strategy library —
/// the bench approximation of "for any adaptive Byzantine adversary".
inline double worst_case_mean_probes(const PointConfig& config,
                                     const std::function<DistillParams()>&
                                         make_params,
                                     std::size_t trials,
                                     std::uint64_t base_seed) {
  const auto distill_factory = [&]() -> std::unique_ptr<Protocol> {
    return std::make_unique<DistillProtocol>(make_params());
  };
  double worst = 0.0;
  const std::vector<std::pair<std::string, AdversaryFactory>> strategies = {
      {"silent", silent_adversary()},
      {"eager",
       [](Protocol&) { return std::make_unique<EagerVoteAdversary>(); }},
      {"collude",
       [](Protocol&) { return std::make_unique<CollusionAdversary>(4); }},
      {"splitvote",
       [](Protocol& p) {
         return std::make_unique<SplitVoteAdversary>(
             dynamic_cast<DistillProtocol&>(p));
       }},
  };
  for (const auto& [name, factory] : strategies) {
    const auto summaries =
        run_point(config, distill_factory, factory, trials, base_seed);
    worst = std::max(worst, summaries[kMeanProbes].mean());
  }
  return worst;
}

namespace detail {
/// Bench identity captured by print_header() so JSON dumps can name
/// themselves without threading an id through every call site.
inline std::string& bench_id() {
  static std::string id;
  return id;
}
inline std::string& bench_claim() {
  static std::string claim;
  return claim;
}
}  // namespace detail

/// Standard bench banner. Also records the bench id (the token before the
/// first space, e.g. "FIG-1") and claim for write_table_json().
inline void print_header(const std::string& id, const std::string& claim) {
  detail::bench_id() = id.substr(0, id.find(' '));
  detail::bench_claim() = claim;
  std::cout << "==============================================================="
               "=\n"
            << id << "\n"
            << claim << "\n"
            << "==============================================================="
               "=\n";
}

/// If ACP_BENCH_JSON=<dir> is set, dump `table` as
/// <dir>/BENCH_<id>.json ("acp.bench.v1": id, claim, headers, string
/// rows). No-op otherwise. Failures warn on stderr but never fail the
/// bench — JSON is a side channel, the table on stdout is the contract.
inline void write_table_json(const Table& table) {
  const char* dir = std::getenv("ACP_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  const std::string id =
      detail::bench_id().empty() ? std::string("bench") : detail::bench_id();
  const std::string path = std::string(dir) + "/BENCH_" + id + ".json";
  std::ofstream file(path);
  if (!file) {
    std::cerr << "ACP_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  obs::JsonWriter json(file);
  json.begin_object();
  json.member("schema", "acp.bench.v1");
  json.member("id", id);
  json.member("claim", detail::bench_claim());
  json.key("headers").begin_array();
  for (const std::string& header : table.headers()) json.value(header);
  json.end_array();
  json.key("rows").begin_array();
  for (const auto& row : table.rows()) {
    json.begin_array();
    for (const std::string& cell : row) json.value(cell);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  file << "\n";
}

/// Print the result table to stdout and, under ACP_BENCH_JSON, dump it as
/// JSON too. Benches call this instead of table.print(std::cout).
inline void print_table(const Table& table) {
  table.print(std::cout);
  write_table_json(table);
}

}  // namespace acp::bench
