// ABL-3 — §6's open question, "Is slander useless?", answered
// experimentally for the naive design.
//
// Figure 1's DISTILL uses only positive reports. The veto variant
// (veto_fraction > 0) also drops candidates with many negative reports —
// which looks like a free improvement in benign runs (honest negatives
// kill decoys early) but hands the adversary a new weapon: timed, targeted
// slander of the good object vetoes it out of every candidate set.
//
// 2x2(+2) design: {veto off, veto on} x {silent, collusion+targeted
// slander}.
#include <iostream>

#include "acp/adversary/targeted_slander.hpp"
#include "bench_support.hpp"

namespace {

using namespace acp;

/// An eager flood (inflates S with hundreds of decoys so Step 1.3 cannot
/// finish the run by direct probing) plus targeted slander of the good
/// object (vetoes it out of C0 when the veto rule is on).
class ComboAdversary final : public Adversary {
 public:
  ComboAdversary(const DistillProtocol& observed) : slander_(observed) {}

  void initialize(const World& world, const Population& population) override {
    // Split the dishonest players between the two roles: even-indexed
    // collude, odd-indexed slander. Each sub-adversary sees a consistent
    // sub-population.
    std::vector<bool> flood_flags(population.num_players(), true);
    std::vector<bool> slander_flags(population.num_players(), true);
    const auto& dishonest = population.dishonest_players();
    for (std::size_t i = 0; i < dishonest.size(); ++i) {
      ((i % 2 == 0) ? flood_flags : slander_flags)[dishonest[i].value()] =
          false;
    }
    flood_pop_.emplace(std::move(flood_flags));
    slander_pop_.emplace(std::move(slander_flags));
    flood_.initialize(world, *flood_pop_);
    slander_.initialize(world, *slander_pop_);
  }

  void plan_round(const AdversaryContext& ctx, std::vector<Post>& out,
                  Rng& rng) override {
    flood_.plan_round(
        AdversaryContext{ctx.world, *flood_pop_, ctx.round, ctx.billboard},
        out, rng);
    slander_.plan_round(
        AdversaryContext{ctx.world, *slander_pop_, ctx.round, ctx.billboard},
        out, rng);
  }

 private:
  EagerVoteAdversary flood_;
  TargetedSlanderAdversary slander_;
  std::optional<Population> flood_pop_;
  std::optional<Population> slander_pop_;
};

}  // namespace

int main() {
  using namespace acp::bench;

  const std::size_t n = 1024;
  const double alpha = 0.25;
  const std::size_t trials = trials_from_env(20);

  print_header("ABL-3 (is slander useless?)",
               "DISTILL vs its negative-vote veto variant under targeted "
               "slander; m = n = 1024, alpha = 0.25, advice channel "
               "ablated to isolate the candidate machinery");

  acp::Table table({"veto", "adversary", "mean_probes", "rounds",
                    "success", "restart_frac"});

  for (double veto : {0.0, 0.25}) {
    for (bool attack : {false, true}) {
      acp::TrialPlan plan;
      plan.trials = trials;
      plan.base_seed = static_cast<std::uint64_t>(veto * 100) +
                       (attack ? 1 : 0);
      plan.threads = 1;
      const auto summaries = acp::run_trials_multi(
          plan, 4, [&](std::uint64_t seed) {
            acp::Rng rng(seed);
            const acp::World world = acp::make_simple_world(n, 1, rng);
            const acp::Population population =
                acp::Population::with_random_honest(
                    n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
            acp::DistillParams params;
            params.alpha = alpha;
            params.veto_fraction = veto;
            // Ablate the advice fast path so the candidate machinery —
            // the only thing the veto touches — carries the run.
            params.use_advice = false;
            acp::DistillProtocol protocol(params);
            std::unique_ptr<acp::Adversary> adversary;
            if (attack) {
              adversary = std::make_unique<ComboAdversary>(protocol);
            } else {
              adversary = std::make_unique<acp::SilentAdversary>();
            }
            const acp::RunResult result = acp::SyncEngine::run(
                world, population, protocol, *adversary,
                {.max_rounds = 20000, .seed = seed ^ 0xbeef});
            return std::vector<double>{
                result.mean_honest_probes(),
                static_cast<double>(result.rounds_executed),
                result.honest_success_fraction(),
                protocol.attempts_started() > 1 ? 1.0 : 0.0};
          });
      table.add_row({veto > 0 ? "on" : "off",
                     attack ? "flood+slander" : "silent",
                     acp::Table::cell(summaries[0].mean()),
                     acp::Table::cell(summaries[1].mean()),
                     acp::Table::cell(summaries[2].mean(), 4),
                     acp::Table::cell(summaries[3].mean(), 3)});
    }
  }

  print_table(table);
  std::cout << "\nshape check (a negative result, deliberately reported): "
               "slander is useless in BOTH directions here. With veto off "
               "it changes nothing by construction; with veto on, honest "
               "negatives drop flood decoys a bit faster, while the "
               "targeted slander of the good object only delays (probing "
               "is verification under local testing, so a vetoed good "
               "object is still found by direct probes of S). Figure 1's "
               "positive-only design loses nothing by ignoring slander — "
               "the open question's interesting regime is without local "
               "testing.\n";
  return 0;
}
