// TAB-4 — §4.1 (multiple votes and erroneous votes): cost vs the vote
// budget f, with and without honest reporting errors.
//
// Theory: the Theorem 4 asymptotics survive while f = o(1/(1-alpha)) —
// each extra vote slot multiplies the adversary's effective budget, so
// cost should degrade gracefully in f, and small honest error rates should
// be absorbed once f > 1.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const double alpha = 0.9;  // 1/(1-alpha) = 10: f sweeps through o(.) range
  const std::size_t trials = trials_from_env(20);

  print_header("TAB-4 (§4.1, f votes + erroneous votes)",
               "DISTILL cost vs vote budget f; m = n = 1024, alpha = 0.9, "
               "collusion adversary; err = honest false-positive rate");

  Table table({"f", "err", "mean_probes", "max_probes", "success"});

  for (std::size_t f : {1u, 2u, 4u, 8u, 16u}) {
    for (double err : {0.0, 0.05}) {
      PointConfig config;
      config.n = n;
      config.m = n;
      config.good = 1;
      config.alpha = alpha;

      const auto factory = [&]() -> std::unique_ptr<Protocol> {
        DistillParams p;
        p.alpha = alpha;
        p.votes_per_player = f;
        p.error_vote_prob = err;
        return std::make_unique<DistillProtocol>(p);
      };
      const AdversaryFactory adversary = [&](Protocol&) {
        return std::make_unique<CollusionAdversary>(std::max<std::size_t>(
            4, f));
      };

      const auto summaries =
          run_point(config, factory, adversary, trials, 700 + f);
      table.add_row({Table::cell(f), Table::cell(err),
                     Table::cell(summaries[kMeanProbes].mean()),
                     Table::cell(summaries[kMaxProbes].mean()),
                     Table::cell(summaries[kSuccess].mean(), 4)});
    }
  }

  print_table(table);
  std::cout << "\nshape check: cost degrades slowly while f << 1/(1-alpha) "
               "= 10; success stays 1.0 throughout; err=0.05 costs little "
               "once f > 1.\n";
  return 0;
}
