// TAB-3 — Theorem 13 (search without local testing): running DISTILL^HP
// with highest-reported votes for the prescribed horizon finds a good
// object for (nearly) every honest player, under a value-lying adversary.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 512;
  const double alpha = 0.75;
  const std::size_t trials = trials_from_env(15);

  print_header("TAB-3 (Theorem 13, no local testing)",
               "success fraction and horizon; top-beta goodness, "
               "m = n = 512, alpha = 0.75, value-liar adversary");

  Table table({"good_objects(beta*m)", "horizon", "success_mean",
               "success_min", "rounds_used"});

  for (std::size_t good : {1u, 4u, 16u, 64u}) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = 500 + good;
    plan.threads = 1;

    const double beta = static_cast<double>(good) / n;
    const DistillParams params =
        make_no_local_testing_params(alpha, beta, n);

    const auto summaries = run_trials_multi(
        plan, 2, [&](std::uint64_t seed) {
          Rng rng(seed);
          const World world = make_top_beta_world(n, good, rng);
          const Population population = Population::with_random_honest(
              n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
          DistillProtocol protocol(params);
          ValueLiarAdversary adversary;
          const RunResult result = SyncEngine::run(
              world, population, protocol, adversary,
              {.max_rounds = *params.horizon + 4, .seed = seed ^ 0x1234});
          return std::vector<double>{
              result.honest_success_fraction(),
              static_cast<double>(result.rounds_executed)};
        });

    table.add_row({Table::cell(good),
                   Table::cell(static_cast<long long>(*params.horizon)),
                   Table::cell(summaries[0].mean(), 4),
                   Table::cell(summaries[0].min(), 4),
                   Table::cell(summaries[1].mean())});
  }

  print_table(table);
  std::cout << "\nshape check: success ~1.0 across beta; horizon shrinks as "
               "good objects become plentiful.\n";
  return 0;
}
