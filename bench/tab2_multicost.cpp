// TAB-2 — Theorem 12 (general cost model): the cost-class schedule pays
// O(q0 * m log n / (alpha n)), i.e. proportional to the cheapest good
// object's cost q0 — while naive DISTILL over all objects pays for
// probing expensive classes even when a cheap good object exists.
#include <iostream>

#include "acp/core/cost_classes.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t trials = trials_from_env(15);
  const double alpha = 0.5;
  const std::size_t num_classes = 5;
  const std::size_t per_class = 32;
  const std::size_t n = 64;

  print_header("TAB-2 (Theorem 12, cost classes)",
               "mean cost paid per honest player vs the class of the "
               "cheapest good object; 5 cost classes x 32 objects");

  Table table({"cheapest_good_class", "q0~", "schedule_cost", "naive_cost",
               "theory q0*m*log n/(alpha n)"});

  for (std::size_t good_class : {0u, 1u, 2u, 3u, 4u}) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = 100 + good_class;
    plan.threads = 1;

    auto make_world = [&](std::uint64_t seed) {
      Rng rng(seed);
      CostClassWorldOptions opts;
      opts.num_classes = num_classes;
      opts.objects_per_class = per_class;
      opts.cheapest_good_class = good_class;
      return std::pair{make_cost_class_world(opts, rng),
                       Population::with_random_honest(
                           n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng)};
    };

    const Summary schedule_cost = run_trials(plan, [&](std::uint64_t seed) {
      auto [world, population] = make_world(seed);
      CostClassParams params;
      params.alpha = alpha;
      CostClassProtocol protocol(params);
      SilentAdversary adversary;
      return SyncEngine::run(world, population, protocol, adversary,
                             {.max_rounds = 500000, .seed = seed ^ 0x77})
          .mean_honest_cost();
    });

    const Summary naive_cost = run_trials(plan, [&](std::uint64_t seed) {
      auto [world, population] = make_world(seed);
      DistillParams params;
      params.alpha = alpha;
      DistillProtocol protocol(params);
      SilentAdversary adversary;
      return SyncEngine::run(world, population, protocol, adversary,
                             {.max_rounds = 500000, .seed = seed ^ 0x77})
          .mean_honest_cost();
    });

    const double q0 = static_cast<double>(std::size_t{1} << good_class);
    table.add_row(
        {Table::cell(good_class), Table::cell(q0, 0),
         Table::cell(schedule_cost.mean()), Table::cell(naive_cost.mean()),
         Table::cell(theory::theorem12_cost_bound(
             q0, alpha, n, num_classes * per_class))});
  }

  print_table(table);
  std::cout << "\nshape check: schedule_cost scales ~geometrically with the "
               "good class (tracking q0); naive_cost stays high even for "
               "cheap good objects.\n";
  return 0;
}
