// PERF — google-benchmark microbenchmarks of the substrates: billboard
// commit/ingest throughput, ledger window queries, engine round rate.
// These justify the simulator's scalability claims (millions of probes
// per second on one core).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "acp/adversary/strategies.hpp"
#include "acp/billboard/billboard.hpp"
#include "acp/billboard/vote_ledger.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/world/builders.hpp"
#include "acp/world/population.hpp"

namespace {

using namespace acp;

void BM_BillboardCommit(benchmark::State& state) {
  const auto posts_per_round = static_cast<std::size_t>(state.range(0));
  Billboard billboard(posts_per_round, 1024);
  Round round = 0;
  for (auto _ : state) {
    std::vector<Post> posts;
    posts.reserve(posts_per_round);
    for (std::size_t p = 0; p < posts_per_round; ++p) {
      posts.push_back(Post{PlayerId{p}, round,
                           ObjectId{p % 1024}, 0.5, (p % 3) == 0});
    }
    billboard.commit_round(round, std::move(posts));
    ++round;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(posts_per_round));
}
BENCHMARK(BM_BillboardCommit)->Arg(64)->Arg(1024);

void BM_LedgerIngest(benchmark::State& state) {
  const std::size_t n = 4096;
  Billboard billboard(n, n);
  for (Round r = 0; r < 64; ++r) {
    std::vector<Post> posts;
    for (std::size_t p = 0; p < n / 64; ++p) {
      const std::size_t author = static_cast<std::size_t>(r) * (n / 64) + p;
      posts.push_back(Post{PlayerId{author}, r, ObjectId{author % n}, 0.9,
                           true});
    }
    billboard.commit_round(r, std::move(posts));
  }
  for (auto _ : state) {
    VoteLedger ledger(VotePolicy::kFirstPositive, n, n, 1);
    ledger.ingest(billboard);
    benchmark::DoNotOptimize(ledger.events().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(billboard.size()));
}
BENCHMARK(BM_LedgerIngest);

void BM_LedgerWindowQuery(benchmark::State& state) {
  const std::size_t n = 4096;
  Billboard billboard(n, n);
  for (Round r = 0; r < 64; ++r) {
    std::vector<Post> posts;
    for (std::size_t p = 0; p < n / 64; ++p) {
      const std::size_t author = static_cast<std::size_t>(r) * (n / 64) + p;
      posts.push_back(Post{PlayerId{author}, r, ObjectId{author % 128}, 0.9,
                           true});
    }
    billboard.commit_round(r, std::move(posts));
  }
  VoteLedger ledger(VotePolicy::kFirstPositive, n, n, 1);
  ledger.ingest(billboard);
  for (auto _ : state) {
    const auto objects = ledger.objects_with_votes_in_window(16, 48, 2);
    benchmark::DoNotOptimize(objects.size());
  }
}
BENCHMARK(BM_LedgerWindowQuery);

void BM_DistillFullRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const World world = make_simple_world(n, 1, rng);
  const Population population =
      Population::with_prefix_honest(n, n * 9 / 10);
  std::uint64_t seed = 1;
  std::int64_t probes = 0;
  for (auto _ : state) {
    DistillParams params;
    params.alpha = 0.9;
    DistillProtocol protocol(params);
    SilentAdversary adversary;
    const RunResult result = SyncEngine::run(
        world, population, protocol, adversary,
        {.max_rounds = 100000, .seed = seed++});
    probes += result.total_honest_probes();
    benchmark::DoNotOptimize(result.rounds_executed);
  }
  state.SetItemsProcessed(probes);
  state.SetLabel("items = probes simulated");
}
BENCHMARK(BM_DistillFullRun)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EngineRoundRate(benchmark::State& state) {
  // Trivial-probe protocol isolates engine overhead per player-round.
  class NoopProtocol : public Protocol {
   public:
    void initialize(const WorldView& world, std::size_t) override {
      m_ = world.num_objects();
    }
    void on_round_begin(Round, const Billboard&) override {}
    std::optional<ObjectId> choose_probe(PlayerId, Round, Rng& rng) override {
      return ObjectId{rng.index(m_)};
    }
    StepOutcome on_probe_result(PlayerId, Round, ObjectId object,
                                double value, double, bool, Rng&) override {
      return StepOutcome{ProbeReport{object, value, false}, false};
    }

   private:
    std::size_t m_ = 0;
  };

  const std::size_t n = 1024;
  Rng rng(9);
  const World world = make_simple_world(n, 1, rng);
  const Population population = Population::with_prefix_honest(n, n);
  const auto rounds = static_cast<Round>(state.range(0));
  for (auto _ : state) {
    NoopProtocol protocol;
    SilentAdversary adversary;
    const RunResult result = SyncEngine::run(
        world, population, protocol, adversary,
        {.max_rounds = rounds, .seed = 3});
    benchmark::DoNotOptimize(result.total_posts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rounds) *
                          static_cast<std::int64_t>(n));
  state.SetLabel("items = player-rounds");
}
BENCHMARK(BM_EngineRoundRate)->Arg(16)->Arg(64);

}  // namespace

// Hand-rolled main (instead of BENCHMARK_MAIN) so ACP_BENCH_JSON=<dir>
// routes google-benchmark's own JSON reporter to the same place the table
// benches dump theirs: <dir>/BENCH_perf_substrate.json. Explicit
// --benchmark_out flags on the command line still win — injected flags
// come first and google-benchmark takes the last occurrence.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  if (const char* dir = std::getenv("ACP_BENCH_JSON"); dir != nullptr &&
                                                       *dir != '\0') {
    args.push_back(std::string("--benchmark_out=") + dir +
                   "/BENCH_perf_substrate.json");
    args.emplace_back("--benchmark_out_format=json");
  }
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  std::vector<char*> arg_ptrs;
  arg_ptrs.reserve(args.size() + 1);
  for (std::string& arg : args) arg_ptrs.push_back(arg.data());
  arg_ptrs.push_back(nullptr);
  int patched_argc = static_cast<int>(args.size());

  benchmark::Initialize(&patched_argc, arg_ptrs.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc,
                                             arg_ptrs.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
