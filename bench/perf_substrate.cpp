// PERF — microbenchmark suite of the simulation substrate: billboard
// commit throughput, ledger ingest (in-order and gossip-replica
// out-of-order), window queries at production scale (n=10k players,
// m=100k objects), a full DISTILL round at that scale, and a gossip
// round. These are the hot paths every protocol pays once per player per
// round; the suite justifies the simulator's scalability claims and CI
// gates gross regressions against the checked-in baseline
// (bench/BENCH_PERF.json, compared by scripts/check_perf.py).
//
// For the two paths this repo rewrote — the O(m)-scratch window query and
// the O(events) mid-vector insert for late replica posts — the suite also
// times a faithful reimplementation of the pre-rewrite code ("legacy_*"
// rows) and records the speedup, so the gain itself is a tested,
// machine-checked number rather than a claim in a commit message.
//
// Output: a table on stdout; under ACP_BENCH_JSON=<dir>, additionally
// <dir>/BENCH_PERF.json ("acp.perf.v1" — see docs/architecture.md,
// "Performance baseline"). ACP_PERF_REPS overrides the repetition count
// (median-of-reps is reported; strict parsing, like all ACP_BENCH_*
// knobs).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "acp/adversary/strategies.hpp"
#include "acp/billboard/billboard.hpp"
#include "acp/billboard/loadgen.hpp"
#include "acp/billboard/server.hpp"
#include "acp/billboard/vote_ledger.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/gossip/gossip_engine.hpp"
#include "acp/obs/bandwidth.hpp"
#include "acp/obs/json.hpp"
#include "acp/rng/rng.hpp"
#include "acp/stats/table.hpp"
#include "acp/world/builders.hpp"
#include "acp/world/population.hpp"
#include "bench_support.hpp"

namespace {

using namespace acp;

/// Optimization barrier for computed results (hand-rolled harness — no
/// google-benchmark dependency).
volatile std::uint64_t g_sink = 0;

void sink(std::uint64_t v) { g_sink = g_sink + v; }

struct BenchResult {
  std::string name;
  std::size_t reps = 0;
  std::int64_t items = 0;     // per repetition
  double ns_per_op = 0.0;     // median repetition / items
  double items_per_sec = 0.0;
  double total_ms = 0.0;      // wall time across all repetitions
};

/// Times `fn` `reps` times and reports the median repetition, normalized
/// by `items` operations per repetition.
BenchResult run_bench(const std::string& name, std::int64_t items,
                      std::size_t reps, const std::function<void()>& fn) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::nano>(
                          Clock::now() - start)
                          .count());
  }
  std::sort(samples.begin(), samples.end());
  const double median = samples[samples.size() / 2];
  BenchResult result;
  result.name = name;
  result.reps = reps;
  result.items = items;
  result.ns_per_op = median / static_cast<double>(items);
  result.items_per_sec = 1e9 * static_cast<double>(items) / median;
  double total = 0.0;
  for (const double s : samples) total += s;
  result.total_ms = total / 1e6;
  return result;
}

// ---------------------------------------------------------------------------
// Legacy reference implementations (the pre-rewrite substrate, verbatim in
// structure): these exist only to measure the speedup of the new paths.

/// Pre-rewrite objects_with_votes_in_window: a fresh O(m) scratch vector
/// allocated and zeroed on every call.
std::vector<ObjectId> legacy_objects_with_votes_in_window(
    const std::vector<VoteEvent>& events, const std::vector<Round>& rounds,
    std::size_t num_objects, Round begin, Round end, Count min_count) {
  const auto lo =
      std::lower_bound(rounds.begin(), rounds.end(), begin) - rounds.begin();
  const auto hi = std::lower_bound(rounds.begin() +
                                       static_cast<std::ptrdiff_t>(lo),
                                   rounds.end(), end) -
                  rounds.begin();
  std::vector<ObjectId> touched;
  std::vector<Count> scratch(num_objects, 0);
  for (auto idx = static_cast<std::size_t>(lo);
       idx < static_cast<std::size_t>(hi); ++idx) {
    const ObjectId obj = events[idx].object;
    if (scratch[obj.value()] == 0) touched.push_back(obj);
    ++scratch[obj.value()];
  }
  std::vector<ObjectId> result;
  for (const ObjectId obj : touched) {
    if (scratch[obj.value()] >= min_count) result.push_back(obj);
  }
  std::sort(result.begin(), result.end());
  return result;
}

/// Pre-rewrite record_vote event-log maintenance: an out-of-order post
/// pays an O(events) mid-vector insert into the global log (plus the
/// per-object list and voter dedup, kept for faithfulness).
struct LegacyVoteLog {
  std::vector<VoteEvent> events;
  std::vector<Round> event_rounds;
  std::vector<std::vector<Round>> object_rounds;
  std::vector<std::vector<PlayerId>> object_voters;

  explicit LegacyVoteLog(std::size_t num_objects)
      : object_rounds(num_objects), object_voters(num_objects) {}

  void record(PlayerId voter, ObjectId object, Round round) {
    if (events.empty() || round >= events.back().round) {
      events.push_back(VoteEvent{voter, object, round});
      event_rounds.push_back(round);
    } else {
      const auto at = std::upper_bound(event_rounds.begin(),
                                       event_rounds.end(), round) -
                      event_rounds.begin();
      events.insert(events.begin() + at, VoteEvent{voter, object, round});
      event_rounds.insert(event_rounds.begin() + at, round);
    }
    auto& rounds = object_rounds[object.value()];
    if (rounds.empty() || round >= rounds.back()) {
      rounds.push_back(round);
    } else {
      rounds.insert(std::upper_bound(rounds.begin(), rounds.end(), round),
                    round);
    }
    auto& voters = object_voters[object.value()];
    if (std::find(voters.begin(), voters.end(), voter) == voters.end()) {
      voters.push_back(voter);
    }
  }
};

/// Minimal protocol for the gossip substrate benches: the first
/// `posters` nodes post every round, everyone else idles, and nobody
/// halts (the run ends at max_rounds) — so the measured cost is pure
/// dissemination substrate work, not DISTILL phase machinery (whose
/// per-instance state is O(n + m) and cannot be replicated 100k times).
class LightFloodProtocol final : public Protocol {
 public:
  explicit LightFloodProtocol(std::size_t posters) : posters_(posters) {}

  void initialize(const WorldView&, std::size_t) override {}
  void on_round_begin(Round, const Billboard&) override {}

  [[nodiscard]] std::optional<ObjectId> choose_probe(PlayerId player, Round,
                                                     Rng&) override {
    if (player.value() >= posters_) return std::nullopt;
    return ObjectId{0};
  }

  StepOutcome on_probe_result(PlayerId player, Round round, ObjectId, double,
                              double, bool, Rng&) override {
    StepOutcome step;
    step.post = ProbeReport{
        ObjectId{0}, static_cast<double>(player.value() * 131 +
                                         static_cast<std::size_t>(round)),
        true};
    return step;
  }

 private:
  std::size_t posters_;
};

// ---------------------------------------------------------------------------
// Fixtures.

/// Production-scale ledger: n=10k players, f=10 votes each, m=100k
/// objects, 100k vote events spread over a 10k-round horizon (one object
/// per event). Narrow windows over a long sparse history is the shape
/// DISTILL's phase transitions query — and the shape where the
/// pre-rewrite per-call O(m) scratch allocation, not the window scan,
/// dominates.
struct WindowQueryFixture {
  static constexpr std::size_t kPlayers = 10000;
  static constexpr std::size_t kObjects = 100000;
  static constexpr Round kRounds = 10000;
  static constexpr std::size_t kPostsPerRound = 10;

  Billboard billboard{kPlayers, kObjects};
  VoteLedger ledger{VotePolicy::kFirstPositive, kPlayers, kObjects,
                    /*votes_per_player=*/10};

  WindowQueryFixture() {
    for (Round r = 0; r < kRounds; ++r) {
      std::vector<Post> posts;
      posts.reserve(kPostsPerRound);
      for (std::size_t j = 0; j < kPostsPerRound; ++j) {
        const std::size_t id =
            static_cast<std::size_t>(r) * kPostsPerRound + j;
        posts.push_back(
            Post{PlayerId{id % kPlayers}, r, ObjectId{id % kObjects}, 0.9,
                 true});
      }
      billboard.commit_round(r, std::move(posts));
    }
    ledger.ingest(billboard);
  }
};

/// The gossip-replica workload of the acceptance bar: 1e5 late-stamped
/// posts (origin rounds 0..99, shuffled arrival) committed in 100 batches
/// to a kReplica billboard, ingested batch-by-batch like the engine does.
struct ReplicaOutOfOrderFixture {
  static constexpr std::size_t kPlayers = 10000;
  static constexpr std::size_t kObjects = 100000;
  static constexpr std::size_t kPosts = 100000;
  static constexpr std::size_t kBatch = 1000;
  static constexpr Round kOriginRounds = 100;

  std::vector<Post> arrival_order;

  ReplicaOutOfOrderFixture() {
    arrival_order.reserve(kPosts);
    for (std::size_t id = 0; id < kPosts; ++id) {
      arrival_order.push_back(Post{PlayerId{id % kPlayers},
                                   static_cast<Round>(id / kBatch),
                                   ObjectId{id % kObjects}, 0.9, true});
    }
    Rng rng(1234);
    for (std::size_t i = arrival_order.size(); i > 1; --i) {
      std::swap(arrival_order[i - 1], arrival_order[rng.index(i)]);
    }
  }

  /// One full replica ingestion through the real VoteLedger.
  void run_new() const {
    Billboard board(kPlayers, kObjects, Billboard::Mode::kReplica);
    board.reserve(kPosts);
    VoteLedger ledger(VotePolicy::kFirstPositive, kPlayers, kObjects,
                      /*votes_per_player=*/10);
    Round commit_round = kOriginRounds;
    for (std::size_t begin = 0; begin < kPosts; begin += kBatch) {
      board.commit_round_from(
          commit_round++,
          std::span<const Post>(arrival_order.data() + begin, kBatch));
      ledger.ingest(board);
    }
    sink(ledger.events().size());
  }

  /// The same stream through the pre-rewrite per-post insert path.
  void run_legacy() const {
    LegacyVoteLog log(kObjects);
    for (const Post& post : arrival_order) {
      log.record(post.author, post.object, post.round);
    }
    sink(log.events.size());
  }
};

// ---------------------------------------------------------------------------

std::size_t reps_from_env(std::size_t default_reps) {
  return bench::detail::positive_count_from_env("ACP_PERF_REPS",
                                                default_reps);
}

struct SpeedupRecord {
  std::string name;      // the fast (new) bench
  std::string baseline;  // the legacy reference bench
  double speedup = 0.0;
};

/// Measured gossip wire cost (bits per round, all gossip channels) of the
/// digest and exchange substrates on the same workload; see the
/// gossip_wire_n512_f12 block in main().
struct WireRecord {
  double digest_bits_per_round = 0.0;
  double exchange_bits_per_round = 0.0;
  double reduction = 0.0;
};

/// Billboard service over a real Unix socket: the bbload workload run
/// in-process against a BillboardServer (median-of-reps), one record per
/// server geometry (t1/t2/t4 IO threads, plus a pipelined t1 run). Gated
/// by scripts/check_perf.py: posts_per_sec floor, errors == 0, a t1->t4
/// scaling floor (when the machine has the cores), and a p99 regression
/// ratio against the checked-in baseline.
struct ServiceRecord {
  std::string name = "billboard_service_unix";
  std::size_t io_threads = 1;
  std::size_t pipeline = 1;
  std::size_t clients = 0;
  std::uint64_t posts = 0;
  double posts_per_sec = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t query_p50_ns = 0;
  std::uint64_t query_p99_ns = 0;
  std::uint64_t errors = 0;
};

/// Commit pipelining on the identical 512-client workload: 16 in-flight
/// commits per connection vs one. Same process, same machine, same
/// workload — a machine-independent ratio with a hard floor (default 3x)
/// in scripts/check_perf.py, because pipelining collapses per-commit
/// round trips regardless of the hardware underneath.
struct PipelineRecord {
  std::string name = "billboard_service_pipeline16_vs_single";
  std::size_t clients = 0;
  double single_posts_per_sec = 0.0;
  double pipelined_posts_per_sec = 0.0;
  double speedup = 0.0;
};

void write_perf_json(const std::vector<BenchResult>& results,
                     const std::vector<SpeedupRecord>& speedups,
                     const WireRecord& wire,
                     const std::vector<ServiceRecord>& services,
                     const PipelineRecord& pipelining) {
  const char* dir = std::getenv("ACP_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_PERF.json";
  std::ofstream file(path);
  if (!file) {
    std::cerr << "ACP_BENCH_JSON: cannot open " << path << "\n";
    return;
  }
  obs::JsonWriter json(file);
  json.begin_object();
  json.member("schema", "acp.perf.v1");
  json.member("id", "PERF");
  // Thread count of the machine that produced the file: the parallel
  // scaling gate in scripts/check_perf.py only applies when the producing
  // machine actually had the cores (>= 4) to demonstrate scaling.
  json.member("hw_threads",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.member("claim",
              "Substrate hot paths at production scale; legacy_* rows "
              "re-measure the pre-rewrite implementations");
  json.key("benches").begin_array();
  for (const BenchResult& r : results) {
    json.begin_object();
    json.member("name", r.name);
    json.member("reps", static_cast<std::uint64_t>(r.reps));
    json.member("items", static_cast<std::int64_t>(r.items));
    json.member("ns_per_op", r.ns_per_op);
    json.member("items_per_sec", r.items_per_sec);
    json.member("total_ms", r.total_ms);
    json.end_object();
  }
  json.end_array();
  json.key("speedups").begin_array();
  for (const SpeedupRecord& s : speedups) {
    json.begin_object();
    json.member("name", s.name);
    json.member("baseline", s.baseline);
    json.member("speedup", s.speedup);
    json.end_object();
  }
  json.end_array();
  json.key("wire").begin_object();
  json.member("name", "gossip_wire_n512_f12");
  json.member("digest_bits_per_round", wire.digest_bits_per_round);
  json.member("exchange_bits_per_round", wire.exchange_bits_per_round);
  json.member("reduction", wire.reduction);
  json.end_object();
  json.key("services").begin_array();
  for (const ServiceRecord& service : services) {
    json.begin_object();
    json.member("name", service.name);
    json.member("io_threads", static_cast<std::uint64_t>(service.io_threads));
    json.member("pipeline", static_cast<std::uint64_t>(service.pipeline));
    json.member("clients", static_cast<std::uint64_t>(service.clients));
    json.member("posts", service.posts);
    json.member("posts_per_sec", service.posts_per_sec);
    json.member("queries", service.queries);
    json.member("query_p50_ns", service.query_p50_ns);
    json.member("query_p99_ns", service.query_p99_ns);
    json.member("errors", service.errors);
    json.end_object();
  }
  json.end_array();
  json.key("service_pipelining").begin_object();
  json.member("name", pipelining.name);
  json.member("clients", static_cast<std::uint64_t>(pipelining.clients));
  json.member("single_posts_per_sec", pipelining.single_posts_per_sec);
  json.member("pipelined_posts_per_sec", pipelining.pipelined_posts_per_sec);
  json.member("speedup", pipelining.speedup);
  json.end_object();
  json.end_object();
  file << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "PERF substrate microbenchmarks",
      "Hot-path throughput of billboard/ledger/engine substrates; "
      "legacy_* rows are the pre-rewrite implementations (speedup table "
      "below).");

  const std::size_t reps = reps_from_env(5);
  std::vector<BenchResult> results;
  const auto record = [&](BenchResult r) {
    std::cout << "  " << r.name << ": " << r.ns_per_op << " ns/op, "
              << r.items_per_sec / 1e6 << " M items/s\n";
    results.push_back(std::move(r));
    return results.back();
  };

  // --- Billboard commit throughput: 256 rounds x 1024 posts.
  {
    constexpr std::size_t kPostsPerRound = 1024;
    constexpr Round kRounds = 256;
    record(run_bench(
        "billboard_commit_1k",
        static_cast<std::int64_t>(kPostsPerRound) * kRounds, reps, [&] {
          Billboard billboard(kPostsPerRound, 1024);
          billboard.reserve(kPostsPerRound * static_cast<std::size_t>(kRounds));
          std::vector<Post> posts;
          for (Round round = 0; round < kRounds; ++round) {
            posts.clear();
            for (std::size_t p = 0; p < kPostsPerRound; ++p) {
              posts.push_back(Post{PlayerId{p}, round, ObjectId{p % 1024},
                                   0.5, (p % 3) == 0});
            }
            billboard.commit_round_from(round, posts);
          }
          sink(billboard.size());
        }));
  }

  // --- In-order (authoritative) ledger ingest.
  {
    constexpr std::size_t kPlayers = 4096;
    Billboard billboard(kPlayers, kPlayers);
    for (Round r = 0; r < 64; ++r) {
      std::vector<Post> posts;
      for (std::size_t p = 0; p < kPlayers / 64; ++p) {
        const std::size_t author =
            static_cast<std::size_t>(r) * (kPlayers / 64) + p;
        posts.push_back(
            Post{PlayerId{author}, r, ObjectId{author % kPlayers}, 0.9,
                 true});
      }
      billboard.commit_round(r, std::move(posts));
    }
    record(run_bench("ledger_ingest_inorder",
                     static_cast<std::int64_t>(billboard.size()), reps, [&] {
                       VoteLedger ledger(VotePolicy::kFirstPositive, kPlayers,
                                         kPlayers, 1);
                       ledger.ingest(billboard);
                       sink(ledger.events().size());
                     }));
  }

  // --- Window queries at n=10k/m=100k (the acceptance benchmark), new
  // vs legacy. 997 sliding windows of width 2 per repetition.
  {
    const WindowQueryFixture fixture;
    std::vector<Round> event_rounds;
    event_rounds.reserve(fixture.ledger.events().size());
    for (const VoteEvent& e : fixture.ledger.events()) {
      event_rounds.push_back(e.round);
    }
    constexpr std::int64_t kQueries = 997;
    const BenchResult fast = record(run_bench(
        "window_query_n10k_m100k", kQueries, reps, [&] {
          for (Round r = 0; r < kQueries; ++r) {
            const auto objects =
                fixture.ledger.objects_with_votes_in_window(r, r + 2, 1);
            sink(objects.size());
          }
        }));
    const BenchResult legacy = record(run_bench(
        "legacy_window_query_n10k_m100k", kQueries, reps, [&] {
          for (Round r = 0; r < kQueries; ++r) {
            const auto objects = legacy_objects_with_votes_in_window(
                fixture.ledger.events(), event_rounds,
                WindowQueryFixture::kObjects, r, r + 2, 1);
            sink(objects.size());
          }
        }));
    std::cout << "  -> window query speedup: "
              << legacy.ns_per_op / fast.ns_per_op << "x\n";
  }

  // --- Replica out-of-order ingest of 1e5 late posts (the acceptance
  // benchmark), new vs legacy. The legacy path is quadratic, so it runs
  // fewer repetitions.
  {
    const ReplicaOutOfOrderFixture fixture;
    const BenchResult fast = record(run_bench(
        "replica_ooo_ingest_100k", ReplicaOutOfOrderFixture::kPosts, reps,
        [&] { fixture.run_new(); }));
    const BenchResult legacy = record(run_bench(
        "legacy_replica_ooo_ingest_100k", ReplicaOutOfOrderFixture::kPosts,
        /*reps=*/1, [&] { fixture.run_legacy(); }));
    std::cout << "  -> replica ingest speedup: "
              << legacy.ns_per_op / fast.ns_per_op << "x\n";
  }

  // --- Full DISTILL rounds at n=10k players, m=100k objects.
  {
    constexpr std::size_t kPlayers = 10000;
    constexpr std::size_t kObjects = 100000;
    constexpr Round kMaxRounds = 32;
    Rng rng(7);
    const World world = make_simple_world(kObjects, 1, rng);
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers * 9 / 10);
    std::uint64_t seed = 1;
    record(run_bench(
        "distill_round_n10k_m100k",
        static_cast<std::int64_t>(kPlayers) * kMaxRounds, reps, [&] {
          DistillParams params;
          params.alpha = 0.9;
          DistillProtocol protocol(params);
          SilentAdversary adversary;
          const RunResult result =
              SyncEngine::run(world, population, protocol, adversary,
                              {.max_rounds = kMaxRounds, .seed = seed++});
          sink(static_cast<std::uint64_t>(result.total_posts));
        }));
  }

  // --- Parallel round kernel scaling: full DISTILL runs at n=100k
  // players, m=100k objects, with engine_threads in {1, 2, 4, 8}. The t1
  // row takes the sequential schedule policy (threads <= 1), so it is the
  // true single-thread baseline; tests/parallel_kernel_test.cpp pins every
  // thread count to bit-identical results, so the rows differ only in
  // wall time. scripts/check_perf.py gates the t1/t4 ratio (and t1/t8 on
  // >= 8-thread machines), but only when the recorded hw_threads suffice
  // — on smaller machines the rows are still written, just not gated.
  //
  // Allocation note: the kernel now recycles its slice-post staging
  // buffer across rounds (Billboard::commit_round_from copies out of the
  // retained vector instead of consuming a moved-from one), so these
  // rows no longer pay a fresh n-sized post-vector allocation + regrowth
  // every round; after the first round the staging path is
  // allocation-free.
  {
    constexpr std::size_t kPlayers = 100000;
    constexpr std::size_t kObjects = 100000;
    constexpr Round kMaxRounds = 8;
    Rng rng(13);
    const World world = make_simple_world(kObjects, 1, rng);
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers * 9 / 10);
    std::uint64_t seed = 21;
    constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
    for (const std::size_t threads : kThreadCounts) {
      record(run_bench(
          "distill_parallel_round_n100k_t" + std::to_string(threads),
          static_cast<std::int64_t>(kPlayers) * kMaxRounds, reps, [&] {
            DistillParams params;
            params.alpha = 0.9;
            DistillProtocol protocol(params);
            SilentAdversary adversary;
            SyncRunConfig config;
            config.max_rounds = kMaxRounds;
            config.seed = seed++;
            config.engine_threads = threads;
            const RunResult result = SyncEngine::run(world, population,
                                                     protocol, adversary,
                                                     config);
            sink(static_cast<std::uint64_t>(result.total_posts));
          }));
    }
  }

  // --- Parallel round kernel at n=1M players: the population size the
  // ROADMAP's Õ(√n)-sampling sweeps (PAPERS.md, "Breaking the O(n²) Bit
  // Barrier") need to run at. Fewer rounds and fixed reps keep the row
  // affordable; t1 vs t8 records the scaling headroom at the scale that
  // matters. Not gated by check_perf.py — the n100k rows carry the
  // scaling gate; these rows track the absolute ns/op trajectory.
  {
    constexpr std::size_t kPlayers = 1000000;
    constexpr std::size_t kObjects = 100000;
    constexpr Round kMaxRounds = 4;
    Rng rng(31);
    const World world = make_simple_world(kObjects, 1, rng);
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers * 9 / 10);
    std::uint64_t seed = 37;
    constexpr std::size_t kThreadCounts[] = {1, 8};
    for (const std::size_t threads : kThreadCounts) {
      record(run_bench(
          "distill_parallel_round_n1m_t" + std::to_string(threads),
          static_cast<std::int64_t>(kPlayers) * kMaxRounds, /*reps=*/2, [&] {
            DistillParams params;
            params.alpha = 0.9;
            DistillProtocol protocol(params);
            SilentAdversary adversary;
            SyncRunConfig config;
            config.max_rounds = kMaxRounds;
            config.seed = seed++;
            config.engine_threads = threads;
            const RunResult result = SyncEngine::run(world, population,
                                                     protocol, adversary,
                                                     config);
            sink(static_cast<std::uint64_t>(result.total_posts));
          }));
    }
  }

  // --- Gossip rounds: n=512 replicas at the substrate's operating
  // point — 16 posters feeding a push-pull fanout-12 overlay, digest
  // contacts on the lazy 8-round anti-entropy cadence. The exchange
  // substrate re-ships every fresh post down every link every round
  // (2*fanout duplicate deliveries per post per node, each paying a dedup
  // probe); the digest substrate ships each post once and amortizes its
  // control traffic over multi-round delta ranges. The legacy_ row runs
  // the identical workload and config on the retained exchange path, so
  // the rewrite's gain is a measured in-process ratio. (On saturated
  // all-post workloads the two substrates converge to within ~1.5x of
  // each other — every author advancing every round is the digest's
  // worst case; see docs/architecture.md, "Gossip substrate".)
  {
    constexpr std::size_t kPlayers = 512;
    constexpr std::size_t kPosters = 16;
    constexpr Round kMaxRounds = 64;
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers * 9 / 10);
    Rng rng(9);
    const World world = make_simple_world(64, 1, rng);
    const auto gossip_bench = [&](const std::string& name,
                                  GossipSubstrate substrate) {
      std::uint64_t seed = 11;
      record(run_bench(
          name, static_cast<std::int64_t>(kPlayers) * kMaxRounds, reps, [&,
          substrate]() mutable {
            SilentAdversary adversary;
            GossipConfig config;
            config.fanout = 12;
            config.pull = true;
            config.substrate = substrate;
            config.contact_interval = 8;  // digest only; exchange ignores
            config.max_rounds = kMaxRounds;
            config.seed = seed++;
            const RunResult result = GossipEngine::run(
                world, population,
                [&] { return std::make_unique<LightFloodProtocol>(kPosters); },
                adversary, config);
            sink(static_cast<std::uint64_t>(result.total_posts));
          }));
    };
    gossip_bench("gossip_round_n512", GossipSubstrate::kDigest);
    gossip_bench("legacy_gossip_round_n512", GossipSubstrate::kExchange);
  }

  // --- Gossip substrate at n=100k replicas: 256 posters flooding for 8
  // rounds over 100k nodes. SeqTracker replicas are O(posting authors),
  // so 100k of them fit easily; the row times pure dissemination and
  // commit cost per node-round at cluster scale. Repair is off here:
  // staggered full syncs make the digest substrate deliver far more of
  // the flood within the 8-round window than exchange ever does, which
  // is a completeness win but not an overhead comparison.
  {
    constexpr std::size_t kPlayers = 100000;
    constexpr std::size_t kPosters = 256;
    constexpr Round kMaxRounds = 8;
    Rng rng(19);
    const World world = make_simple_world(64, 1, rng);
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers);
    const auto gossip_100k = [&](const std::string& name,
                                 GossipSubstrate substrate) {
      std::uint64_t seed = 29;
      return record(run_bench(
          name, static_cast<std::int64_t>(kPlayers) * kMaxRounds, reps, [&,
          substrate]() mutable {
            SilentAdversary adversary;
            GossipConfig config;
            config.fanout = 2;
            config.substrate = substrate;
            config.repair_interval = 0;
            config.max_rounds = kMaxRounds;
            config.seed = seed++;
            const RunResult result = GossipEngine::run(
                world, population,
                [&] { return std::make_unique<LightFloodProtocol>(kPosters); },
                adversary, config);
            sink(static_cast<std::uint64_t>(result.total_posts));
          }));
    };
    const BenchResult fast =
        gossip_100k("gossip_round_n100k", GossipSubstrate::kDigest);
    const BenchResult legacy =
        gossip_100k("legacy_gossip_round_n100k", GossipSubstrate::kExchange);
    std::cout << "  -> gossip n100k digest vs exchange: "
              << legacy.ns_per_op / fast.ns_per_op << "x\n";
  }

  // --- Gossip wire cost at the duplication-heavy operating point:
  // n=512, fanout 12, push-pull, 10% loss, 10% Byzantine absorbers, 32
  // posters, digest contacts on the lazy 16-round cadence. This is where
  // exchange-everything hurts — every node re-ships its whole fresh set
  // ~24x per round, absorbers receive full payloads they drop — and
  // where digests pay for themselves: a post crosses each link once as a
  // delta range covering many rounds of advances, everything else is
  // compact control traffic. Recorded in the "wire" section and gated by
  // scripts/check_perf.py --min-wire-reduction.
  WireRecord wire;
  {
    constexpr std::size_t kPlayers = 512;
    constexpr std::size_t kPosters = 32;
    constexpr Round kMaxRounds = 64;
    Rng rng(17);
    const World world = make_simple_world(64, 1, rng);
    const Population population =
        Population::with_prefix_honest(kPlayers, kPlayers * 9 / 10);
    const auto measure_bits = [&](GossipSubstrate substrate) {
      SilentAdversary adversary;
      GossipConfig config;
      config.fanout = 12;
      config.pull = true;
      config.loss_prob = 0.1;
      config.substrate = substrate;
      config.contact_interval = 16;  // digest only; exchange ignores
      config.max_rounds = kMaxRounds;
      config.seed = 23;
      obs::BandwidthMeter::global().reset();
      obs::BandwidthMeter::set_enabled(true);
      const RunResult result = GossipEngine::run(
          world, population,
          [&] { return std::make_unique<LightFloodProtocol>(kPosters); },
          adversary, config);
      obs::BandwidthMeter::set_enabled(false);
      const obs::BandwidthSnapshot snap =
          obs::BandwidthMeter::global().snapshot();
      obs::BandwidthMeter::global().reset();
      const auto channel_bits = [&](obs::IoChannel channel) {
        return snap.channels[static_cast<std::size_t>(channel)].write_bits;
      };
      const std::uint64_t bits =
          channel_bits(obs::IoChannel::kGossipExchange) +
          channel_bits(obs::IoChannel::kGossipDigest) +
          channel_bits(obs::IoChannel::kGossipDelta);
      return static_cast<double>(bits) /
             static_cast<double>(std::max<Round>(result.rounds_executed, 1));
    };
    wire.digest_bits_per_round = measure_bits(GossipSubstrate::kDigest);
    wire.exchange_bits_per_round = measure_bits(GossipSubstrate::kExchange);
    wire.reduction = wire.exchange_bits_per_round /
                     std::max(wire.digest_bits_per_round, 1.0);
    std::cout << "  gossip_wire_n512_f12: digest "
              << wire.digest_bits_per_round / 1e3 << " kbit/round, exchange "
              << wire.exchange_bits_per_round / 1e3
              << " kbit/round -> reduction " << wire.reduction << "x\n";
  }

  // --- Billboard service over a Unix socket: the bbload client swarm
  // (tools/bbload shares run_loadgen) against an in-process
  // BillboardServer. 512 concurrent connections spread over 8 shared
  // replica boards; the posts phase measures steady-state ingest, the
  // query phase times every window query for the p50/p99 tail. The same
  // workload runs against three server geometries (1/2/4 IO threads,
  // boards sharded across them) for the service-scaling gate in
  // scripts/check_perf.py, then once more at t1 with 16 in-flight
  // commits per connection for the service_pipelining ratio (hard >= 3x
  // floor: pipelining collapses per-commit round trips, so the ratio is
  // machine-independent). Server and clients share whatever cores the
  // machine has — these rows are same-machine regression pins for the
  // RPC + framing + epoll path, not capacity claims (tools/bbload at
  // 10k+ clients is the capacity run; see the billboard-service CI job).
  std::vector<ServiceRecord> services;
  const auto run_service = [&](std::string name, std::size_t io_threads,
                               std::size_t pipeline) {
    const std::string path = "/tmp/acp-perf-bb-" +
                             std::to_string(::getpid()) + "-" + name +
                             ".sock";
    BillboardServer::Options server_options;
    server_options.io_threads = io_threads;
    server_options.shards = 8;  // stable board placement across t1/t2/t4
    BillboardServer server(net::Endpoint::parse("socket:" + path),
                           server_options);
    server.start();
    LoadgenOptions options;
    options.endpoint = server.endpoint();
    options.clients = 512;
    // Enough commits per connection for a 16-deep pipeline window to
    // actually fill (at 4 batches the window never exceeded 4).
    options.batches = 16;
    options.batch_posts = 8;
    options.queries = 4;
    options.players = 512;
    options.objects = 256;
    options.pipeline = pipeline;
    std::vector<LoadgenReport> reports;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      // Fresh boards per rep, spread across every shard.
      options.board_list.clear();
      for (std::size_t b = 0; b < 8; ++b) {
        options.board_list.push_back(name + "-" + std::to_string(rep) + "." +
                                     std::to_string(b));
      }
      options.seed = rep + 1;
      reports.push_back(run_loadgen(options));
    }
    server.stop();
    // Median posts/sec and median p99 across repetitions (independently:
    // the two phases are timed separately and jitter independently).
    ServiceRecord service;
    service.name = std::move(name);
    service.io_threads = io_threads;
    service.pipeline = pipeline;
    std::vector<double> rates;
    std::vector<std::uint64_t> p99s;
    for (const LoadgenReport& r : reports) {
      rates.push_back(r.posts_per_sec);
      p99s.push_back(r.query_p99_ns);
      service.posts = r.posts;
      service.queries = r.queries;
      service.errors += r.errors;
    }
    std::sort(rates.begin(), rates.end());
    std::sort(p99s.begin(), p99s.end());
    service.clients = options.clients;
    service.posts_per_sec = rates[rates.size() / 2];
    service.query_p50_ns = reports[reports.size() / 2].query_p50_ns;
    service.query_p99_ns = p99s[p99s.size() / 2];
    std::cout << "  " << service.name << ": " << service.clients
              << " clients, " << service.posts_per_sec / 1e3
              << " k posts/s, query p99 "
              << static_cast<double>(service.query_p99_ns) / 1e3 << " us, "
              << service.errors << " errors\n";
    services.push_back(service);
    return service;
  };
  const ServiceRecord service_t1 =
      run_service("billboard_service_unix_t1", 1, 1);
  run_service("billboard_service_unix_t2", 2, 1);
  run_service("billboard_service_unix_t4", 4, 1);
  const ServiceRecord service_piped =
      run_service("billboard_service_unix_t1_pipe16", 1, 16);
  PipelineRecord pipelining;
  pipelining.clients = service_t1.clients;
  pipelining.single_posts_per_sec = service_t1.posts_per_sec;
  pipelining.pipelined_posts_per_sec = service_piped.posts_per_sec;
  pipelining.speedup =
      service_t1.posts_per_sec > 0.0
          ? service_piped.posts_per_sec / service_t1.posts_per_sec
          : 0.0;
  std::cout << "  " << pipelining.name << ": "
            << pipelining.pipelined_posts_per_sec / 1e3 << " k vs "
            << pipelining.single_posts_per_sec / 1e3 << " k posts/s -> "
            << pipelining.speedup << "x\n";

  // --- Results table + speedups.
  Table table({"bench", "reps", "items", "ns/op", "items/s", "total ms"});
  for (const BenchResult& r : results) {
    table.add_row({r.name, Table::cell(r.reps),
                   Table::cell(static_cast<std::size_t>(r.items)),
                   Table::cell(r.ns_per_op, 1), Table::cell(r.items_per_sec, 0),
                   Table::cell(r.total_ms, 1)});
  }
  table.print(std::cout);

  const auto find_result = [&](const std::string& name) -> const BenchResult& {
    for (const BenchResult& r : results) {
      if (r.name == name) return r;
    }
    std::cerr << "missing bench result: " << name << "\n";
    std::exit(1);
  };
  std::vector<SpeedupRecord> speedups;
  for (const auto& [fast, legacy] :
       std::vector<std::pair<std::string, std::string>>{
           {"window_query_n10k_m100k", "legacy_window_query_n10k_m100k"},
           {"replica_ooo_ingest_100k", "legacy_replica_ooo_ingest_100k"},
           {"gossip_round_n512", "legacy_gossip_round_n512"}}) {
    speedups.push_back(SpeedupRecord{
        fast, legacy,
        find_result(legacy).ns_per_op / find_result(fast).ns_per_op});
  }
  Table speedup_table({"bench", "vs legacy", "speedup"});
  for (const SpeedupRecord& s : speedups) {
    speedup_table.add_row({s.name, s.baseline, Table::cell(s.speedup, 1)});
  }
  speedup_table.print(std::cout);

  write_perf_json(results, speedups, wire, services, pipelining);
  return 0;
}
