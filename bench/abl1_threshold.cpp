// ABL-1 — Ablation of Step 2.2's survival threshold n/(4 c_t).
//
// The paper picks half the expected vote count (divisor 4). A stricter
// threshold (divisor 2) drops the good object too often (more failed
// attempts); a laxer one (divisor 8+) lets the adversary keep more bad
// candidates alive per vote. The bench measures the cost of each choice
// under the split-vote adversary.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const double alpha = 0.25;
  const std::size_t trials = trials_from_env(20);

  print_header("ABL-1 (survival threshold divisor)",
               "DISTILL cost vs survival divisor d (threshold n/(d c_t)); "
               "m = n = 1024, alpha = 0.25, split-vote adversary");

  Table table({"divisor", "mean_probes", "max_probes", "rounds",
               "restart_frac"});

  for (double divisor : {1.1, 1.5, 2.0, 4.0, 8.0, 16.0}) {
    TrialPlan plan;
    plan.trials = trials;
    plan.base_seed = static_cast<std::uint64_t>(divisor * 10);
    plan.threads = 1;
    const auto summaries = run_trials_multi(
        plan, 4, [&](std::uint64_t seed) {
          Rng rng(seed);
          const World world = make_simple_world(n, 1, rng);
          const Population population = Population::with_random_honest(
              n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
          DistillParams params;
          params.alpha = alpha;
          params.survival_divisor = divisor;
          DistillProtocol protocol(params);
          SplitVoteAdversary adversary(protocol);
          const RunResult result =
              SyncEngine::run(world, population, protocol, adversary,
                              {.max_rounds = 500000, .seed = seed ^ 0xfeed});
          return std::vector<double>{
              result.mean_honest_probes(),
              static_cast<double>(result.max_honest_probes()),
              static_cast<double>(result.rounds_executed),
              protocol.attempts_started() > 1 ? 1.0 : 0.0};
        });
    table.add_row({Table::cell(divisor, 1),
                   Table::cell(summaries[0].mean()),
                   Table::cell(summaries[1].mean()),
                   Table::cell(summaries[2].mean()),
                   Table::cell(summaries[3].mean(), 3)});
  }

  print_table(table);
  std::cout << "\nshape check: a strict threshold (divisor near 1) drops "
               "the good object and restarts attempts; lax thresholds let "
               "the adversary keep more decoys per vote. The paper's "
               "divisor 4 avoids restarts at modest cost — and because the "
               "split-vote adversary re-prices its votes to the threshold, "
               "mean cost is otherwise flat across divisors.\n";
  return 0;
}
