// TAB-8 — §1.2's synchrony-from-timestamps remark, made concrete: DISTILL
// run natively in the synchronous engine vs. through the LockstepAdapter
// inside the asynchronous engine, under different fair schedules. The
// per-player costs must coincide exactly; the async run additionally pays
// free "wait" activations that the table reports as overhead steps.
#include <iostream>

#include "acp/engine/lockstep.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t trials = trials_from_env(15);
  const double alpha = 0.5;

  print_header("TAB-8 (synchronizer, §1.2)",
               "DISTILL native-sync vs lockstep-over-async; per-player "
               "probes must match exactly under fair schedules");

  Table table({"n=m", "schedule", "sync_mean_probes", "lockstep_mean_probes",
               "exact_match", "async_steps", "steps/(n*rounds)"});

  for (std::size_t n : {64u, 256u, 1024u}) {
    struct NamedScheduler {
      std::string name;
      std::function<std::unique_ptr<Scheduler>()> make;
    };
    const std::vector<NamedScheduler> schedulers = {
        {"round-robin", [] { return std::make_unique<RoundRobinScheduler>(); }},
        {"random", [] { return std::make_unique<RandomScheduler>(); }},
    };

    for (const auto& scheduler : schedulers) {
      double sync_mean = 0.0;
      double lockstep_mean = 0.0;
      double steps = 0.0;
      double step_ratio = 0.0;
      bool exact = true;

      for (std::uint64_t t = 0; t < trials; ++t) {
        Rng rng(n + t);
        const World world = make_simple_world(n, 1, rng);
        const Population population = Population::with_random_honest(
            n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);

        RunResult sync_result;
        {
          DistillParams params;
          params.alpha = alpha;
          DistillProtocol protocol(params);
          EagerVoteAdversary adversary;
          sync_result = SyncEngine::run(world, population, protocol,
                                        adversary,
                                        {.max_rounds = 100000, .seed = t});
        }
        RunResult async_result;
        {
          DistillParams params;
          params.alpha = alpha;
          DistillProtocol protocol(params);
          LockstepAdapter adapter(protocol, population.num_honest());
          EagerVoteAdversary adversary;
          auto sched = scheduler.make();
          async_result = AsyncEngine::run(world, population, adapter,
                                          adversary, *sched,
                                          {.max_steps = 50000000, .seed = t});
        }
        sync_mean += sync_result.mean_honest_probes();
        lockstep_mean += async_result.mean_honest_probes();
        steps += static_cast<double>(async_result.rounds_executed);
        step_ratio += static_cast<double>(async_result.rounds_executed) /
                      (static_cast<double>(population.num_honest()) *
                       static_cast<double>(sync_result.rounds_executed));
        for (std::size_t p = 0; p < n; ++p) {
          exact = exact && (sync_result.players[p].probes ==
                            async_result.players[p].probes);
        }
      }

      const double inv = 1.0 / static_cast<double>(trials);
      table.add_row({Table::cell(n), scheduler.name,
                     Table::cell(sync_mean * inv),
                     Table::cell(lockstep_mean * inv),
                     exact ? "yes" : "NO", Table::cell(steps * inv, 0),
                     Table::cell(step_ratio * inv)});
    }
  }

  print_table(table);
  std::cout << "\nshape check: exact_match must be yes everywhere; the "
               "steps ratio shows the synchronizer's scheduling overhead "
               "(1.0 = perfect interleaving under round robin; random "
               "schedules pay extra waits).\n";
  return 0;
}
