// TAB-7 — The asynchronous prior-work model (§1.1/§1.2): total cost of
// the EC'04 algorithm under fair schedules stays O(1/beta + n log n), but
// an adversarial schedule makes *individual* cost meaningless — the
// starved player pays ~1/beta alone. This motivates the paper's move to
// the synchronous model.
#include <iostream>

#include "acp/baseline/collab_baseline.hpp"
#include "acp/engine/async_engine.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t trials = trials_from_env(15);

  print_header("TAB-7 (async model, EC'04 regime)",
               "total and worst individual cost of the async EC'04 "
               "algorithm per schedule; all honest, one good object");

  Table table({"n=m", "schedule", "total_probes", "worst_individual",
               "theory_total n*log n"});

  for (std::size_t n : {64u, 256u, 1024u}) {
    struct NamedScheduler {
      std::string name;
      std::function<std::unique_ptr<Scheduler>()> make;
    };
    const std::vector<NamedScheduler> schedulers = {
        {"round-robin", [] { return std::make_unique<RoundRobinScheduler>(); }},
        {"random", [] { return std::make_unique<RandomScheduler>(); }},
        {"starve-one", [] { return std::make_unique<StarveScheduler>(); }},
    };

    for (const auto& scheduler : schedulers) {
      TrialPlan plan;
      plan.trials = trials;
      plan.base_seed = n;
      plan.threads = 1;
      const auto summaries = run_trials_multi(
          plan, 2, [&](std::uint64_t seed) {
            Rng rng(seed);
            const World world = make_simple_world(n, 1, rng);
            const Population population =
                Population::with_prefix_honest(n, n);
            AsyncCollabProtocol protocol;
            SilentAdversary adversary;
            auto sched = scheduler.make();
            const RunResult result = AsyncEngine::run(
                world, population, protocol, adversary, *sched,
                {.max_steps = 10000000, .seed = seed ^ 0x31415});
            return std::vector<double>{
                static_cast<double>(result.total_honest_probes()),
                static_cast<double>(result.max_honest_probes())};
          });

      const double nn = static_cast<double>(n);
      table.add_row({Table::cell(n), scheduler.name,
                     Table::cell(summaries[0].mean()),
                     Table::cell(summaries[1].mean()),
                     Table::cell(nn * std::log2(nn))});
    }
  }

  print_table(table);
  std::cout << "\nshape check: total cost is similar across schedules "
               "(~n log n), but starve-one's worst individual cost is ~n — "
               "the whole search alone — versus O(log n) under fair "
               "schedules.\n";
  return 0;
}
