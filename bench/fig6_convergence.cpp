// FIG-6 — Convergence dynamics: fraction of honest players satisfied per
// round, DISTILL vs the EC'04 baseline. Makes the proofs' dynamics
// visible: DISTILL's phase-synchronized mass satisfaction (everyone probes
// the distilled candidates at once) versus the baseline's rumor-spreading
// doubling, which is what costs it the log n factor.
#include <iostream>

#include "acp/baseline/collab_baseline.hpp"
#include "acp/engine/trace.hpp"
#include "bench_support.hpp"

namespace {

using namespace acp;

/// Mean satisfied fraction per round over trials (rows padded with 1.0
/// after a run ends).
std::vector<double> convergence_curve(
    std::size_t n, double alpha, std::size_t trials,
    const std::function<std::unique_ptr<Protocol>()>& make_protocol) {
  const auto honest = static_cast<std::size_t>(alpha * static_cast<double>(n));
  // Collect all per-trial curves first; a run that ended early counts as
  // fully satisfied for the remaining rounds.
  std::vector<std::vector<double>> curves;
  std::size_t longest = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Rng rng(4000 + t);
    const World world = make_simple_world(n, 1, rng);
    const Population population =
        Population::with_random_honest(n, honest, rng);
    TraceRecorder trace;
    SyncRunConfig config;
    config.seed = 5000 + t;
    config.observer = &trace;
    auto protocol = make_protocol();
    SilentAdversary adversary;
    (void)SyncEngine::run(world, population, *protocol, adversary, config);
    std::vector<double> curve;
    curve.reserve(trace.rows().size());
    for (const TraceRow& row : trace.rows()) {
      curve.push_back(static_cast<double>(row.satisfied_honest) /
                      static_cast<double>(honest));
    }
    longest = std::max(longest, curve.size());
    curves.push_back(std::move(curve));
  }
  std::vector<double> mean(longest, 0.0);
  for (const auto& curve : curves) {
    for (std::size_t r = 0; r < longest; ++r) {
      mean[r] += r < curve.size() ? curve[r] : 1.0;
    }
  }
  for (double& value : mean) value /= static_cast<double>(trials);
  return mean;
}

std::string bar(double fraction, std::size_t width = 40) {
  const auto filled = static_cast<std::size_t>(
      fraction * static_cast<double>(width) + 0.5);
  return std::string(filled, '#') + std::string(width - filled, '.');
}

}  // namespace

int main() {
  using namespace acp::bench;

  const std::size_t n = 1024;
  const double alpha = 0.9;
  const std::size_t trials = trials_from_env(15);

  print_header("FIG-6 (convergence dynamics)",
               "satisfied honest fraction per round; m = n = 1024, "
               "alpha = 0.9, silent adversary");

  const auto distill = convergence_curve(n, alpha, trials, [&] {
    acp::DistillParams params;
    params.alpha = alpha;
    return std::make_unique<acp::DistillProtocol>(params);
  });
  const auto collab = convergence_curve(n, alpha, trials, [] {
    return std::make_unique<acp::CollabBaselineProtocol>();
  });

  const std::size_t rounds = std::max(distill.size(), collab.size());
  // The human-readable output is ASCII bars, not a table; the JSON side
  // channel (ACP_BENCH_JSON) still gets the raw per-round fractions.
  acp::Table table({"round", "distill", "ec04"});
  std::cout << "round  DISTILL " << std::string(34, ' ') << "EC'04\n";
  for (std::size_t r = 0; r < rounds; ++r) {
    const double d = r < distill.size() ? distill[r] : 1.0;
    const double c = r < collab.size() ? collab[r] : 1.0;
    std::cout.width(5);
    std::cout << r << "  " << bar(d) << "  " << bar(c) << '\n';
    table.add_row({acp::Table::cell(r), acp::Table::cell(d, 4),
                   acp::Table::cell(c, 4)});
    if (d >= 0.999 && c >= 0.999) break;
  }
  write_table_json(table);

  std::cout << "\nshape check: DISTILL jumps to full satisfaction in a few "
               "synchronized bursts (phase boundaries); the baseline climbs "
               "as a smooth doubling curve stretched over ~log n rounds.\n";
  return 0;
}
