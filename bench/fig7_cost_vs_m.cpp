// FIG-7 — The m >> n regime: Theorem 4's first term. With one good object
// among m >> n, the bound is O(1/(alpha beta n) + (1/alpha) log n/Delta)
// = O(m/(alpha n)) + sublogarithmic: discovery work dominates and must be
// split across the honest players. Sweep m at fixed n.
#include <iostream>

#include "acp/baseline/collab_baseline.hpp"
#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 256;
  const double alpha = 0.5;
  const std::size_t trials = trials_from_env(15);

  print_header("FIG-7 (Theorem 4, m >> n regime)",
               "individual cost vs m at n = 256, alpha = 0.5, one good "
               "object; discovery term 1/(alpha beta n) = m/(alpha n) "
               "dominates");

  Table table({"m", "m/n", "distill(k1=4)", "distill(k1=1)", "collab_ec04",
               "theory_distill", "theory_collab"});

  for (std::size_t m : {256u, 1024u, 4096u, 16384u}) {
    PointConfig config;
    config.n = n;
    config.m = m;
    config.good = 1;
    config.alpha = alpha;

    const auto distill =
        run_point(config,
                  [&]() -> std::unique_ptr<Protocol> {
                    DistillParams p;
                    p.alpha = alpha;
                    return std::make_unique<DistillProtocol>(p);
                  },
                  [](Protocol&) {
                    return std::make_unique<EagerVoteAdversary>();
                  },
                  trials, m)[kMeanProbes]
            .mean();

    const auto distill_k1 =
        run_point(config,
                  [&]() -> std::unique_ptr<Protocol> {
                    DistillParams p;
                    p.alpha = alpha;
                    p.k1 = 1.0;
                    return std::make_unique<DistillProtocol>(p);
                  },
                  [](Protocol&) {
                    return std::make_unique<EagerVoteAdversary>();
                  },
                  trials, m)[kMeanProbes]
            .mean();

    const auto collab =
        run_point(config,
                  [] { return std::make_unique<CollabBaselineProtocol>(); },
                  [](Protocol&) {
                    return std::make_unique<EagerVoteAdversary>();
                  },
                  trials, m)[kMeanProbes]
            .mean();

    const double beta = 1.0 / static_cast<double>(m);
    table.add_row(
        {Table::cell(m), Table::cell(static_cast<double>(m) / n, 1),
         Table::cell(distill), Table::cell(distill_k1), Table::cell(collab),
         Table::cell(theory::distill_expected_rounds(alpha, beta, n)),
         Table::cell(theory::baseline_expected_rounds(alpha, beta, n))});
  }

  print_table(table);
  std::cout << "\nshape check: everything grows linearly in m — the "
               "unavoidable discovery work (Theorem 1). Two honest "
               "observations: (1) the k1 columns expose the fixed-phase "
               "tradeoff — k1=1 restarts whole attempts when Step 1.1 "
               "finds nothing (worse at small m), k1=4 overshoots (both "
               "land ~2x above the theory curve at large m); (2) in this "
               "regime the baseline's empirical mean beats DISTILL's, "
               "because its 50/50 rule exploits votes adaptively during "
               "discovery while DISTILL's schedule is fixed. DISTILL's "
               "wins are the m~n regime (fig1) and the worst-case/tail "
               "guarantees (tab1) — exactly what the bounds claim, and "
               "nothing more.\n";
  return 0;
}
