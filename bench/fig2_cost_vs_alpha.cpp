// FIG-2 — Theorem 4's alpha dependence: individual cost vs. alpha at
// m = n = 1024, one good object.
//
// Expected shape: cost tracks (1/alpha) * log n / Delta — rising sharply
// as alpha shrinks — and stays within a constant factor of the theory
// curve across the sweep.
//
// Built declaratively (registry + sharded driver), the same code path as
//   acpsim --scenario scenarios/fig2_cost_vs_alpha.json --set alpha=A
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace acp;
  using namespace acp::bench;

  const std::size_t n = 1024;
  const std::size_t trials = trials_from_env(20);

  print_header("FIG-2 (Theorem 4, alpha sweep)",
               "individual cost vs alpha; m = n = 1024, one good object; "
               "worst over the adversary library");

  Table table({"alpha", "distill_worst", "distill_silent", "theory",
               "ratio_worst/theory"});

  for (double alpha : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    scenario::ScenarioSpec spec;
    spec.n = n;
    spec.m = n;
    spec.good = 1;
    spec.alpha = alpha;
    spec.protocol = "distill";

    const std::uint64_t base_seed = static_cast<std::uint64_t>(alpha * 1000);
    const double worst =
        worst_case_scenario_mean_probes(spec, trials, base_seed);
    const double silent =
        run_scenario_point(spec, trials, base_seed)[sim::kMeanProbes].mean();
    const double theory_value =
        theory::distill_expected_rounds(alpha, 1.0 / n, n);
    table.add_row({Table::cell(alpha), Table::cell(worst),
                   Table::cell(silent), Table::cell(theory_value),
                   Table::cell(worst / theory_value)});
  }

  print_table(table);
  std::cout << "\nshape check: cost rises as alpha falls; the ratio column "
               "should stay within a modest constant band.\n";
  return 0;
}
