# CMake generated Testfile for 
# Source directory: /root/repo/src/lower_bounds
# Build directory: /root/repo/build-review/src/lower_bounds
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
