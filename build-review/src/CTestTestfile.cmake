# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("rng")
subdirs("obs")
subdirs("world")
subdirs("billboard")
subdirs("engine")
subdirs("gossip")
subdirs("adversary")
subdirs("core")
subdirs("baseline")
subdirs("lower_bounds")
subdirs("stats")
subdirs("sim")
