// Open marketplace with churn: users join over time.
//
// Real reputation systems never start everyone at once. This example runs
// DISTILL with staggered arrivals (an engine extension beyond the paper's
// base model): 400 early adopters start at round 0; 100 newcomers trickle
// in afterwards. The trace shows the early crowd converging, and Lemma 6's
// advice channel picking each newcomer up in a handful of probes — they
// inherit the crowd's knowledge through the billboard.
#include <iomanip>
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/engine/trace.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  std::cout << "=== Open marketplace: joining an ongoing community ===\n\n";

  Rng rng(2025);
  const std::size_t n = 512;
  const World world = make_simple_world(/*m=*/512, /*good=*/1, rng);
  const Population population =
      Population::with_random_honest(n, /*num_honest=*/448, rng);

  // Arrival plan: the first 100 honest players (by id order) are
  // newcomers, joining one per round starting at round 40 — after the
  // early adopters have typically converged.
  SyncRunConfig config;
  config.seed = 99;
  config.arrivals.assign(n, 0);
  std::vector<PlayerId> newcomers;
  for (std::size_t i = 0; i < 100; ++i) {
    const PlayerId p = population.honest_players()[i];
    config.arrivals[p.value()] = static_cast<Round>(40 + i);
    newcomers.push_back(p);
  }

  TraceRecorder trace;
  config.observer = &trace;

  DistillParams params;
  params.alpha = population.alpha();
  DistillProtocol protocol(params);
  EagerVoteAdversary adversary;

  const RunResult result = SyncEngine::run(world, population, protocol,
                                           adversary, config);

  double newcomer_probes = 0.0;
  double early_probes = 0.0;
  std::size_t early_count = 0;
  for (PlayerId p : population.honest_players()) {
    const bool is_newcomer = config.arrivals[p.value()] > 0;
    if (is_newcomer) {
      newcomer_probes += static_cast<double>(result.players[p.value()].probes);
    } else {
      early_probes += static_cast<double>(result.players[p.value()].probes);
      ++early_count;
    }
  }

  std::cout << std::fixed << std::setprecision(2)
            << "everyone satisfied:        "
            << (result.all_honest_satisfied ? "yes" : "no") << '\n'
            << "rounds of market activity: " << result.rounds_executed << '\n'
            << "early adopters (" << early_count
            << "): " << early_probes / static_cast<double>(early_count)
            << " probes each (they did the discovery work)\n"
            << "newcomers (100):      "
            << newcomer_probes / 100.0
            << " probes each (they inherit it via the billboard)\n\n";

  std::cout << "convergence (every 10th round):\n";
  for (std::size_t r = 0; r < trace.rows().size(); r += 10) {
    const auto& row = trace.rows()[r];
    std::cout << "  round " << std::setw(4) << row.round << ": "
              << std::setw(3) << row.satisfied_honest << " satisfied, "
              << std::setw(3) << row.active_honest << " searching\n";
  }
  return 0;
}
