// Quickstart: the smallest complete use of the library.
//
// 1000 players — 900 honest, 100 Byzantine — search 1000 objects for the
// single good one using Algorithm DISTILL over a shared billboard. Run:
//
//   ./build/examples/quickstart
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  // A world of 1000 unit-cost objects, exactly one of them good, with
  // local testing: probing reveals goodness (paper §2.2).
  Rng rng(/*seed=*/2005);
  const World world = make_simple_world(/*m=*/1000, /*good=*/1, rng);

  // 1000 players, 900 honest at random positions (alpha = 0.9).
  const Population population =
      Population::with_random_honest(/*n=*/1000, /*num_honest=*/900, rng);

  // The honest players run DISTILL; alpha is assumed known (see the
  // GuessAlphaProtocol example for the unknown-alpha wrapper).
  DistillParams params;
  params.alpha = population.alpha();
  DistillProtocol protocol(params);

  // The 100 Byzantine players collude: every one of them votes for one of
  // four bad "decoy" objects to trick honest players into probing them.
  CollusionAdversary adversary(/*num_decoys=*/4);

  const RunResult result = SyncEngine::run(world, population, protocol,
                                           adversary, {.seed = 42});

  std::cout << "all honest players satisfied: "
            << (result.all_honest_satisfied ? "yes" : "no") << '\n'
            << "rounds executed:              " << result.rounds_executed
            << '\n'
            << "mean probes per honest player: "
            << result.mean_honest_probes() << '\n'
            << "max probes by one player:      "
            << result.max_honest_probes() << '\n'
            << "found a good object:           "
            << result.honest_success_fraction() * 100.0 << "%\n";

  // Compare with the no-collaboration floor: random probing needs about
  // 1/beta = 1000 probes per player. The billboard pays for itself.
  std::cout << "(random search would need ~1000 probes per player)\n";
  return 0;
}
