// Quickstart: the smallest complete use of the library — load a scenario
// file and run it.
//
// 1000 players — 900 honest, 100 Byzantine colluders — search 1000
// objects for the single good one using Algorithm DISTILL over a shared
// billboard. The whole experiment is data (scenarios/quickstart.json);
// protocol and adversary are constructed by registry name. Run:
//
//   ./build/examples/quickstart [path/to/scenario.json]
#include <iostream>

#include "acp/scenario/build.hpp"
#include "acp/sim/scenario_driver.hpp"

int main(int argc, char** argv) {
  using namespace acp;
  const char* path = argc > 1 ? argv[1] : "scenarios/quickstart.json";
  try {
    const scenario::ScenarioSpec spec = scenario::ScenarioSpec::load_file(path);
    const auto stats = sim::run_scenario_stats(spec);
    std::cout << "scenario:                      " << spec.name << '\n'
              << "trials:                        " << spec.trials << '\n'
              << "mean probes per honest player: "
              << stats[sim::kMeanProbes].mean() << '\n'
              << "max probes by one player:      "
              << stats[sim::kMaxProbes].max() << '\n'
              << "all trials completed:          "
              << (stats[sim::kCompleted].min() >= 1.0 ? "yes" : "no") << '\n'
              << "(random search would need ~" << spec.m
              << " probes per player; the billboard pays for itself)\n";
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n(run from the repository root, or pass the "
              << "scenario path explicitly)\n";
    return 1;
  }
  return 0;
}
