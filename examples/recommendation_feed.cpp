// Recommendation feed: the paper's second application (§1.3, [2]).
//
// A community repeatedly looks for something good to consume — every week
// a fresh catalog, the same members, the same hidden shill ring. This is
// the "changing interests" regime of the prior work, run as a sequence of
// DISTILL searches. Two communities are compared: one picks whose advice
// to follow uniformly (Figure 1), one carries locally learned trust
// across weeks (the §6 exploration). Nobody ever publishes a trust score;
// members only remember whose recommendations burned them.
#include <iomanip>
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  std::cout << "=== Recommendation feed: twelve weeks, one shill ring ===\n\n";

  const std::size_t n = 512;
  const double alpha = 0.25;  // a rough neighborhood: 75% shills
  const std::size_t weeks = 12;

  auto run_community = [&](bool trust, bool carry) {
    std::vector<double> weekly;
    std::vector<std::vector<int>> memory;
    Rng world_rng(777);
    const Population population = Population::with_random_honest(
        n, static_cast<std::size_t>(alpha * static_cast<double>(n)),
        world_rng);
    for (std::size_t week = 0; week < weeks; ++week) {
      const World catalog = make_simple_world(n, 1, world_rng);
      DistillParams params;
      params.alpha = alpha;
      params.trust_weighted_advice = trust;
      DistillProtocol protocol(params);
      if (trust && carry && !memory.empty()) {
        protocol.import_trust_table(std::move(memory));
      }
      EagerVoteAdversary shills;
      const RunResult result =
          SyncEngine::run(catalog, population, protocol, shills,
                          {.max_rounds = 300000, .seed = 1000 + week});
      weekly.push_back(result.mean_honest_probes());
      if (trust && carry) memory = protocol.trust_table();
    }
    return weekly;
  };

  const auto uniform = run_community(false, false);
  const auto remembering = run_community(true, true);

  std::cout << std::fixed << std::setprecision(1)
            << "mean probes per honest member, per week:\n\n"
            << "week   forgetful   remembering\n";
  for (std::size_t week = 0; week < weeks; ++week) {
    std::cout << std::setw(4) << week << "   " << std::setw(9)
              << uniform[week] << "   " << std::setw(11)
              << remembering[week] << '\n';
  }

  double u_late = 0.0;
  double r_late = 0.0;
  for (std::size_t week = weeks - 4; week < weeks; ++week) {
    u_late += uniform[week];
    r_late += remembering[week];
  }
  std::cout << "\nlast four weeks: remembering community pays "
            << std::setprecision(2) << r_late / u_late
            << "x the forgetful one's cost.\n"
            << "Nothing was posted: each member privately down-weighted "
               "the advisors\nwhose recommendations it personally "
               "verified as bad.\n";
  return 0;
}
