// eBay-style marketplace (the paper's motivating example, §1).
//
// Buyers search for a trustworthy seller. Sellers have different prices
// (the general cost model of §5.2): a transaction with a seller costs its
// price and reveals whether the seller is honest (you get the goods — local
// testing). Fraud rings run shill accounts that post glowing reviews for
// scam sellers on the reputation billboard.
//
// The cost-class schedule (Theorem 12) probes cheap sellers first, so an
// honest buyer's spend tracks the cheapest trustworthy seller's price
// rather than the marketplace's priciest tier.
#include <iomanip>
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/cost_classes.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  std::cout << "=== eBay marketplace: finding a trustworthy seller ===\n\n";

  Rng rng(1999);

  // The marketplace: 4 price tiers ($1-2, $2-4, $4-8, $8-16), 64 sellers
  // per tier. Trustworthy sellers exist only from tier 1 ($2-4) upward —
  // the cheapest tier is all scams, as is tradition.
  CostClassWorldOptions market;
  market.num_classes = 4;
  market.objects_per_class = 64;
  market.cheapest_good_class = 1;
  market.good_per_class = 2;
  const World world = make_cost_class_world(market, rng);

  // 300 buyers; 60 of them are shill accounts run by the fraud ring.
  const Population population =
      Population::with_random_honest(/*n=*/300, /*num_honest=*/240, rng);

  std::cout << "sellers:  " << world.num_objects() << " in 4 price tiers\n"
            << "honest sellers: " << world.num_good()
            << " (cheapest in the $2-4 tier)\n"
            << "buyers:   " << population.num_players() << " ("
            << population.num_dishonest() << " shill accounts)\n\n";

  // Honest buyers follow the Theorem 12 schedule: run DISTILL^HP tier by
  // tier, cheapest first, assuming one trustworthy seller per tier.
  CostClassParams schedule;
  schedule.alpha = population.alpha();
  CostClassProtocol protocol(schedule);

  // The fraud ring's shills all vouch for a handful of scam sellers.
  CollusionAdversary fraud_ring(/*num_decoys=*/3);

  const RunResult result = SyncEngine::run(world, population, protocol,
                                           fraud_ring,
                                           {.max_rounds = 200000, .seed = 7});

  double cheapest_good = 1e300;
  for (ObjectId seller : world.good_objects()) {
    cheapest_good = std::min(cheapest_good, world.cost(seller));
  }

  std::cout << std::fixed << std::setprecision(2)
            << "every buyer found a trustworthy seller: "
            << (result.all_honest_satisfied ? "yes" : "no") << '\n'
            << "mean spend per honest buyer:  $" << result.mean_honest_cost()
            << '\n'
            << "worst spend by one buyer:     $" << result.max_honest_cost()
            << '\n'
            << "cheapest trustworthy seller:  $" << cheapest_good << '\n'
            << "rounds of market activity:    " << result.rounds_executed
            << "\n\n"
            << "Without the tiered schedule a buyer probing sellers "
               "uniformly\nwould routinely pay $8-16 scam prices while "
               "searching.\n";
  return 0;
}
