// P2P file sharing (the paper's title scenario; cf. EigenTrust [6]).
//
// Peers look for an authentic copy of a file among many download sources.
// Authenticity is NOT locally testable in one step — a corrupted codec or
// trojaned binary looks plausible — so this uses the §5.3 variant: each
// peer's vote is the highest-quality source it has personally sampled,
// goodness means "among the top-beta sources", and everyone runs for the
// prescribed Theorem 13 horizon. Malicious peers claim absurd quality
// scores for poisoned sources.
#include <iomanip>
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/core/theory.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  std::cout << "=== P2P file sharing: finding an authentic source ===\n\n";

  Rng rng(2003);

  // 512 download sources; the 8 highest-quality ones are authentic copies
  // (top-beta goodness, beta = 8/512).
  const std::size_t sources = 512;
  const std::size_t authentic = 8;
  const World world = make_top_beta_world(sources, authentic, rng);

  // 512 peers; 25% are part of a poisoning campaign.
  const std::size_t peers = 512;
  const std::size_t honest = 384;
  const Population population =
      Population::with_random_honest(peers, honest, rng);

  const double alpha = population.alpha();
  const double beta = world.beta();

  // §5.3: DISTILL^HP with highest-reported votes and a prescribed horizon.
  const DistillParams params =
      make_no_local_testing_params(alpha, beta, peers);
  DistillProtocol protocol(params);

  // The campaign: each malicious peer permanently vouches for a poisoned
  // source with a sky-high claimed quality score.
  ValueLiarAdversary campaign(/*claimed_value=*/1e9);

  const RunResult result = SyncEngine::run(
      world, population, protocol, campaign,
      {.max_rounds = *params.horizon + 4, .seed = 17});

  std::cout << "sources: " << sources << " (" << authentic
            << " authentic)\npeers:   " << peers << " ("
            << population.num_dishonest() << " poisoning)\n"
            << "prescribed horizon (Theorem 13): " << *params.horizon
            << " rounds\n\n"
            << std::fixed << std::setprecision(1)
            << "peers whose best-sampled source is authentic: "
            << result.honest_success_fraction() * 100.0 << "%\n"
            << "mean downloads sampled per peer: "
            << result.mean_honest_probes() << '\n'
            << "rounds used: " << result.rounds_executed << "\n\n"
            << "The poisoners' one-vote-per-identity budget is absorbed by "
               "the\ncandidate thresholds: absurd claimed scores buy them "
               "exactly one\npermanent vote each, nothing more.\n";
  return 0;
}
