// Gossip network: running the reputation system without any server.
//
// The paper's billboard is a service; in a real peer-to-peer network no
// such service exists. This example runs DISTILL where every node keeps
// its own replica of the billboard, synchronized by push gossip, with a
// quarter of the nodes Byzantine (they absorb gossip and inject shill
// votes). Compare the cost against the idealized shared billboard.
#include <iomanip>
#include <iostream>

#include "acp/adversary/strategies.hpp"
#include "acp/core/distill.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/gossip/gossip_engine.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  std::cout << "=== Serverless reputation: gossip vs shared billboard ===\n\n";

  const std::size_t n = 256;
  const double alpha = 0.75;

  auto make_scenario = [&](std::uint64_t seed) {
    Rng rng(seed);
    World world = make_simple_world(n, 1, rng);
    Population population = Population::with_random_honest(
        n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);
    return std::pair{std::move(world), std::move(population)};
  };

  std::cout << std::fixed << std::setprecision(2);

  // Idealized shared billboard (the paper's model).
  {
    auto [world, population] = make_scenario(2026);
    DistillParams params;
    params.alpha = alpha;
    DistillProtocol protocol(params);
    EagerVoteAdversary adversary;
    const RunResult result = SyncEngine::run(world, population, protocol,
                                             adversary, {.seed = 31});
    std::cout << "shared billboard:         "
              << result.mean_honest_probes() << " probes/node, "
              << result.rounds_executed << " rounds\n";
  }

  // Gossip substrate at a few fanouts.
  for (std::size_t fanout : {4u, 2u}) {
    auto [world, population] = make_scenario(2026);
    EagerVoteAdversary adversary;
    const RunResult result = GossipEngine::run(
        world, population,
        [&]() -> std::unique_ptr<Protocol> {
          DistillParams params;
          params.alpha = alpha;
          return std::make_unique<DistillProtocol>(params);
        },
        adversary, {.fanout = fanout, .max_rounds = 200000, .seed = 31});
    std::cout << "gossip, fanout " << fanout << ":         "
              << result.mean_honest_probes() << " probes/node, "
              << result.rounds_executed << " rounds ("
              << result.honest_success_fraction() * 100 << "% success)\n";
  }

  // Push-pull rescues sparse connectivity.
  {
    auto [world, population] = make_scenario(2026);
    EagerVoteAdversary adversary;
    const RunResult result = GossipEngine::run(
        world, population,
        [&]() -> std::unique_ptr<Protocol> {
          DistillParams params;
          params.alpha = alpha;
          return std::make_unique<DistillProtocol>(params);
        },
        adversary,
        {.fanout = 2, .pull = true, .loss_prob = 0.2,
         .max_rounds = 200000, .seed = 31});
    std::cout << "gossip, fanout 2 + pull,\n  20% message loss:       "
              << result.mean_honest_probes() << " probes/node, "
              << result.rounds_executed << " rounds ("
              << result.honest_success_fraction() * 100 << "% success)\n";
  }

  std::cout << "\nEvery configuration finds the good object for every "
               "honest node;\nthe price of decentralization is the gossip "
               "propagation delay.\n";
  return 0;
}
