// Adversary showdown: DISTILL against the whole Byzantine strategy
// library, plus the unknown-alpha wrapper (§5.1). A compact robustness
// report of the kind you would run before deploying a reputation system.
#include <iomanip>
#include <iostream>
#include <memory>

#include "acp/adversary/split_vote.hpp"
#include "acp/adversary/strategies.hpp"
#include "acp/core/guess_alpha.hpp"
#include "acp/core/theory.hpp"
#include "acp/engine/sync_engine.hpp"
#include "acp/stats/table.hpp"
#include "acp/world/builders.hpp"

int main() {
  using namespace acp;

  const std::size_t n = 512;
  const double alpha = 0.5;
  const int trials = 10;

  std::cout << "=== Adversary showdown: n = m = " << n
            << ", alpha = " << alpha << ", " << trials << " trials ===\n\n";

  Table table({"adversary", "protocol", "mean_probes", "worst_player",
               "all_satisfied"});

  struct Arm {
    std::string adversary_name;
    std::string protocol_name;
  };

  for (int arm = 0; arm < 6; ++arm) {
    double mean_total = 0.0;
    double worst_total = 0.0;
    bool all_satisfied = true;
    std::string adversary_name;
    std::string protocol_name;

    for (int t = 0; t < trials; ++t) {
      Rng rng(static_cast<std::uint64_t>(9000 + t));
      const World world = make_simple_world(n, 1, rng);
      const Population population = Population::with_random_honest(
          n, static_cast<std::size_t>(alpha * static_cast<double>(n)), rng);

      DistillParams params;
      params.alpha = alpha;

      std::unique_ptr<Protocol> protocol;
      std::unique_ptr<Adversary> adversary;
      switch (arm) {
        case 0:
          adversary_name = "silent";
          protocol_name = "DISTILL";
          protocol = std::make_unique<DistillProtocol>(params);
          adversary = std::make_unique<SilentAdversary>();
          break;
        case 1:
          adversary_name = "slander";
          protocol_name = "DISTILL";
          protocol = std::make_unique<DistillProtocol>(params);
          adversary = std::make_unique<SlandererAdversary>();
          break;
        case 2:
          adversary_name = "eager-flood";
          protocol_name = "DISTILL";
          protocol = std::make_unique<DistillProtocol>(params);
          adversary = std::make_unique<EagerVoteAdversary>();
          break;
        case 3:
          adversary_name = "collude-4";
          protocol_name = "DISTILL";
          protocol = std::make_unique<DistillProtocol>(params);
          adversary = std::make_unique<CollusionAdversary>(4);
          break;
        case 4: {
          adversary_name = "split-vote";
          protocol_name = "DISTILL";
          auto distill = std::make_unique<DistillProtocol>(params);
          adversary = std::make_unique<SplitVoteAdversary>(*distill);
          protocol = std::move(distill);
          break;
        }
        default:
          // Final arm: the §5.1 wrapper that never learns alpha, against
          // the strongest oblivious strategy.
          protocol_name = "GuessAlpha (alpha unknown)";
          adversary_name = "eager-flood";
          protocol = std::make_unique<GuessAlphaProtocol>();
          adversary = std::make_unique<EagerVoteAdversary>();
          break;
      }

      const RunResult result =
          SyncEngine::run(world, population, *protocol, *adversary,
                          {.max_rounds = 1000000,
                           .seed = static_cast<std::uint64_t>(100 + t)});
      mean_total += result.mean_honest_probes();
      worst_total += static_cast<double>(result.max_honest_probes());
      all_satisfied = all_satisfied && result.all_honest_satisfied;
    }

    table.add_row({adversary_name, protocol_name,
                   Table::cell(mean_total / trials),
                   Table::cell(worst_total / trials),
                   all_satisfied ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::cout << "\ntheory (Theorem 4 shape): "
            << theory::distill_expected_rounds(alpha, 1.0 / n, n)
            << " expected rounds; every arm above must satisfy all honest "
               "players.\n";
  return 0;
}
