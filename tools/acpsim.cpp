// acpsim — command-line front end for the simulator (see acp/sim/cli.hpp).
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "acp/sim/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const acp::cli::CliConfig config = acp::cli::parse_args(args);
    return acp::cli::run(config, std::cout);
  } catch (const std::invalid_argument& e) {
    std::cerr << "acpsim: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "acpsim: internal error: " << e.what() << '\n';
    return 3;
  }
}
