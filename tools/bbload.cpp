// bbload — billboard server load generator.
//
// Opens many concurrent connections to a running acp_billboardd, joins one
// shared replica board, and measures steady-state posts/sec plus the
// window-query latency tail (see acp/billboard/loadgen.hpp for the phase
// structure). The same engine backs the perf_substrate service bench, so
// the numbers here are directly comparable to bench/BENCH_PERF.json.
//
//   acp_billboardd --listen socket:/tmp/acp-bb.sock &
//   bbload --connect socket:/tmp/acp-bb.sock --clients 10000 --json
#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>

#include "acp/billboard/loadgen.hpp"
#include "acp/net/socket.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "bbload — billboard server load generator (acp.bbwire.v1)\n"
        "\n"
        "usage: bbload --connect ENDPOINT [options]\n"
        "\n"
        "  --connect E      socket:<path> or tcp:<host>:<port> of a running\n"
        "                   acp_billboardd\n"
        "  --clients N      concurrent connections (default 10000)\n"
        "  --batches B      commits per client (default 5)\n"
        "  --batch-posts P  posts per commit (default 10)\n"
        "  --queries Q      timed window queries per client (default 5)\n"
        "  --players N      shared-board player dimension (default 10000)\n"
        "  --objects M      shared-board object dimension (default 256)\n"
        "  --board NAME     shared board name (default bbload)\n"
        "  --boards K       spread clients over K boards NAME.0..NAME.K-1\n"
        "                   (default 1: everyone joins NAME) — use with a\n"
        "                   sharded server so boards land on different\n"
        "                   IO threads\n"
        "  --pipeline K     in-flight commits per connection (default 1)\n"
        "  --threads N      driver threads; clients split across them,\n"
        "                   stats merged (default 1)\n"
        "  --seed S         workload seed (default 1)\n"
        "  --json           machine-readable acp.bbload.v1 report on stdout\n"
        "  --help           this text\n";
  return code;
}

std::size_t parse_size(const std::string& flag, const std::string& text) {
  try {
    const long long value = std::stoll(text);
    if (value < 0) throw std::invalid_argument("");
    return static_cast<std::size_t>(value);
  } catch (...) {
    throw std::invalid_argument("bad value for " + flag + ": " + text);
  }
}

}  // namespace

int main(int argc, char** argv) {
  acp::LoadgenOptions options;
  std::string connect;
  std::size_t boards = 1;
  bool json = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value after " + arg);
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
      if (arg == "--json") {
        json = true;
      } else if (arg == "--connect") {
        connect = value();
      } else if (arg == "--clients") {
        options.clients = parse_size(arg, value());
      } else if (arg == "--batches") {
        options.batches = parse_size(arg, value());
      } else if (arg == "--batch-posts") {
        options.batch_posts = parse_size(arg, value());
      } else if (arg == "--queries") {
        options.queries = parse_size(arg, value());
      } else if (arg == "--players") {
        options.players = parse_size(arg, value());
      } else if (arg == "--objects") {
        options.objects = parse_size(arg, value());
      } else if (arg == "--board") {
        options.board = value();
      } else if (arg == "--boards") {
        boards = parse_size(arg, value());
        if (boards == 0) {
          throw std::invalid_argument("--boards must be >= 1");
        }
      } else if (arg == "--pipeline") {
        options.pipeline = parse_size(arg, value());
        if (options.pipeline == 0) {
          throw std::invalid_argument("--pipeline must be >= 1");
        }
      } else if (arg == "--threads") {
        options.threads = parse_size(arg, value());
        if (options.threads == 0) {
          throw std::invalid_argument("--threads must be >= 1");
        }
      } else if (arg == "--seed") {
        options.seed = parse_size(arg, value());
      } else {
        throw std::invalid_argument("unknown option: " + arg +
                                    " (try --help)");
      }
    }
    if (connect.empty()) return usage(std::cerr, 2);
    options.endpoint = acp::net::Endpoint::parse(connect);
    if (boards > 1) {
      options.board_list.reserve(boards);
      for (std::size_t b = 0; b < boards; ++b) {
        options.board_list.push_back(options.board + "." + std::to_string(b));
      }
    }

    const acp::LoadgenReport report = acp::run_loadgen(options);

    if (json) {
      std::cout << "{\"schema\":\"acp.bbload.v1\",\"endpoint\":\""
                << options.endpoint.to_string() << "\",\"pipeline\":"
                << options.pipeline << ",\"threads\":" << options.threads
                << ",\"boards\":" << boards << ",\"clients\":"
                << report.clients_connected << ",\"posts\":" << report.posts
                << ",\"post_seconds\":" << report.post_seconds
                << ",\"posts_per_sec\":" << report.posts_per_sec
                << ",\"queries\":" << report.queries
                << ",\"query_seconds\":" << report.query_seconds
                << ",\"query_p50_ns\":" << report.query_p50_ns
                << ",\"query_p99_ns\":" << report.query_p99_ns
                << ",\"errors\":" << report.errors << "}\n";
    } else {
      std::cout << "bbload: " << options.endpoint.to_string() << "\n"
                << "  clients      " << report.clients_connected << " / "
                << options.clients << "\n"
                << "  posts        " << report.posts << " in "
                << report.post_seconds << " s  ("
                << static_cast<std::uint64_t>(report.posts_per_sec)
                << " posts/sec)\n"
                << "  queries      " << report.queries << " in "
                << report.query_seconds << " s\n"
                << "  query p50    " << report.query_p50_ns << " ns\n"
                << "  query p99    " << report.query_p99_ns << " ns\n"
                << "  errors       " << report.errors << "\n";
    }
    // Errors mean the measurement is suspect: fail loudly so CI notices.
    return report.errors == 0 ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "bbload: " << e.what() << "\n";
    return 1;
  }
}
