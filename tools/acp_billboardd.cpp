// acp_billboardd — the out-of-process billboard service.
//
// Wraps the authoritative Billboard + VoteLedger behind the acp.bbwire.v1
// frame protocol (see docs/architecture.md, "Billboard service") on a Unix
// or TCP socket. Engines connect with --billboard socket:<path> or
// tcp:<host>:<port>; each connection opens a private board unless it names
// a shared one.
//
//   acp_billboardd --listen socket:/tmp/acp-bb.sock
//   acp_billboardd --listen tcp:127.0.0.1:7117
//
// Runs until SIGINT/SIGTERM, then prints final stats to stderr and exits 0.
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "acp/billboard/server.hpp"
#include "acp/net/socket.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "acp_billboardd — billboard service daemon (acp.bbwire.v1)\n"
        "\n"
        "usage: acp_billboardd --listen ENDPOINT [--io-threads N]\n"
        "                      [--shards S] [--quiet]\n"
        "\n"
        "  --listen E     socket:<path> (Unix) or tcp:<host>:<port>; tcp\n"
        "                 port 0 picks a free port and prints the bound\n"
        "                 endpoint\n"
        "  --io-threads N poll loops / cores to use (default 1); named\n"
        "                 boards are sharded across them, each staying\n"
        "                 single-writer\n"
        "  --shards S     board-name hash buckets (default: io-threads);\n"
        "                 overshard (e.g. 4x threads) for stable placement\n"
        "                 across different --io-threads values\n"
        "  --quiet        suppress the startup/shutdown lines on stderr\n"
        "  --help         this text\n";
  return code;
}

std::size_t parse_count(const char* name, const std::string& value) {
  const unsigned long parsed = std::stoul(value);
  if (parsed == 0) {
    throw std::runtime_error(std::string(name) + " must be >= 1");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  bool quiet = false;
  acp::BillboardServer::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--listen" || arg == "--io-threads" ||
               arg == "--shards") {
      if (i + 1 >= argc) {
        std::cerr << "acp_billboardd: missing value after " << arg << "\n";
        return 2;
      }
      const std::string value = argv[++i];
      try {
        if (arg == "--listen") {
          listen = value;
        } else if (arg == "--io-threads") {
          options.io_threads = parse_count("--io-threads", value);
        } else {
          options.shards = parse_count("--shards", value);
        }
      } catch (const std::exception& e) {
        std::cerr << "acp_billboardd: bad value for " << arg << ": "
                  << e.what() << "\n";
        return 2;
      }
    } else {
      std::cerr << "acp_billboardd: unknown option " << arg
                << " (try --help)\n";
      return 2;
    }
  }
  if (listen.empty()) {
    return usage(std::cerr, 2);
  }

  try {
    // Block the shutdown signals before the server thread starts so they
    // are only ever delivered to this thread's sigwait.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    acp::BillboardServer server(acp::net::Endpoint::parse(listen), options);
    server.start();
    if (!quiet) {
      std::cerr << "acp_billboardd: listening on "
                << server.endpoint().to_string() << " (io-threads="
                << server.io_threads() << " shards=" << server.shards()
                << ")\n";
    }

    int signal_number = 0;
    while (sigwait(&signals, &signal_number) != 0) {
    }
    server.stop();

    const auto stats = server.stats();
    if (!quiet) {
      std::cerr << "acp_billboardd: " << strsignal(signal_number)
                << " — shutting down (sessions=" << stats.sessions_opened
                << " boards=" << stats.boards << " commits=" << stats.commits
                << " posts=" << stats.posts << " queries=" << stats.queries
                << " pulls=" << stats.pulls << " forwarded="
                << stats.forwarded << " errors=" << stats.errors << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "acp_billboardd: " << e.what() << "\n";
    return 1;
  }
}
