#!/usr/bin/env bash
# Regenerate every experiment table into results/, one file per bench.
# Usage: scripts/run_all_benches.sh [build-dir] [trials]
set -euo pipefail
build_dir="${1:-build}"
trials="${2:-}"
out_dir="results"
mkdir -p "$out_dir"
for bench in "$build_dir"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  if [ -n "$trials" ]; then
    ACP_BENCH_TRIALS="$trials" "$bench" | tee "$out_dir/$name.txt"
  else
    "$bench" | tee "$out_dir/$name.txt"
  fi
done
echo "wrote $out_dir/"
