#!/usr/bin/env python3
"""Validate a BENCH_PERF.json produced by bench/perf_substrate.

Two gates, both deliberately coarse (CI machines are noisy; this is a
smoke test against gross regressions, not a profiler):

  1. schema + speedups: the file must be "acp.perf.v1", every bench row
     must carry sane positive numbers, and every recorded speedup (new
     path vs in-bench legacy reimplementation) must stay >= --min-speedup
     (default 5.0). Speedups are a *ratio measured in the same process on
     the same machine*, so they are hardware-independent and get a hard
     floor.
  2. baseline comparison (optional, --baseline): each bench's ns_per_op
     must not exceed the checked-in baseline by more than --max-ratio
     (default 3.0). Absolute times vary across machines, hence the
     generous multiplier; a >3x slowdown on any substrate path is a real
     regression, not noise.
  3. parallel scaling: the distill_parallel_round_n100k_t1 / _t4 ratio
     must stay >= --min-parallel-speedup (default 2.0) — but only when
     the producing machine recorded hw_threads >= 4. When hw_threads >=
     8, the t1 / _t8 ratio is additionally held to
     --min-parallel-speedup-t8 (default 3.0): with the staged three-phase
     kernel the old serial-apply plateau would fail this row. A machine
     without the cores cannot demonstrate the scaling, so each row
     prints SKIP there instead of failing. Parallel rows deliberately do
     not appear in speedups[] (gate 1): the 5x floor there is for
     algorithmic rewrites, not thread scaling.
  4. gossip wire cost: wire.reduction (legacy exchange bits per round
     divided by digest+delta bits per round, measured by the in-process
     BandwidthMeter on the same workload) must stay >=
     --min-wire-reduction (default 10.0). Like the speedups, this is a
     same-process ratio under a deterministic wire-size model, so it is
     machine-independent and gets a hard floor.
  5. billboard service: every services[] record (bbload workload against
     an in-process BillboardServer on a Unix socket, one record per
     server geometry) must report zero errors and posts_per_sec >=
     --min-service-posts-per-sec (default 50000 — a deliberately low
     floor; even a single-core machine sustains >10x that). With
     --baseline, each record's query_p99_ns must not exceed its
     baseline counterpart's by more than --max-service-p99-ratio
     (default 5.0; tail latencies are the noisiest number here, hence
     the widest multiplier).
  6. service scaling: billboard_service_unix_t4 / _t1 posts_per_sec must
     stay >= --min-service-scaling (default 2.0) — but only when the
     producing machine recorded hw_threads >= 4; below that the row
     prints SKIP (a machine without the cores cannot demonstrate the
     sharded server's scaling).
  7. commit pipelining: service_pipelining.speedup (the identical
     512-client workload with 16 in-flight commits per connection vs
     one) must stay >= --min-pipeline-speedup (default 3.0). Like the
     other speedups this is a same-process, same-machine ratio —
     pipelining collapses per-commit round trips, so it holds on any
     hardware and gets a hard floor.

Exit code 0 = pass, 1 = regression/invalid input. Stdlib only.
"""

import argparse
import json
import sys


REQUIRED_BENCH_KEYS = ("name", "reps", "items", "ns_per_op", "items_per_sec",
                       "total_ms")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"check_perf: cannot read {path}: {err}")


def validate_schema(doc, path):
    errors = []
    if doc.get("schema") != "acp.perf.v1":
        errors.append(f"schema is {doc.get('schema')!r}, want 'acp.perf.v1'")
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        errors.append("benches[] missing or empty")
        benches = []
    for bench in benches:
        name = bench.get("name", "<unnamed>")
        for key in REQUIRED_BENCH_KEYS:
            if key not in bench:
                errors.append(f"bench {name}: missing key {key!r}")
        for key in ("reps", "items", "ns_per_op", "items_per_sec"):
            value = bench.get(key)
            if isinstance(value, (int, float)) and value <= 0:
                errors.append(f"bench {name}: {key} = {value} (must be > 0)")
    if not isinstance(doc.get("speedups"), list):
        errors.append("speedups[] missing")
    for error in errors:
        print(f"check_perf: {path}: {error}", file=sys.stderr)
    return not errors


def check_speedups(doc, min_speedup):
    ok = True
    speedups = doc.get("speedups") or []
    if not speedups:
        print("check_perf: no speedup records found", file=sys.stderr)
        return False
    for record in speedups:
        name = record.get("name", "<unnamed>")
        speedup = record.get("speedup", 0.0)
        status = "ok" if speedup >= min_speedup else "FAIL"
        print(f"  speedup {name} vs {record.get('baseline')}: "
              f"{speedup:.1f}x (floor {min_speedup}x) {status}")
        if speedup < min_speedup:
            ok = False
    return ok


def check_parallel_scaling(doc, min_parallel_speedup, min_parallel_speedup_t8):
    benches = {b.get("name"): b for b in doc.get("benches", [])}
    t1 = benches.get("distill_parallel_round_n100k_t1")
    t4 = benches.get("distill_parallel_round_n100k_t4")
    t8 = benches.get("distill_parallel_round_n100k_t8")
    if t1 is None or t4 is None or t8 is None:
        print("check_perf: parallel scaling rows "
              "distill_parallel_round_n100k_t{1,4,8} missing",
              file=sys.stderr)
        return False
    hw = doc.get("hw_threads", 0)
    if not isinstance(hw, int):
        hw = 0
    ok = True
    for row, floor, need_hw in ((t4, min_parallel_speedup, 4),
                                (t8, min_parallel_speedup_t8, 8)):
        tN = f"t1/t{need_hw}"
        ratio = t1["ns_per_op"] / row["ns_per_op"] \
            if row["ns_per_op"] > 0 else 0.0
        if hw < need_hw:
            print(f"  parallel scaling {tN}: {ratio:.2f}x "
                  f"SKIP (hw_threads={hw} < {need_hw}, cannot demonstrate "
                  f"{need_hw}-way scaling)")
            continue
        status = "ok" if ratio >= floor else "FAIL"
        print(f"  parallel scaling {tN}: {ratio:.2f}x "
              f"(floor {floor}x, hw_threads={hw}) {status}")
        if ratio < floor:
            ok = False
    return ok


def check_wire_reduction(doc, min_wire_reduction):
    wire = doc.get("wire")
    if not isinstance(wire, dict):
        print("check_perf: wire{} record missing", file=sys.stderr)
        return False
    name = wire.get("name", "<unnamed>")
    digest = wire.get("digest_bits_per_round", 0.0)
    exchange = wire.get("exchange_bits_per_round", 0.0)
    reduction = wire.get("reduction", 0.0)
    if digest <= 0 or exchange <= 0:
        print(f"check_perf: wire {name}: non-positive bits per round",
              file=sys.stderr)
        return False
    status = "ok" if reduction >= min_wire_reduction else "FAIL"
    print(f"  wire {name}: digest {digest / 1e3:.0f} kbit/round vs exchange "
          f"{exchange / 1e3:.0f} kbit/round -> {reduction:.1f}x "
          f"(floor {min_wire_reduction}x) {status}")
    return reduction >= min_wire_reduction


def check_services(doc, baseline, min_posts_per_sec, max_p99_ratio):
    services = doc.get("services")
    if not isinstance(services, list) or not services:
        print("check_perf: services[] missing or empty", file=sys.stderr)
        return False
    base_by_name = {s.get("name"): s
                    for s in (baseline or {}).get("services", [])
                    if isinstance(s, dict)}
    ok = True
    for service in services:
        name = service.get("name", "<unnamed>")
        errors = service.get("errors", -1)
        if errors != 0:
            print(f"  service {name}: {errors} errors (want 0) FAIL")
            ok = False
        rate = service.get("posts_per_sec", 0.0)
        status = "ok" if rate >= min_posts_per_sec else "FAIL"
        print(f"  service {name}: {rate / 1e3:.0f} k posts/s "
              f"(floor {min_posts_per_sec / 1e3:.0f}k) {status}")
        if rate < min_posts_per_sec:
            ok = False
        base = base_by_name.get(name)
        if isinstance(base, dict) and base.get("query_p99_ns", 0) > 0:
            p99 = service.get("query_p99_ns", 0)
            ratio = p99 / base["query_p99_ns"]
            status = "ok" if ratio <= max_p99_ratio else "FAIL"
            print(f"  service {name}: query p99 {p99 / 1e3:.0f} us vs "
                  f"baseline {base['query_p99_ns'] / 1e3:.0f} us "
                  f"({ratio:.2f}x, limit {max_p99_ratio}x) {status}")
            if ratio > max_p99_ratio:
                ok = False
    return ok


def check_service_scaling(doc, min_service_scaling):
    services = {s.get("name"): s for s in doc.get("services", [])
                if isinstance(s, dict)}
    t1 = services.get("billboard_service_unix_t1")
    t4 = services.get("billboard_service_unix_t4")
    if t1 is None or t4 is None:
        print("check_perf: service scaling rows "
              "billboard_service_unix_t{1,4} missing", file=sys.stderr)
        return False
    hw = doc.get("hw_threads", 0)
    if not isinstance(hw, int):
        hw = 0
    ratio = t4.get("posts_per_sec", 0.0) / t1["posts_per_sec"] \
        if t1.get("posts_per_sec", 0.0) > 0 else 0.0
    if hw < 4:
        print(f"  service scaling t1->t4: {ratio:.2f}x "
              f"SKIP (hw_threads={hw} < 4, cannot demonstrate 4-way "
              f"scaling)")
        return True
    status = "ok" if ratio >= min_service_scaling else "FAIL"
    print(f"  service scaling t1->t4: {ratio:.2f}x "
          f"(floor {min_service_scaling}x, hw_threads={hw}) {status}")
    return ratio >= min_service_scaling


def check_pipelining(doc, min_pipeline_speedup):
    record = doc.get("service_pipelining")
    if not isinstance(record, dict):
        print("check_perf: service_pipelining{} record missing",
              file=sys.stderr)
        return False
    name = record.get("name", "<unnamed>")
    single = record.get("single_posts_per_sec", 0.0)
    piped = record.get("pipelined_posts_per_sec", 0.0)
    speedup = record.get("speedup", 0.0)
    if single <= 0 or piped <= 0:
        print(f"check_perf: pipelining {name}: non-positive posts/sec",
              file=sys.stderr)
        return False
    status = "ok" if speedup >= min_pipeline_speedup else "FAIL"
    print(f"  pipelining {name}: {piped / 1e3:.0f} k vs {single / 1e3:.0f} k "
          f"posts/s -> {speedup:.1f}x (floor {min_pipeline_speedup}x) "
          f"{status}")
    return speedup >= min_pipeline_speedup


def check_against_baseline(doc, baseline, max_ratio):
    current = {b["name"]: b for b in doc.get("benches", [])}
    ok = True
    for base in baseline.get("benches", []):
        name = base["name"]
        if name not in current:
            print(f"  baseline bench {name}: MISSING from current run",
                  file=sys.stderr)
            ok = False
            continue
        base_ns = base["ns_per_op"]
        cur_ns = current[name]["ns_per_op"]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        delta = 100.0 * (ratio - 1.0)
        status = "ok" if ratio <= max_ratio else "FAIL"
        print(f"  {name}: {cur_ns:.1f} ns/op vs baseline {base_ns:.1f} "
              f"({delta:+.1f}%, limit {max_ratio}x) {status}")
        if ratio > max_ratio:
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("perf_json", help="BENCH_PERF.json from a fresh run")
    parser.add_argument("--baseline", help="checked-in BENCH_PERF.json")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--max-ratio", type=float, default=3.0)
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0)
    parser.add_argument("--min-parallel-speedup-t8", type=float, default=3.0)
    parser.add_argument("--min-wire-reduction", type=float, default=10.0)
    parser.add_argument("--min-service-posts-per-sec", type=float,
                        default=50000.0)
    parser.add_argument("--max-service-p99-ratio", type=float, default=5.0)
    parser.add_argument("--min-service-scaling", type=float, default=2.0)
    parser.add_argument("--min-pipeline-speedup", type=float, default=3.0)
    args = parser.parse_args()

    doc = load(args.perf_json)
    baseline = load(args.baseline) if args.baseline else None
    ok = validate_schema(doc, args.perf_json)
    if ok:
        ok = check_speedups(doc, args.min_speedup)
        ok = check_parallel_scaling(doc, args.min_parallel_speedup,
                                    args.min_parallel_speedup_t8) and ok
        ok = check_wire_reduction(doc, args.min_wire_reduction) and ok
        ok = check_services(doc, baseline, args.min_service_posts_per_sec,
                            args.max_service_p99_ratio) and ok
        ok = check_service_scaling(doc, args.min_service_scaling) and ok
        ok = check_pipelining(doc, args.min_pipeline_speedup) and ok
        if baseline is not None:
            ok = check_against_baseline(doc, baseline, args.max_ratio) and ok
    print("check_perf: PASS" if ok else "check_perf: FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
