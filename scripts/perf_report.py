#!/usr/bin/env python3
"""Render an acpsim run report (+ optional bench results) as markdown.

Inputs:
  --report REPORT.json     an "acp.report.v2" file written by
                           `acpsim --profile --report-json REPORT.json`.
                           Validated strictly; exit 1 on schema mismatch.
  --bench BENCH_PERF.json  optional "acp.perf.v1" file from a fresh
                           bench/perf_substrate run — rendered as an
                           ns/op table.
  --baseline BENCH.json    optional checked-in BENCH_PERF.json — adds a
                           delta column (current vs baseline ns/op) to
                           the bench table.
  -o OUT.md                output path (default: stdout).

The markdown answers "where did the time go": kernel phase percentages
(evaluate / stage / merge / apply / barrier), per-shard spans with the
imbalance histogram, thread-pool wake cost, and per-channel bandwidth —
plus the
ns/op trajectory vs the checked-in baseline when bench files are given.
CI uploads the result as an artifact (see perf-smoke in ci.yml).

Stdlib only. Exit 0 = rendered, 1 = invalid/unreadable input.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"perf_report: {msg}", file=sys.stderr)
    raise SystemExit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {path}: {err}")


# ---------------------------------------------------------------- schema

def validate_report(doc, path):
    """Strict acp.report.v2 check: every section the renderer touches
    must be present with the right shape. Returns a list of problems."""
    errors = []

    def need(mapping, key, types, where):
        value = mapping.get(key)
        if not isinstance(value, types):
            errors.append(f"{where}.{key}: missing or wrong type")
            return None
        return value

    if doc.get("schema") != "acp.report.v2":
        print(f"perf_report: {path}: schema is {doc.get('schema')!r}, "
              "want 'acp.report.v2'", file=sys.stderr)
        return ["schema"]
    config = need(doc, "config", dict, "$")
    if config is not None:
        for key in ("n", "m", "trials", "seed", "engine", "threads",
                    "engine_threads", "engine_threads_resolved"):
            need(config, key, (int, float, str), "config")
    need(doc, "metrics", dict, "$")
    need(doc, "counters", dict, "$")
    phases = need(doc, "phases", dict, "$")
    if phases:  # non-empty: a profiled run — check the full shape
        rounds = need(phases, "rounds", dict, "phases")
        if rounds is not None:
            need(rounds, "parallel", int, "phases.rounds")
            need(rounds, "sequential", int, "phases.rounds")
        evaluate = need(phases, "engine.kernel.evaluate", dict, "phases")
        if evaluate is not None:
            need(evaluate, "total_ns", int, "phases.engine.kernel.evaluate")
            shards = need(evaluate, "shards", list,
                          "phases.engine.kernel.evaluate")
            for i, shard in enumerate(shards or []):
                for key in ("shard", "rounds", "evaluate_ns", "stage_ns",
                            "wake_ns"):
                    need(shard, key, int, f"phases.shards[{i}]")
        for section in ("engine.kernel.stage", "engine.kernel.apply",
                        "engine.kernel.merge", "engine.kernel.barrier"):
            block = need(phases, section, dict, "phases")
            if block is not None:
                need(block, "total_ns", int, f"phases.{section}")
        imbalance = need(phases, "imbalance", dict, "phases")
        if imbalance is not None:
            need(imbalance, "slowest_shard_ns", int, "phases.imbalance")
            need(imbalance, "fastest_shard_ns", int, "phases.imbalance")
            histogram = need(imbalance, "ratio_histogram", dict,
                             "phases.imbalance")
            if histogram is not None:
                need(histogram, "buckets", list,
                     "phases.imbalance.ratio_histogram")
        pool = need(phases, "pool", dict, "phases")
        if pool is not None:
            for key in ("tasks", "wake_ns", "max_queue_depth"):
                need(pool, key, int, "phases.pool")
    bandwidth = need(doc, "bandwidth", dict, "$")
    if bandwidth:  # non-empty: metered run
        need(bandwidth, "engine.io.bits_read", int, "bandwidth")
        need(bandwidth, "engine.io.bits_written", int, "bandwidth")
        channels = need(bandwidth, "channels", dict, "bandwidth")
        for name, channel in (channels or {}).items():
            for key in ("read_ops", "read_bits", "write_ops", "write_bits"):
                need(channel, key, int, f"bandwidth.channels.{name}")
        per_player = need(bandwidth, "per_player", dict, "bandwidth")
        if per_player is not None:
            need(per_player, "players", int, "bandwidth.per_player")
    for error in errors:
        print(f"perf_report: {path}: {error}", file=sys.stderr)
    return errors


# -------------------------------------------------------------- renderers

def fmt_ns(ns):
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns} ns"


def fmt_bits(bits):
    if bits >= 8_000_000:
        return f"{bits / 8e6:.2f} MB"
    if bits >= 8_000:
        return f"{bits / 8e3:.2f} KB"
    return f"{bits} bits"


def render_config(config, out):
    out.append("## Run configuration\n")
    out.append("| key | value |")
    out.append("|---|---|")
    for key in ("protocol", "adversary", "engine", "n", "m", "good", "alpha",
                "trials", "seed", "threads", "engine_threads",
                "engine_threads_resolved"):
        if key in config:
            out.append(f"| {key} | {config[key]} |")
    out.append("")


def render_phases(phases, out):
    out.append("## Kernel phases\n")
    if not phases:
        out.append("_Profiling was off for this run (no `--profile`)._\n")
        return
    rounds = phases["rounds"]
    evaluate_ns = phases["engine.kernel.evaluate"]["total_ns"]
    stage_ns = phases["engine.kernel.stage"]["total_ns"]
    apply_ns = phases["engine.kernel.apply"]["total_ns"]
    merge_ns = phases["engine.kernel.merge"]["total_ns"]
    barrier_ns = phases["engine.kernel.barrier"]["total_ns"]
    total = evaluate_ns + stage_ns + apply_ns + merge_ns + barrier_ns
    out.append(f"Rounds: **{rounds['parallel']} parallel**, "
               f"**{rounds['sequential']} sequential**. Accounted kernel "
               f"time: **{fmt_ns(total)}**.\n")
    out.append("| phase | time | share |")
    out.append("|---|---:|---:|")
    for name, ns in (("evaluate (shard workers)", evaluate_ns),
                     ("stage (shard workers)", stage_ns),
                     ("apply (sequential rounds)", apply_ns),
                     ("merge (canonical-order fold)", merge_ns),
                     ("barrier (leader wait)", barrier_ns)):
        pct = 100.0 * ns / total if total else 0.0
        out.append(f"| {name} | {fmt_ns(ns)} | {pct:.1f}% |")
    out.append("")

    shards = phases["engine.kernel.evaluate"]["shards"]
    if shards:
        out.append("### Per-shard spans\n")
        out.append("| shard | rounds | evaluate | stage | wake latency |")
        out.append("|---:|---:|---:|---:|---:|")
        for shard in shards:
            out.append(f"| {shard['shard']} | {shard['rounds']} | "
                       f"{fmt_ns(shard['evaluate_ns'])} | "
                       f"{fmt_ns(shard['stage_ns'])} | "
                       f"{fmt_ns(shard['wake_ns'])} |")
        out.append("")

    imbalance = phases["imbalance"]
    slowest = imbalance["slowest_shard_ns"]
    fastest = imbalance["fastest_shard_ns"]
    out.append("### Shard imbalance\n")
    if fastest > 0:
        out.append(f"Summed critical path: slowest shard {fmt_ns(slowest)}, "
                   f"fastest {fmt_ns(fastest)} "
                   f"({slowest / fastest:.2f}x).\n")
    histogram = imbalance["ratio_histogram"]
    buckets = histogram["buckets"]
    total_samples = sum(buckets) + histogram.get("underflow", 0) \
        + histogram.get("overflow", 0)
    if total_samples:
        lo, hi = histogram["lo"], histogram["hi"]
        width = (hi - lo) / len(buckets)
        out.append("Per-round slowest/fastest ratio distribution:\n")
        out.append("| ratio | rounds | |")
        out.append("|---|---:|---|")
        for i, count in enumerate(buckets):
            if count == 0:
                continue
            bar = "█" * max(1, round(20 * count / total_samples))
            out.append(f"| {lo + i * width:.2f}–{lo + (i + 1) * width:.2f} "
                       f"| {count} | {bar} |")
        if histogram.get("overflow"):
            out.append(f"| > {hi:.1f} | {histogram['overflow']} | |")
        out.append("")

    pool = phases["pool"]
    out.append("### Thread pool\n")
    mean_wake = pool["wake_ns"] / pool["tasks"] if pool["tasks"] else 0
    out.append(f"{pool['tasks']} tasks, total submit→start latency "
               f"{fmt_ns(pool['wake_ns'])} "
               f"(mean {fmt_ns(int(mean_wake))}/task), "
               f"max queue depth {pool['max_queue_depth']}.\n")


def render_bandwidth(bandwidth, out):
    out.append("## Bandwidth\n")
    if not bandwidth:
        out.append("_Bandwidth metering was off for this run._\n")
        return
    out.append(f"Engine IO: **{fmt_bits(bandwidth['engine.io.bits_read'])} "
               f"read**, **{fmt_bits(bandwidth['engine.io.bits_written'])} "
               f"written**.\n")
    out.append("| channel | read ops | read | write ops | write |")
    out.append("|---|---:|---:|---:|---:|")
    for name, channel in bandwidth["channels"].items():
        if channel["read_ops"] == 0 and channel["write_ops"] == 0:
            continue
        out.append(f"| {name} | {channel['read_ops']} | "
                   f"{fmt_bits(channel['read_bits'])} | "
                   f"{channel['write_ops']} | "
                   f"{fmt_bits(channel['write_bits'])} |")
    out.append("")
    per_player = bandwidth["per_player"]
    if per_player["players"]:
        out.append(f"Per player ({per_player['players']} with traffic): "
                   f"read mean {fmt_bits(int(per_player['read_bits_mean']))} "
                   f"/ max {fmt_bits(per_player['read_bits_max'])}, "
                   f"write mean "
                   f"{fmt_bits(int(per_player['write_bits_mean']))} "
                   f"/ max {fmt_bits(per_player['write_bits_max'])}.\n")


def render_bench(bench, baseline, out):
    out.append("## Microbenchmark trajectory\n")
    if bench.get("schema") != "acp.perf.v1":
        fail(f"bench file schema is {bench.get('schema')!r}, "
             "want 'acp.perf.v1'")
    base_rows = {}
    if baseline is not None:
        base_rows = {b["name"]: b for b in baseline.get("benches", [])}
        out.append("ns/op for each substrate bench, current run vs the "
                   "checked-in baseline (negative delta = faster now).\n")
        out.append("| bench | ns/op | baseline | delta |")
        out.append("|---|---:|---:|---:|")
    else:
        out.append("| bench | ns/op | items/s |")
        out.append("|---|---:|---:|")
    for row in bench.get("benches", []):
        name = row["name"]
        if baseline is not None:
            base = base_rows.get(name)
            if base and base.get("ns_per_op"):
                delta = 100.0 * (row["ns_per_op"] / base["ns_per_op"] - 1.0)
                out.append(f"| {name} | {row['ns_per_op']:.1f} | "
                           f"{base['ns_per_op']:.1f} | {delta:+.1f}% |")
            else:
                out.append(f"| {name} | {row['ns_per_op']:.1f} | — | — |")
        else:
            out.append(f"| {name} | {row['ns_per_op']:.1f} | "
                       f"{row['items_per_sec']:.0f} |")
    out.append("")
    speedups = bench.get("speedups") or []
    if speedups:
        out.append("In-process speedups vs legacy reimplementations: "
                   + ", ".join(f"{s['name']} {s['speedup']:.1f}x"
                               for s in speedups) + ".\n")
    wire = bench.get("wire")
    if isinstance(wire, dict) and wire.get("digest_bits_per_round"):
        out.append(f"Gossip wire cost ({wire.get('name', 'wire')}): digest "
                   f"{fmt_bits(int(wire['digest_bits_per_round']))}/round vs "
                   f"exchange "
                   f"{fmt_bits(int(wire['exchange_bits_per_round']))}/round "
                   f"— {wire.get('reduction', 0.0):.1f}x less traffic.\n")
    services = bench.get("services") or []
    if services:
        base_services = {}
        if baseline is not None:
            base_services = {s.get("name"): s
                             for s in baseline.get("services", [])
                             if isinstance(s, dict)}
        out.append("### Billboard service\n")
        out.append("bbload workload (512 clients over a Unix socket) per "
                   "server geometry; p99 delta is vs the checked-in "
                   "baseline.\n")
        out.append("| service | io threads | pipeline | posts/s | "
                   "query p99 | p99 delta |")
        out.append("|---|---:|---:|---:|---:|---:|")
        for s in services:
            base = base_services.get(s.get("name"))
            if base and base.get("query_p99_ns"):
                delta = 100.0 * (s["query_p99_ns"] / base["query_p99_ns"]
                                 - 1.0)
                delta_cell = f"{delta:+.1f}%"
            else:
                delta_cell = "—"
            out.append(f"| {s['name']} | {s.get('io_threads', 1)} | "
                       f"{s.get('pipeline', 1)} | "
                       f"{s['posts_per_sec'] / 1e3:.0f}k | "
                       f"{fmt_ns(s['query_p99_ns'])} | {delta_cell} |")
        out.append("")
    pipelining = bench.get("service_pipelining")
    if isinstance(pipelining, dict) and \
            pipelining.get("single_posts_per_sec"):
        out.append(f"Commit pipelining "
                   f"({pipelining.get('name', 'pipelining')}): "
                   f"{pipelining['pipelined_posts_per_sec'] / 1e3:.0f}k vs "
                   f"{pipelining['single_posts_per_sec'] / 1e3:.0f}k posts/s "
                   f"on the identical workload — "
                   f"{pipelining.get('speedup', 0.0):.1f}x from keeping "
                   f"16 commits in flight per connection.\n")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--report", help="acp.report.v2 run report")
    parser.add_argument("--bench", help="acp.perf.v1 BENCH_PERF.json")
    parser.add_argument("--baseline", help="baseline BENCH_PERF.json for "
                        "the delta column (requires --bench)")
    parser.add_argument("-o", "--output", help="output markdown path "
                        "(default stdout)")
    args = parser.parse_args()
    if not args.report and not args.bench:
        fail("nothing to render: pass --report and/or --bench")

    out = ["# Performance report\n"]
    if args.report:
        report = load(args.report)
        if validate_report(report, args.report):
            return 1
        render_config(report["config"], out)
        render_phases(report["phases"], out)
        render_bandwidth(report["bandwidth"], out)
    if args.bench:
        bench = load(args.bench)
        baseline = load(args.baseline) if args.baseline else None
        render_bench(bench, baseline, out)

    text = "\n".join(out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text + "\n")
        print(f"perf_report: wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
