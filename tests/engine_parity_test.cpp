// Churn parity across the engines. All engines share the simulation
// kernel, so a seeded arrival/departure scenario must mean the same thing
// everywhere: the lockstep synchronizer reproduces the native synchronous
// run round for round (churn times are virtual rounds on both sides), and
// the asynchronous and gossip engines are bit-deterministic under churn.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "acp/adversary/strategies.hpp"
#include "acp/baseline/collab_baseline.hpp"
#include "acp/engine/lockstep.hpp"
#include "acp/gossip/gossip_engine.hpp"
#include "test_support.hpp"

namespace acp::test {
namespace {

struct RoundRecord {
  Round round = 0;
  std::size_t active = 0;
  std::size_t satisfied = 0;
  std::size_t probes = 0;

  bool operator==(const RoundRecord&) const = default;
};

/// Records the (round, active, satisfied, probes) stream every engine
/// delivers through its observer slot — the comparable shape of a run.
class RoundLog final : public RunObserver {
 public:
  void on_round_end(Round round, const Billboard& /*billboard*/,
                    std::size_t active_honest, std::size_t satisfied_honest,
                    std::size_t probes_this_round) override {
    rounds.push_back(
        RoundRecord{round, active_honest, satisfied_honest, probes_this_round});
  }

  std::vector<RoundRecord> rounds;
};

/// Staircase arrivals over [0, window): the i-th honest player joins at
/// floor(i * window / h). Guarantees someone is present from round 0, so
/// no empty virtual rounds occur (where the per-step adversary could
/// diverge from the per-round one).
std::vector<Round> staircase_arrivals(const Population& population,
                                      Round window) {
  const auto& honest = population.honest_players();
  std::vector<Round> arrivals(population.num_players(), 0);
  for (std::size_t i = 0; i < honest.size(); ++i) {
    arrivals[honest[i].value()] =
        static_cast<Round>(i) * window / static_cast<Round>(honest.size());
  }
  return arrivals;
}

/// The last `leavers` honest players crash-stop at `when`.
std::vector<Round> tail_departures(const Population& population,
                                   std::size_t leavers, Round when) {
  const auto& honest = population.honest_players();
  std::vector<Round> departures(population.num_players(), -1);
  for (std::size_t i = honest.size() - leavers; i < honest.size(); ++i) {
    departures[honest[i].value()] = when;
  }
  return departures;
}

TEST(EngineParity, SyncAndLockstepAgreeUnderChurn) {
  const std::size_t n = 48;
  auto scenario = Scenario::make(n, 24, n, 1, 901);
  const std::uint64_t seed = 77;
  // The run lasts ~23 rounds: arrivals trickle in over the first 6 and
  // the leavers crash at round 8, mid-search for everyone.
  const std::vector<Round> arrivals =
      staircase_arrivals(scenario.population, 6);
  const std::vector<Round> departures =
      tail_departures(scenario.population, 4, 8);

  RunResult sync_result;
  RoundLog sync_log;
  {
    DistillProtocol protocol(basic_params(0.5));
    EagerVoteAdversary adversary;
    SyncRunConfig config;
    config.max_rounds = 300000;
    config.seed = seed;
    config.arrivals = arrivals;
    config.departures = departures;
    config.observer = &sync_log;
    sync_result = SyncEngine::run(scenario.world, scenario.population,
                                  protocol, adversary, config);
  }

  for (const bool random_schedule : {false, true}) {
    RunResult lockstep_result;
    RoundLog lockstep_log;
    {
      DistillProtocol protocol(basic_params(0.5));
      EagerVoteAdversary adversary;
      std::unique_ptr<Scheduler> scheduler;
      if (random_schedule) {
        scheduler = std::make_unique<RandomScheduler>();
      } else {
        scheduler = std::make_unique<RoundRobinScheduler>();
      }
      LockstepRunConfig config;
      config.max_steps = 50000000;
      config.seed = seed;
      config.arrivals = arrivals;
      config.departures = departures;
      config.observer = &lockstep_log;
      lockstep_result =
          LockstepEngine::run(scenario.world, scenario.population, protocol,
                              adversary, *scheduler, config);
    }

    EXPECT_EQ(sync_result.all_honest_satisfied,
              lockstep_result.all_honest_satisfied);
    for (std::size_t p = 0; p < n; ++p) {
      EXPECT_EQ(sync_result.players[p].probes,
                lockstep_result.players[p].probes)
          << "player " << p << " random_schedule=" << random_schedule;
      EXPECT_EQ(sync_result.players[p].probed_good,
                lockstep_result.players[p].probed_good)
          << "player " << p;
      EXPECT_EQ(sync_result.players[p].satisfied(),
                lockstep_result.players[p].satisfied())
          << "player " << p;
    }
    // The virtual-round stream matches the native round stream exactly:
    // same number of rounds, same active/satisfied/probe counts each round.
    EXPECT_EQ(sync_log.rounds, lockstep_log.rounds)
        << "random_schedule=" << random_schedule;
  }

  // The churn actually bit: departing players left unsatisfied.
  std::size_t unsatisfied = 0;
  for (const auto& player : sync_result.players) {
    if (player.honest && !player.satisfied()) ++unsatisfied;
  }
  EXPECT_EQ(unsatisfied, 4u);
}

TEST(EngineParity, AsyncChurnIsDeterministic) {
  const std::size_t n = 32;
  auto scenario = Scenario::make(n, 16, n, 2, 902);
  // Async churn times are basic-step stamps; the run lasts ~150 steps.
  const std::vector<Round> arrivals =
      staircase_arrivals(scenario.population, 30);
  const std::vector<Round> departures =
      tail_departures(scenario.population, 3, 60);

  auto run_once = [&](std::uint64_t seed) {
    AsyncCollabProtocol protocol;
    SlandererAdversary adversary;
    RandomScheduler scheduler;
    AsyncRunConfig config;
    config.max_steps = 2000000;
    config.seed = seed;
    config.arrivals = arrivals;
    config.departures = departures;
    return AsyncEngine::run(scenario.world, scenario.population, protocol,
                            adversary, scheduler, config);
  };

  const RunResult first = run_once(5);
  const RunResult second = run_once(5);
  EXPECT_EQ(first.rounds_executed, second.rounds_executed);
  EXPECT_EQ(first.total_posts, second.total_posts);
  EXPECT_EQ(first.all_honest_satisfied, second.all_honest_satisfied);
  ASSERT_EQ(first.players.size(), second.players.size());
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(first.players[p].probes, second.players[p].probes)
        << "player " << p;
    EXPECT_EQ(first.players[p].satisfied_round,
              second.players[p].satisfied_round)
        << "player " << p;
  }

  // Departed players crash-stopped unsatisfied; the run still completes
  // (the roster drained), so the scenario exercised real churn.
  EXPECT_TRUE(first.all_honest_satisfied);
  std::size_t unsatisfied = 0;
  for (const auto& player : first.players) {
    if (player.honest && !player.satisfied()) ++unsatisfied;
  }
  EXPECT_GE(unsatisfied, 1u);
}

TEST(EngineParity, GossipChurnIsDeterministic) {
  const std::size_t n = 32;
  auto scenario = Scenario::make(n, 16, n, 1, 903);
  const std::vector<Round> arrivals =
      staircase_arrivals(scenario.population, 6);
  const std::vector<Round> departures =
      tail_departures(scenario.population, 2, 20);

  auto run_once = [&] {
    EagerVoteAdversary adversary;
    GossipConfig config;
    config.fanout = 3;
    config.max_rounds = 100000;
    config.seed = 11;
    config.arrivals = arrivals;
    config.departures = departures;
    return GossipEngine::run(
        scenario.world, scenario.population,
        [&] {
          return std::make_unique<DistillProtocol>(basic_params(0.5));
        },
        adversary, config);
  };

  const RunResult first = run_once();
  const RunResult second = run_once();
  EXPECT_EQ(first.rounds_executed, second.rounds_executed);
  EXPECT_EQ(first.total_posts, second.total_posts);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(first.players[p].probes, second.players[p].probes)
        << "player " << p;
  }
}

}  // namespace
}  // namespace acp::test
