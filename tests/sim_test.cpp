#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "acp/sim/runner.hpp"
#include "acp/sim/thread_pool.hpp"
#include "acp/util/contracts.hpp"

namespace acp {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, SingleThreadOrdering) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
}

TEST(Runner, SeedsAreSequential) {
  std::mutex mutex;
  std::set<std::uint64_t> seen;
  TrialPlan plan;
  plan.trials = 20;
  plan.base_seed = 100;
  plan.threads = 3;
  (void)run_trials(plan, [&](std::uint64_t seed) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(seed);
    return 0.0;
  });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 100u);
  EXPECT_EQ(*seen.rbegin(), 119u);
}

TEST(Runner, SummaryMatchesSamples) {
  TrialPlan plan;
  plan.trials = 5;
  plan.base_seed = 0;
  plan.threads = 1;
  const Summary s = run_trials(
      plan, [](std::uint64_t seed) { return static_cast<double>(seed); });
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Runner, MultiMetricOrderPreserved) {
  TrialPlan plan;
  plan.trials = 10;
  plan.threads = 2;
  const auto summaries = run_trials_multi(
      plan, 2, [](std::uint64_t seed) {
        return std::vector<double>{static_cast<double>(seed), -1.0};
      });
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_GT(summaries[0].mean(), 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].mean(), -1.0);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  auto run_with = [](std::size_t threads) {
    TrialPlan plan;
    plan.trials = 16;
    plan.base_seed = 7;
    plan.threads = threads;
    return run_trials(plan, [](std::uint64_t seed) {
      return static_cast<double>(seed * seed % 97);
    });
  };
  const Summary a = run_with(1);
  const Summary b = run_with(4);
  EXPECT_EQ(a.sorted_samples(), b.sorted_samples());
}

TEST(Runner, PropagatesTrialFailure) {
  TrialPlan plan;
  plan.trials = 8;
  plan.threads = 2;
  EXPECT_THROW(
      (void)run_trials(plan,
                       [](std::uint64_t seed) -> double {
                         if (seed == 3) throw std::runtime_error("boom");
                         return 0.0;
                       }),
      std::runtime_error);
}

TEST(Runner, WrongMetricCountRejected) {
  TrialPlan plan;
  plan.trials = 2;
  plan.threads = 1;
  EXPECT_THROW((void)run_trials_multi(plan, 2,
                                      [](std::uint64_t) {
                                        return std::vector<double>{1.0};
                                      }),
               ContractViolation);
}

}  // namespace
}  // namespace acp
