#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "acp/rng/splitmix64.hpp"
#include "acp/sim/runner.hpp"
#include "acp/concurrency/thread_pool.hpp"
#include "acp/util/contracts.hpp"

namespace acp {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, SingleThreadOrdering) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
}

TEST(Runner, SeedsAreSplitMixDerived) {
  // The per-trial seeds are the splitmix64 stream of the base seed — NOT
  // base_seed, base_seed+1, ...: sequential seeds correlate the xoshiro
  // states the trials expand them into.
  const auto seeds = derive_trial_seeds(100, 20);
  ASSERT_EQ(seeds.size(), 20u);
  SplitMix64 stream(100);
  for (const std::uint64_t seed : seeds) EXPECT_EQ(seed, stream.next());
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), 20u);
  EXPECT_EQ(unique.count(100u), 0u);  // the old correlated scheme is gone

  // The runner hands exactly these seeds to the trials, at any thread
  // count.
  std::mutex mutex;
  std::set<std::uint64_t> seen;
  TrialPlan plan;
  plan.trials = 20;
  plan.base_seed = 100;
  plan.threads = 3;
  (void)run_trials(plan, [&](std::uint64_t seed) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(seed);
    return 0.0;
  });
  EXPECT_EQ(seen, unique);
}

TEST(Runner, SummaryMatchesSamples) {
  TrialPlan plan;
  plan.trials = 5;
  plan.base_seed = 0;
  plan.threads = 1;
  // Remap the derived seeds back to their trial index so the expected
  // sample set is 0..4 regardless of the seed values.
  const auto seeds = derive_trial_seeds(plan.base_seed, plan.trials);
  auto index_of = [&seeds](std::uint64_t seed) {
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      if (seeds[i] == seed) return static_cast<double>(i);
    }
    return -1.0;
  };
  const Summary s = run_trials(plan, index_of);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Runner, MultiMetricOrderPreserved) {
  TrialPlan plan;
  plan.trials = 10;
  plan.threads = 2;
  const auto summaries = run_trials_multi(
      plan, 2, [](std::uint64_t seed) {
        return std::vector<double>{static_cast<double>(seed), -1.0};
      });
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_GT(summaries[0].mean(), 0.0);
  EXPECT_DOUBLE_EQ(summaries[1].mean(), -1.0);
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  auto run_with = [](std::size_t threads) {
    TrialPlan plan;
    plan.trials = 16;
    plan.base_seed = 7;
    plan.threads = threads;
    return run_trials(plan, [](std::uint64_t seed) {
      return static_cast<double>(seed * seed % 97);
    });
  };
  const Summary a = run_with(1);
  const Summary b = run_with(4);
  EXPECT_EQ(a.sorted_samples(), b.sorted_samples());
}

TEST(Runner, StatsBitIdenticalAcrossThreadCounts) {
  // The streamed reduction must not depend on which worker ran which
  // shard: shards are a function of the trial count alone, accumulate in
  // trial order, and merge in shard order. Welford merges are
  // floating-point non-associative, so this only holds because the merge
  // ORDER is pinned — the test pins bit-identity, not approximate
  // equality, across thread counts (including counts that do not divide
  // the trial count evenly).
  auto run_with = [](std::size_t threads) {
    TrialPlan plan;
    plan.trials = 97;  // prime: shards are uneven on purpose
    plan.base_seed = 42;
    plan.threads = threads;
    return run_trials_stats(plan, 2, [](std::uint64_t seed) {
      const double x = static_cast<double>(seed % 1009) / 7.0;
      return std::vector<double>{x, x * x};
    });
  };
  const auto a = run_with(1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const auto b = run_with(threads);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t metric = 0; metric < a.size(); ++metric) {
      EXPECT_EQ(a[metric].count(), b[metric].count());
      // Bit-identical, not nearly-equal.
      EXPECT_EQ(a[metric].mean(), b[metric].mean()) << "threads " << threads;
      EXPECT_EQ(a[metric].variance(), b[metric].variance())
          << "threads " << threads;
      EXPECT_EQ(a[metric].min(), b[metric].min());
      EXPECT_EQ(a[metric].max(), b[metric].max());
    }
  }
}

TEST(Runner, StatsMatchSummaryMoments) {
  TrialPlan plan;
  plan.trials = 33;
  plan.base_seed = 5;
  plan.threads = 2;
  auto trial = [](std::uint64_t seed) {
    return std::vector<double>{static_cast<double>(seed % 101)};
  };
  const auto stats = run_trials_stats(plan, 1, trial);
  const auto summaries = run_trials_multi(plan, 1, trial);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count(), 33u);
  EXPECT_NEAR(stats[0].mean(), summaries[0].mean(), 1e-9);
  EXPECT_DOUBLE_EQ(stats[0].min(), summaries[0].min());
  EXPECT_DOUBLE_EQ(stats[0].max(), summaries[0].max());
}

TEST(Runner, PropagatesTrialFailure) {
  TrialPlan plan;
  plan.trials = 8;
  plan.threads = 2;
  const std::uint64_t bad_seed = derive_trial_seeds(plan.base_seed, 8)[3];
  EXPECT_THROW(
      (void)run_trials(plan,
                       [bad_seed](std::uint64_t seed) -> double {
                         if (seed == bad_seed) {
                           throw std::runtime_error("boom");
                         }
                         return 0.0;
                       }),
      std::runtime_error);
}

TEST(Runner, WrongMetricCountRejected) {
  TrialPlan plan;
  plan.trials = 2;
  plan.threads = 1;
  EXPECT_THROW((void)run_trials_multi(plan, 2,
                                      [](std::uint64_t) {
                                        return std::vector<double>{1.0};
                                      }),
               ContractViolation);
}

}  // namespace
}  // namespace acp
